//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API subset the workspace uses. The generators
//! are bit-compatible with `rand` 0.8 on 64-bit platforms:
//!
//! * [`rngs::SmallRng`] is xoshiro256++ with the SplitMix64-based
//!   `seed_from_u64` used by `rand_xoshiro`,
//! * [`Rng::gen_range`] uses the widening-multiply rejection sampler of
//!   `rand` 0.8's `UniformInt::sample_single` and the `[1, 2)`-mantissa
//!   trick of `UniformFloat`,
//! * [`seq::SliceRandom`] mirrors `rand` 0.8's `gen_index` (32-bit
//!   sampling below `u32::MAX`) so shuffles reproduce upstream streams.
//!
//! Only determinism and distribution quality are load-bearing for the
//! simulator; bit-compatibility is kept anyway so seeds tuned against the
//! real crate keep their meaning.

#![allow(clippy::all, clippy::pedantic)]

/// The core trait every generator implements.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by expanding it with PCG32 (the
    /// `rand_core` 0.6 default).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod standard {
    use super::RngCore;

    /// Types samplable uniformly over their whole domain (the `Standard`
    /// distribution of real `rand`).
    pub trait StandardSample {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardSample for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl StandardSample for u16 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() as u16
        }
    }

    impl StandardSample for u8 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() as u8
        }
    }

    impl StandardSample for i64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as i64
        }
    }

    impl StandardSample for i32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() as i32
        }
    }

    impl StandardSample for usize {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }

    impl StandardSample for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // Compare against the most significant bit (rand 0.8's choice:
            // low bits of weak generators can show simple patterns).
            (rng.next_u32() as i32) < 0
        }
    }

    impl StandardSample for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53-bit multiply-based sample in [0, 1).
            let value = rng.next_u64() >> 11;
            value as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardSample for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            let value = rng.next_u32() >> 8;
            value as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

pub use standard::StandardSample;

mod uniform {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Ranges a value can be drawn from uniformly (`gen_range` input).
    pub trait SampleRange<T> {
        /// Draws one value; panics on an empty range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $wide:ty) => {
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    sample_below::<R>(
                        rng,
                        self.start as $unsigned,
                        (self.end.wrapping_sub(self.start)) as $unsigned,
                    ) as $ty
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let range = (end.wrapping_sub(start) as $unsigned).wrapping_add(1);
                    if range == 0 {
                        // Full domain.
                        return <$ty>::from_le_bytes(
                            (rng.next_u64() as $unsigned).to_le_bytes()
                                [..std::mem::size_of::<$ty>()]
                                .try_into()
                                .expect("width"),
                        );
                    }
                    sample_below::<R>(rng, start as $unsigned, range) as $ty
                }
            }

            /// rand 0.8 `UniformInt::sample_single`: widening multiply with
            /// the conservative bitmask zone.
            #[allow(unused)]
            fn sample_below<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $unsigned,
                range: $unsigned,
            ) -> $unsigned {
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $unsigned = crate::standard::StandardSample::sample_standard(rng);
                    let m = (v as $wide) * (range as $wide);
                    let hi = (m >> (<$unsigned>::BITS)) as $unsigned;
                    let lo = m as $unsigned;
                    if lo <= zone {
                        return low.wrapping_add(hi);
                    }
                }
            }
        };
    }

    mod imp_u32 {
        use super::*;
        uniform_int_impl!(u32, u32, u64);
    }
    mod imp_u64 {
        use super::*;
        uniform_int_impl!(u64, u64, u128);
    }
    mod imp_usize {
        use super::*;
        uniform_int_impl!(usize, usize, u128);
    }
    mod imp_i64 {
        use super::*;
        uniform_int_impl!(i64, u64, u128);
    }
    mod imp_i32 {
        use super::*;
        uniform_int_impl!(i32, u32, u64);
    }
    mod imp_u16 {
        use super::*;
        uniform_int_impl!(u16, u16, u32);
    }
    mod imp_u8 {
        use super::*;
        uniform_int_impl!(u8, u8, u16);
    }

    macro_rules! uniform_float_impl {
        ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_bias_bits:expr) => {
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let scale = self.end - self.start;
                    let value: $uty = crate::standard::StandardSample::sample_standard(rng);
                    // Mantissa bits with exponent 0 give a float in [1, 2).
                    let value1_2 =
                        <$ty>::from_bits($exponent_bias_bits | (value >> $bits_to_discard));
                    let value0_1 = value1_2 - 1.0;
                    value0_1 * scale + self.start
                }
            }
        };
    }

    mod imp_f64 {
        use super::*;
        uniform_float_impl!(f64, u64, 12, 1023u64 << 52);
    }
    mod imp_f32 {
        use super::*;
        uniform_float_impl!(f32, u32, 9, 127u32 << 23);
    }

    /// rand 0.8's `gen_index` helper: 32-bit sampling for small bounds so
    /// slice operations consume the same stream as upstream.
    pub(crate) fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            SampleRange::<u32>::sample_single(0..ubound as u32, rng) as usize
        } else {
            SampleRange::<usize>::sample_single(0..ubound, rng)
        }
    }
}

pub use uniform::SampleRange;

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's whole domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // 2^64 * p as the acceptance threshold (rand 0.8's Bernoulli).
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        if p == 1.0 {
            return true;
        }
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the generator behind `rand` 0.8's `SmallRng` on
    /// 64-bit platforms.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            SmallRng::from_state(s)
        }

        /// SplitMix64 seed expansion (`rand_xoshiro`'s override), so
        /// `SmallRng::seed_from_u64` matches the real crate bit-for-bit.
        fn seed_from_u64(mut state: u64) -> Self {
            const PHI: u64 = 0x9e3779b97f4a7c15;
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                *word = z ^ (z >> 31);
            }
            SmallRng::from_state(s)
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use crate::RngCore;

        /// Yields `initial`, `initial + increment`, … as `next_u64`.
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Creates the mock generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    step: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let r = self.v;
                self.v = self.v.wrapping_add(self.step);
                r
            }
        }
    }
}

pub mod seq {
    //! Random slice operations.

    use super::uniform::gen_index;
    use super::Rng;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
        where
            R: Rng + ?Sized;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R>(&self, rng: &mut R) -> Option<&T>
        where
            R: Rng + ?Sized,
        {
            if self.is_empty() {
                None
            } else {
                self.get(gen_index(rng, self.len()))
            }
        }

        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized,
        {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn small_rng_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn xoshiro256pp_reference_vector() {
        // Reference: xoshiro256++ with state [1, 2, 3, 4] produces
        // 41943041 first (from the published reference implementation).
        let mut rng = SmallRng::from_seed({
            let mut seed = [0u8; 32];
            seed[0] = 1;
            seed[8] = 2;
            seed[16] = 3;
            seed[24] = 4;
            seed
        });
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut hits = [0u32; 8];
        for _ in 0..80_000 {
            hits[rng.gen_range(0usize..8)] += 1;
        }
        for &h in &hits {
            assert!((9_000..11_000).contains(&h), "hits {hits:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_permutes_and_choose_covers() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.fill_bytes(&mut [0u8; 7]);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to id");
        let mut seen = [false; 10];
        let small: Vec<usize> = (0..10).collect();
        for _ in 0..1000 {
            seen[*small.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(5, 3);
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 8);
        assert_eq!(rng.next_u32(), 11);
    }

    #[test]
    fn dyn_rng_core_supports_range_sampling() {
        let mut rng = SmallRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0.0f64..10.0);
        assert!((0.0..10.0).contains(&x));
        let y: u64 = dyn_rng.gen();
        let _ = y;
    }
}
