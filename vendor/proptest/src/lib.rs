//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait (ranges, `any`, `Just`, tuples, `prop_map`,
//! `prop_oneof!`, `collection::vec`, `option::of`), the `proptest!` macro
//! with optional `#![proptest_config(...)]`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name and case index) rather than
//! real proptest's adaptive engine, and failing inputs are not shrunk —
//! the failure message instead reports the case's seed so it can be
//! replayed.

#![allow(clippy::all, clippy::pedantic)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates random values of an associated type.
    ///
    /// Object safe: `prop_map` is `Self: Sized`, so `Box<dyn Strategy>`
    /// works (needed by `prop_oneof!`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy behind the object-safe interface (used by
    /// `prop_oneof!` to mix arm types).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

    macro_rules! range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_inclusive_strategy!(u8, u16, u32, u64, usize, i32, i64);

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniformly picks one of several boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        /// The candidate strategies.
        pub arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }

    /// Uniform over the type's whole domain (`any::<T>()`).
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: rand::StandardSample> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen()
        }
    }

    /// Builds an [`Any`] strategy.
    pub fn any<T: rand::StandardSample>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// A length specification for [`vec`]: an exact size or a half-open
    /// range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some(inner)` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod test_runner {
    //! The case loop behind `proptest!`.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Reject,
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Deterministic per-case seed derived from the test name and a
    /// case stream index.
    pub fn seed_for_case(name: &str, stream: u64) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        splitmix64(h ^ splitmix64(stream))
    }

    /// Runs the deterministic case loop. `f` generates inputs from the
    /// given RNG and executes the property.
    ///
    /// # Panics
    ///
    /// Panics when a case fails (reporting its replay seed) or when
    /// `prop_assume!` rejects too many candidate cases.
    pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
    {
        let max_rejects = config.cases as u64 * 32 + 1024;
        let mut accepted = 0u32;
        let mut rejects = 0u64;
        let mut stream = 0u64;
        while accepted < config.cases {
            let seed = seed_for_case(name, stream);
            stream += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "{name}: prop_assume! rejected {rejects} candidate cases \
                         (accepted only {accepted}/{} before giving up)",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{name}: property failed at case {accepted} \
                         (replay seed {seed:#x}): {msg}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob import the workspace's tests use.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::run_cases`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                $cfg,
                stringify!($name),
                |__proptest_rng| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// Asserts inside a property; failure fails the case (not the process)
/// with a replayable seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal (requires `Debug` + `PartialEq`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts two expressions differ (requires `Debug` + `PartialEq`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Rejects the current case; the runner draws a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniformly picks among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            arms: vec![$($crate::strategy::boxed($strat)),+],
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vec_sizes(
            pair in (0u32..5, 10u32..20),
            v in crate::collection::vec(0u64..100, 2..6),
            exact in crate::collection::vec(any::<bool>(), 7usize),
            opt in crate::option::of(1u32..4),
        ) {
            prop_assert!(pair.0 < 5 && pair.1 >= 10);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(exact.len(), 7);
            if let Some(o) = opt {
                prop_assert!((1..4).contains(&o));
            }
        }

        #[test]
        fn oneof_and_map_and_assume(
            tag in prop_oneof![Just(1u8), Just(2), Just(3)],
            mapped in (0u32..10).prop_map(|x| x * 2),
            raw in any::<u64>(),
        ) {
            prop_assume!(raw % 7 != 0);
            prop_assert!(matches!(tag, 1..=3));
            prop_assert_eq!(mapped % 2, 0);
            prop_assert_ne!(raw % 7, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let seed = crate::test_runner::seed_for_case("some_test", 3);
        let again = crate::test_runner::seed_for_case("some_test", 3);
        assert_eq!(seed, again);
        let mut a = SmallRng::seed_from_u64(seed);
        let mut b = SmallRng::seed_from_u64(seed);
        let s = crate::collection::vec(0u64..1000, 5..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_replay_seed() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
