//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input with plain `proc_macro` token inspection (no
//! `syn`/`quote`, which are unavailable offline) and supports the two
//! shapes this workspace uses: structs with named fields and enums with
//! unit variants. Anything fancier fails loudly at compile time.

#![allow(clippy::all, clippy::pedantic)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemKind {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Unit variants, in declaration order.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives `serde::Serialize` (the vendored JSON-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::JsonValue::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::JsonValue::Str(\
                         ::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let name = &item.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::JsonValue {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated impl must parse")
}

/// Derives the (marker) `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive: generated impl must parse")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_enum = false;
    let mut name = None;
    while i < tokens.len() {
        match &tokens[i] {
            // Skip attributes (`#[...]`) ahead of the item.
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends carry a parenthesized group.
                if matches!(&tokens.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if matches!(id.to_string().as_str(), "struct" | "enum") => {
                is_enum = id.to_string() == "enum";
                i += 1;
                if let Some(TokenTree::Ident(n)) = tokens.get(i) {
                    name = Some(n.to_string());
                }
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let name = name.expect("serde_derive: could not find the item name");
    // The body is the first brace group after the name; generics are not
    // supported (nothing in this workspace derives on a generic type).
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde_derive (vendored): generic types are not supported")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!("serde_derive (vendored): `{name}` must have a braced body (no tuple/unit structs)")
        });
    let names = body_names(body, is_enum, &name);
    Item {
        name,
        kind: if is_enum {
            ItemKind::Enum(names)
        } else {
            ItemKind::Struct(names)
        },
    }
}

/// Extracts field (or unit-variant) names from a braced body, splitting on
/// top-level commas with awareness of `<...>` nesting in field types.
fn body_names(body: TokenStream, is_enum: bool, item: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut angle_depth = 0i32;
    let mut chunk: Vec<TokenTree> = Vec::new();
    let mut flush = |chunk: &mut Vec<TokenTree>| {
        if let Some(n) = chunk_name(chunk, is_enum, item) {
            names.push(n);
        }
        chunk.clear();
    };
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                flush(&mut chunk);
                continue;
            }
            _ => {}
        }
        chunk.push(t);
    }
    flush(&mut chunk);
    names
}

/// The declared name inside one comma-separated chunk: the first ident
/// after any attributes and visibility.
fn chunk_name(chunk: &[TokenTree], is_enum: bool, item: &str) -> Option<String> {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(chunk.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                if is_enum {
                    if let Some(TokenTree::Group(_)) = chunk.get(i + 1) {
                        panic!(
                            "serde_derive (vendored): enum `{item}` variant \
                             `{name}` carries data; only unit variants are supported"
                        );
                    }
                }
                return Some(name);
            }
            _ => i += 1,
        }
    }
    None
}
