//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde's [`JsonValue`] tree as JSON text. Output
//! conventions follow the real crate where the workspace can observe them:
//! two-space pretty indentation, `"key": value` spacing, floats printed
//! with a trailing `.0` when integral, and non-finite floats as `null`.

#![allow(clippy::all, clippy::pedantic)]

use serde::{JsonValue, Serialize};

/// Re-export under the real crate's name.
pub use serde::JsonValue as Value;

/// Serialization error (currently unreachable: every tree renders).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Kept for API compatibility; this shim always succeeds.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty JSON with two-space indentation.
///
/// # Errors
///
/// Kept for API compatibility; this shim always succeeds.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, Some("  "), 0);
    Ok(out)
}

fn write_value(v: &JsonValue, out: &mut String, indent: Option<&str>, depth: usize) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::UInt(n) => out.push_str(&n.to_string()),
        JsonValue::Int(n) => out.push_str(&n.to_string()),
        JsonValue::Float(x) => write_float(*x, out),
        JsonValue::Str(s) => write_escaped(s, out),
        JsonValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        JsonValue::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(x: f64, out: &mut String) {
    if !x.is_finite() {
        // serde_json's Value serializer maps NaN/∞ to null.
        out.push_str("null");
        return;
    }
    // Rust's `Display` always expands floats in full decimal; switch to
    // exponent form for extreme magnitudes, roughly where serde_json's
    // shortest-round-trip (ryu) output would.
    let magnitude = x.abs();
    let s = if magnitude != 0.0 && !(1e-5..1e17).contains(&magnitude) {
        format!("{x:e}")
    } else {
        format!("{x}")
    };
    out.push_str(&s);
    // Match serde_json: whole floats keep a `.0` so the type survives a
    // round trip.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_json_conventions() {
        let v = JsonValue::Object(vec![
            ("a".to_string(), JsonValue::UInt(7)),
            ("b".to_string(), JsonValue::Float(2.0)),
            (
                "c".to_string(),
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(
            text,
            "{\n  \"a\": 7,\n  \"b\": 2.0,\n  \"c\": [\n    null,\n    true\n  ]\n}"
        );
    }

    #[test]
    fn compact_and_edge_cases() {
        let v = JsonValue::Object(vec![(
            "s".to_string(),
            JsonValue::Str("line\n\"q\"".to_string()),
        )]);
        assert_eq!(to_string(&v).unwrap(), "{\"s\":\"line\\n\\\"q\\\"\"}");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&1.5e300f64).unwrap(), "1.5e300");
        let empty: Vec<u32> = vec![];
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }
}
