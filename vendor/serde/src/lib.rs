//! Offline stand-in for `serde`.
//!
//! The real serde's visitor-based model is far more than this workspace
//! needs: every serialized type here ends up as JSON via
//! `serde_json::to_string_pretty`. So [`Serialize`] simply lowers a value
//! to a [`JsonValue`] tree, and the derive macros (re-exported from the
//! vendored `serde_derive`) generate that lowering for named-field structs
//! and unit enums. [`Deserialize`] exists as a marker so `derive(...)`
//! lists keep compiling; nothing in the workspace deserializes.

#![allow(clippy::all, clippy::pedantic)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON document tree — the serialization target of this shim.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

/// Lowers a value to a [`JsonValue`] tree.
pub trait Serialize {
    fn to_json_value(&self) -> JsonValue;
}

/// Marker trait kept so `#[derive(Serialize, Deserialize)]` compiles;
/// this shim has no deserializer.
pub trait Deserialize {}

impl Serialize for JsonValue {
    fn to_json_value(&self) -> JsonValue {
        self.clone()
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::UInt(*self as u64)
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Int(*self as i64)
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> JsonValue {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_nodes() {
        assert_eq!(7u32.to_json_value(), JsonValue::UInt(7));
        assert_eq!((-3i64).to_json_value(), JsonValue::Int(-3));
        assert_eq!(true.to_json_value(), JsonValue::Bool(true));
        assert_eq!(1.5f64.to_json_value(), JsonValue::Float(1.5));
        assert_eq!(
            "hi".to_string().to_json_value(),
            JsonValue::Str("hi".into())
        );
        assert_eq!(Option::<u32>::None.to_json_value(), JsonValue::Null);
        assert_eq!(
            vec![1u32, 2].to_json_value(),
            JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::UInt(2)])
        );
        assert_eq!(
            (1u32, 2.0f64).to_json_value(),
            JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::Float(2.0)])
        );
    }
}
