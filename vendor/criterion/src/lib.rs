//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group`/`bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros — backed by a
//! simple wall-clock timer instead of criterion's statistical engine.
//! Each benchmark is calibrated to a target measurement time, then the
//! median of several samples is reported as `name  time: [median ns]`.

#![allow(clippy::all, clippy::pedantic)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures one benchmark body via repeated timed batches.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, running it in calibrated batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// A benchmark label, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Just the parameter (the group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Harness configuration and entry point.
pub struct Criterion {
    sample_count: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 12,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_count, self.measurement_time, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_count: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(2));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.label);
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        run_one(&name, samples, self.criterion.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Runs one unparameterized benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        run_one(&full, samples, self.criterion.measurement_time, |b| f(b));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_count: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // Calibrate: time a single-iteration pass, then pick a batch size so
    // that all samples together fit in roughly the measurement window.
    let mut probe = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(1),
    };
    f(&mut probe);
    let per_iter = probe
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));
    let budget_per_sample = measurement_time.as_nanos() / sample_count.max(1) as u128;
    let iters = (budget_per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(sample_count),
    };
    f(&mut bencher);
    let mut per_iter_ns: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters as f64)
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = if per_iter_ns.is_empty() {
        f64::NAN
    } else {
        per_iter_ns[per_iter_ns.len() / 2]
    };
    println!("{name:<55} time: [{}]   ({iters} iters x {sample_count} samples)", format_ns(median));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run() {
        let mut c = Criterion {
            sample_count: 3,
            measurement_time: Duration::from_millis(5),
        };
        c.bench_function("smoke/add", |b| b.iter(|| std::hint::black_box(1u64 + 2)));
        let mut group = c.benchmark_group("smoke_group");
        group.sample_size(2);
        for n in [1u64, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| std::hint::black_box(n * n))
            });
        }
        group.finish();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("altruism").label, "altruism");
    }
}
