//! Fault-injection *plans*: scenario descriptions that compile into the
//! pre-drawn [`FaultSchedule`]s the swarm simulator executes.
//!
//! A [`FaultPlan`] is the fault-side sibling of `coop_attacks::AttackPlan`:
//! a small `Copy` value describing a churn/fault scenario — staggered
//! Poisson arrivals, exponential or fixed peer lifetimes, transient
//! outages, per-link message loss, and seeder exit/failure. Attached to a
//! `SimulationBuilder` via the `FaultPatch` hook, it compiles once at
//! build time into a [`FaultSchedule`]: every departure round and outage
//! window is drawn up front from a dedicated [`SeedTree`] subtree of the
//! run's root seed, so the round hot path never touches fault randomness
//! and results are byte-reproducible for any worker count.
//!
//! Determinism contract:
//!
//! * All randomness comes from `SeedTree::new(config.seed)
//!   .subtree(FAULT_SUBTREE)` with one child stream per purpose and per
//!   peer — compiling the same plan against the same population and seed
//!   always yields the same schedule, and fault draws never perturb the
//!   simulator's own RNG streams.
//! * [`FaultPlan::none`] (and any plan whose every rate is zero) draws
//!   nothing and compiles to [`FaultSchedule::empty`], which the simulator
//!   treats as the exact identity: runs are byte-identical to runs with no
//!   plan attached.
//! * Per-transfer message loss is not pre-drawn (the set of transfers is
//!   not known at build time); the schedule carries a `loss_seed` and the
//!   simulator decides each potential drop by a pure hash of
//!   `(loss_seed, link, piece, round)`, independent of execution order.

use coop_des::rng::{exponential, SeedTree};
use coop_des::{RoundDriver, SimTime};
use coop_swarm::{FaultEvent, FaultKind, FaultPatch, FaultSchedule, PeerSpec, SwarmConfig};
use rand::RngCore;

/// Label of the fault subtree under the run's root seed. Every draw the
/// compiler makes lives under `SeedTree::new(seed).subtree(FAULT_SUBTREE)`,
/// keeping fault randomness disjoint from the simulator's per-round
/// streams (`0x520_0000 + round`) and the population builder's streams.
pub const FAULT_SUBTREE: u64 = 0xFA_017;

/// Child labels within the fault subtree, one per draw purpose.
const LABEL_ARRIVALS: u64 = 1;
const LABEL_LIFETIMES: u64 = 2;
const LABEL_OUTAGES: u64 = 3;
const LABEL_LOSS: u64 = 4;

/// A scenario description for deterministic churn and fault injection.
///
/// All rates at zero (see [`FaultPlan::none`]) means "no faults": the plan
/// compiles to [`FaultSchedule::empty`] without consuming any randomness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// When positive, replace the population's arrival times with a
    /// Poisson process: successive inter-arrival gaps are exponential with
    /// this mean (seconds), starting from time zero.
    pub arrival_spread_s: f64,
    /// When positive (with `arrival_spread_s > 0`), modulate the Poisson
    /// arrival intensity sinusoidally with this period (seconds): the
    /// instantaneous mean gap becomes `arrival_spread_s / (1 +
    /// diurnal_amplitude * sin(2π t / diurnal_period_s))`.
    pub diurnal_period_s: f64,
    /// Relative swing of the diurnal intensity, in `[0, 1)`. Zero keeps
    /// arrivals a plain (homogeneous) Poisson process.
    pub diurnal_amplitude: f64,
    /// Per-round departure hazard. Each peer's lifetime (rounds from
    /// arrival to churn departure) is exponential with mean `1 /
    /// churn_rate`; departures past the run's `max_rounds` are dropped.
    pub churn_rate: f64,
    /// When set, every peer departs exactly this many rounds after
    /// arrival (minimum 1), overriding the exponential draw.
    pub fixed_lifetime_rounds: Option<u64>,
    /// Probability that a peer suffers one transient outage during its
    /// life. Affected peers go dark (keeping their bitfield) for
    /// [`FaultPlan::outage_rounds`] rounds at a uniformly drawn start.
    pub outage_prob: f64,
    /// Length of each outage in rounds (0 disables outages).
    pub outage_rounds: u64,
    /// Probability that a completed piece transfer is lost in transit,
    /// decided per `(link, piece, round)` by the simulator's pure loss
    /// hash (0 disables).
    pub loss_prob: f64,
    /// "Selfish leech-off": the seeder exits once this fraction of the
    /// expected compliant population has completed. Must lie in `(0, 1]`.
    pub seeder_exit_fraction: Option<f64>,
    /// The seeder fails permanently at the start of this round.
    pub seeder_failure_round: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The no-fault plan: compiles to [`FaultSchedule::empty`] and leaves
    /// the population untouched.
    pub fn none() -> Self {
        FaultPlan {
            arrival_spread_s: 0.0,
            diurnal_period_s: 0.0,
            diurnal_amplitude: 0.0,
            churn_rate: 0.0,
            fixed_lifetime_rounds: None,
            outage_prob: 0.0,
            outage_rounds: 0,
            loss_prob: 0.0,
            seeder_exit_fraction: None,
            seeder_failure_round: None,
        }
    }

    /// Exponential churn with the given per-round departure hazard.
    pub fn churn(rate: f64) -> Self {
        FaultPlan {
            churn_rate: rate,
            ..Self::none()
        }
    }

    /// Sets Poisson arrival staggering with the given mean gap (seconds).
    pub fn with_arrival_spread(mut self, mean_gap_s: f64) -> Self {
        self.arrival_spread_s = mean_gap_s;
        self
    }

    /// Sets sinusoidal (diurnal) modulation of the Poisson arrival
    /// intensity. Takes effect only when `arrival_spread_s > 0`;
    /// `amplitude` must lie in `[0, 1)` so the intensity stays positive.
    pub fn with_diurnal(mut self, period_s: f64, amplitude: f64) -> Self {
        self.diurnal_period_s = period_s;
        self.diurnal_amplitude = amplitude;
        self
    }

    /// Sets a fixed lifetime in rounds for every peer.
    pub fn with_fixed_lifetime(mut self, rounds: u64) -> Self {
        self.fixed_lifetime_rounds = Some(rounds);
        self
    }

    /// Sets transient outages: each peer goes dark once with probability
    /// `prob` for `rounds` rounds.
    pub fn with_outages(mut self, prob: f64, rounds: u64) -> Self {
        self.outage_prob = prob;
        self.outage_rounds = rounds;
        self
    }

    /// Sets the per-transfer message-loss probability.
    pub fn with_loss(mut self, prob: f64) -> Self {
        self.loss_prob = prob;
        self
    }

    /// Sets the seeder's post-completion exit fraction.
    pub fn with_seeder_exit(mut self, fraction: f64) -> Self {
        self.seeder_exit_fraction = Some(fraction);
        self
    }

    /// Sets a permanent seeder failure at the given round.
    pub fn with_seeder_failure(mut self, round: u64) -> Self {
        self.seeder_failure_round = Some(round);
        self
    }

    /// True when the plan can produce no fault at all; such plans compile
    /// to the identity schedule without consuming randomness.
    pub fn is_inert(&self) -> bool {
        self.arrival_spread_s <= 0.0
            && self.churn_rate <= 0.0
            && self.fixed_lifetime_rounds.is_none()
            && (self.outage_prob <= 0.0 || self.outage_rounds == 0)
            && self.loss_prob <= 0.0
            && self.seeder_exit_fraction.is_none()
            && self.seeder_failure_round.is_none()
    }

    /// Compiles the plan against a population into a concrete schedule,
    /// pre-drawing every departure round and outage window from the fault
    /// subtree of `config.seed`. Mutates `population` only to re-stagger
    /// arrivals (and only when `arrival_spread_s > 0`).
    ///
    /// The construction keeps every schedule structurally valid for the
    /// builder's checks: faults fire strictly after the peer's arrival
    /// round, outages never overlap a departure, and windows are closed.
    pub fn compile(&self, population: &mut [PeerSpec], config: &SwarmConfig) -> FaultSchedule {
        if self.is_inert() {
            return FaultSchedule::empty();
        }
        let tree = SeedTree::new(config.seed).subtree(FAULT_SUBTREE);
        let driver = RoundDriver::new(config.round);

        if self.arrival_spread_s > 0.0 {
            let mut rng = tree.rng(LABEL_ARRIVALS);
            let diurnal = self.diurnal_period_s > 0.0 && self.diurnal_amplitude > 0.0;
            let mut t_ms = 0u64;
            for spec in population.iter_mut() {
                let mut gap_s = exponential(&mut rng, self.arrival_spread_s);
                if diurnal {
                    // Thinning-free modulation: stretch each exponential
                    // gap by the reciprocal of the instantaneous intensity
                    // at the previous arrival. Same RNG stream and draw
                    // count as the homogeneous process, so amplitude 0 is
                    // byte-identical to plain Poisson arrivals.
                    let t_s = t_ms as f64 / 1000.0;
                    let phase = std::f64::consts::TAU * t_s / self.diurnal_period_s;
                    gap_s /= 1.0 + self.diurnal_amplitude * phase.sin();
                }
                t_ms += (gap_s * 1000.0).round() as u64;
                spec.arrival = SimTime::from_millis(t_ms);
            }
        }

        // Departure round per spec index; None = stays for the whole run.
        // Per-peer child streams keep each peer's draw independent of how
        // many draws earlier peers consumed.
        let mut departs: Vec<Option<u64>> = vec![None; population.len()];
        if self.fixed_lifetime_rounds.is_some() || self.churn_rate > 0.0 {
            let lifetimes = tree.subtree(LABEL_LIFETIMES);
            for (i, spec) in population.iter().enumerate() {
                let lifetime = match self.fixed_lifetime_rounds {
                    Some(l) => l.max(1),
                    None => {
                        let mut rng = lifetimes.rng(i as u64);
                        exponential(&mut rng, 1.0 / self.churn_rate).ceil().max(1.0) as u64
                    }
                };
                let round = driver.round_of(spec.arrival) + lifetime;
                if round < config.max_rounds {
                    departs[i] = Some(round);
                }
            }
        }

        let mut events = Vec::new();
        if self.outage_prob > 0.0 && self.outage_rounds > 0 {
            let outages = tree.subtree(LABEL_OUTAGES);
            for (i, spec) in population.iter().enumerate() {
                let mut rng = outages.rng(i as u64);
                if uniform01(&mut rng) >= self.outage_prob {
                    continue;
                }
                let first = driver.round_of(spec.arrival) + 1;
                // The window must close strictly before the peer departs
                // (or before the hard stop); skip peers with no room.
                let horizon = departs[i].unwrap_or(config.max_rounds);
                let slack = horizon.saturating_sub(first + self.outage_rounds);
                if slack == 0 {
                    continue;
                }
                let start = first + rng.next_u64() % slack;
                events.push(FaultEvent {
                    round: start,
                    peer: i,
                    kind: FaultKind::OutageStart,
                });
                events.push(FaultEvent {
                    round: start + self.outage_rounds,
                    peer: i,
                    kind: FaultKind::OutageEnd,
                });
            }
        }

        for (i, depart) in departs.iter().enumerate() {
            if let Some(round) = *depart {
                events.push(FaultEvent {
                    round,
                    peer: i,
                    kind: FaultKind::Depart,
                });
            }
        }

        let mut schedule =
            FaultSchedule::from_events(events, self.loss_prob, tree.child_seed(LABEL_LOSS));
        schedule.seeder_exit_fraction = self.seeder_exit_fraction;
        schedule.seeder_failure_round = self.seeder_failure_round;
        schedule
    }
}

impl FaultPatch for FaultPlan {
    fn compile_faults(&self, population: &mut [PeerSpec], config: &SwarmConfig) -> FaultSchedule {
        self.compile(population, config)
    }
}

/// Uniform draw in `[0, 1)` from the top 53 bits of one `u64` — the same
/// technique the simulator's loss hash uses.
fn uniform01(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64) -> SwarmConfig {
        let mut c = SwarmConfig::tiny_test();
        c.seed = seed;
        c
    }

    fn population(n: usize) -> Vec<PeerSpec> {
        (0..n)
            .map(|i| {
                PeerSpec::standard(
                    16_000.0,
                    SimTime::from_secs(i as u64),
                    coop_incentives::MechanismKind::BitTorrent,
                    coop_incentives::MechanismParams::default(),
                )
            })
            .collect()
    }

    #[test]
    fn none_is_inert_and_compiles_to_empty() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        let cfg = config(9);
        let mut pop = population(6);
        let before: Vec<SimTime> = pop.iter().map(|s| s.arrival).collect();
        let schedule = plan.compile(&mut pop, &cfg);
        assert_eq!(schedule, FaultSchedule::empty());
        let after: Vec<SimTime> = pop.iter().map(|s| s.arrival).collect();
        assert_eq!(before, after, "an inert plan must not touch arrivals");
    }

    #[test]
    fn churn_departures_fire_after_arrival() {
        let cfg = config(11);
        let mut pop = population(12);
        let schedule = FaultPlan::churn(0.05).compile(&mut pop, &cfg);
        let driver = RoundDriver::new(cfg.round);
        assert!(!schedule.events().is_empty());
        for ev in schedule.events() {
            assert_eq!(ev.kind, FaultKind::Depart);
            assert!(ev.round > driver.round_of(pop[ev.peer].arrival));
            assert!(ev.round < cfg.max_rounds);
        }
        schedule.validate(pop.len()).unwrap();
    }

    #[test]
    fn fixed_lifetime_departs_exactly_that_many_rounds_after_arrival() {
        let cfg = config(13);
        let mut pop = population(5);
        let schedule = FaultPlan::none()
            .with_fixed_lifetime(7)
            .compile(&mut pop, &cfg);
        let driver = RoundDriver::new(cfg.round);
        assert_eq!(schedule.events().len(), 5);
        for ev in schedule.events() {
            assert_eq!(ev.round, driver.round_of(pop[ev.peer].arrival) + 7);
        }
    }

    #[test]
    fn outages_close_before_departure() {
        let cfg = config(17);
        let mut pop = population(20);
        let schedule = FaultPlan::churn(0.02)
            .with_outages(1.0, 4)
            .compile(&mut pop, &cfg);
        schedule.validate(pop.len()).unwrap();
        for peer in 0..pop.len() {
            let evs: Vec<_> = schedule.events().iter().filter(|e| e.peer == peer).collect();
            let depart = evs.iter().find(|e| e.kind == FaultKind::Depart);
            let end = evs.iter().find(|e| e.kind == FaultKind::OutageEnd);
            if let (Some(d), Some(e)) = (depart, end) {
                assert!(e.round < d.round, "outage must close before departure");
            }
        }
    }

    #[test]
    fn arrival_spread_restaggers_monotonically() {
        let cfg = config(19);
        let mut pop = population(8);
        FaultPlan::none()
            .with_arrival_spread(2.0)
            .compile(&mut pop, &cfg);
        for pair in pop.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        assert!(pop[0].arrival > SimTime::ZERO, "first gap is drawn too");
    }

    #[test]
    fn seeder_fields_pass_through() {
        let cfg = config(23);
        let mut pop = population(4);
        let schedule = FaultPlan::none()
            .with_seeder_exit(0.5)
            .with_seeder_failure(40)
            .compile(&mut pop, &cfg);
        assert_eq!(schedule.seeder_exit_fraction, Some(0.5));
        assert_eq!(schedule.seeder_failure_round, Some(40));
        assert!(schedule.events().is_empty());
        assert!(!schedule.is_inert());
    }

    #[test]
    fn diurnal_restagger_is_monotone_and_deterministic() {
        let cfg = config(31);
        let plan = FaultPlan::none()
            .with_arrival_spread(1.0)
            .with_diurnal(60.0, 0.8);
        let mut a = population(30);
        let mut b = population(30);
        plan.compile(&mut a, &cfg);
        plan.compile(&mut b, &cfg);
        for pair in a.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        let ta: Vec<SimTime> = a.iter().map(|s| s.arrival).collect();
        let tb: Vec<SimTime> = b.iter().map(|s| s.arrival).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn zero_amplitude_diurnal_matches_plain_poisson_arrivals() {
        let cfg = config(37);
        let mut plain = population(20);
        let mut modulated = population(20);
        FaultPlan::none()
            .with_arrival_spread(1.5)
            .compile(&mut plain, &cfg);
        FaultPlan::none()
            .with_arrival_spread(1.5)
            .with_diurnal(120.0, 0.0)
            .compile(&mut modulated, &cfg);
        let ta: Vec<SimTime> = plain.iter().map(|s| s.arrival).collect();
        let tb: Vec<SimTime> = modulated.iter().map(|s| s.arrival).collect();
        assert_eq!(ta, tb, "amplitude 0 must not perturb the draw stream");
    }

    #[test]
    fn compile_is_deterministic_for_a_seed() {
        let cfg = config(29);
        let plan = FaultPlan::churn(0.03)
            .with_outages(0.6, 3)
            .with_loss(0.1)
            .with_arrival_spread(1.5);
        let mut a = population(15);
        let mut b = population(15);
        let sa = plan.compile(&mut a, &cfg);
        let sb = plan.compile(&mut b, &cfg);
        assert_eq!(sa, sb);
        let ta: Vec<SimTime> = a.iter().map(|s| s.arrival).collect();
        let tb: Vec<SimTime> = b.iter().map(|s| s.arrival).collect();
        assert_eq!(ta, tb);
    }
}
