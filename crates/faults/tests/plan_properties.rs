//! Property-based tests for fault-plan compilation: for any generated
//! plan, population size and seed, the compiled schedule must be sorted,
//! structurally valid, causally consistent with arrivals, and an exact
//! replay of itself when compiled again from the same seed.

use coop_des::{RoundDriver, SimTime};
use coop_faults::FaultPlan;
use coop_incentives::{MechanismKind, MechanismParams};
use coop_swarm::{FaultKind, PeerSpec, SwarmConfig};
use proptest::prelude::*;

fn config(seed: u64) -> SwarmConfig {
    let mut c = SwarmConfig::tiny_test();
    c.seed = seed;
    c
}

fn population(n: usize) -> Vec<PeerSpec> {
    (0..n)
        .map(|i| {
            PeerSpec::standard(
                16_000.0,
                SimTime::from_secs(i as u64 % 20),
                MechanismKind::BitTorrent,
                MechanismParams::default(),
            )
        })
        .collect()
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..3.0,                        // arrival_spread_s
        0.0f64..0.15,                       // churn_rate
        proptest::option::of(1u64..=60),    // fixed_lifetime_rounds
        0.0f64..1.0,                        // outage_prob
        0u64..8,                            // outage_rounds
        0.0f64..0.5,                        // loss_prob
        1.0f64..600.0,                      // diurnal_period_s
        0.0f64..0.9,                        // diurnal_amplitude
    )
        .prop_map(|(spread, churn, fixed, op, or, loss, period, amp)| FaultPlan {
            arrival_spread_s: spread,
            churn_rate: churn,
            fixed_lifetime_rounds: fixed,
            outage_prob: op,
            outage_rounds: or,
            loss_prob: loss,
            seeder_exit_fraction: None,
            seeder_failure_round: None,
            diurnal_period_s: period,
            diurnal_amplitude: amp,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compilation always yields a sorted event list that passes the
    /// builder's structural validation.
    #[test]
    fn compiled_schedules_are_sorted_and_valid(
        plan in plan_strategy(),
        seed in 0u64..10_000,
        n in 1usize..40,
    ) {
        let cfg = config(seed);
        let mut pop = population(n);
        let schedule = plan.compile(&mut pop, &cfg);
        for pair in schedule.events().windows(2) {
            prop_assert!(pair[0] <= pair[1], "events must be sorted");
        }
        prop_assert!(schedule.validate(n).is_ok());
    }

    /// No fault ever fires at or before its peer's arrival round — the
    /// causal floor the builder enforces.
    #[test]
    fn no_fault_before_arrival(
        plan in plan_strategy(),
        seed in 0u64..10_000,
        n in 1usize..40,
    ) {
        let cfg = config(seed);
        let mut pop = population(n);
        let schedule = plan.compile(&mut pop, &cfg);
        let driver = RoundDriver::new(cfg.round);
        for ev in schedule.events() {
            let arrival_round = driver.round_of(pop[ev.peer].arrival);
            prop_assert!(
                ev.round > arrival_round,
                "{ev:?} fires at or before arrival round {arrival_round}"
            );
        }
    }

    /// Outage windows never overlap a departure: a peer's outage closes
    /// strictly before its churn departure, and every window is paired.
    #[test]
    fn outages_never_overlap_departures(
        plan in plan_strategy(),
        seed in 0u64..10_000,
        n in 1usize..40,
    ) {
        let cfg = config(seed);
        let mut pop = population(n);
        let schedule = plan.compile(&mut pop, &cfg);
        for peer in 0..n {
            let evs: Vec<_> = schedule
                .events()
                .iter()
                .filter(|e| e.peer == peer)
                .collect();
            let starts: Vec<u64> = evs
                .iter()
                .filter(|e| e.kind == FaultKind::OutageStart)
                .map(|e| e.round)
                .collect();
            let ends: Vec<u64> = evs
                .iter()
                .filter(|e| e.kind == FaultKind::OutageEnd)
                .map(|e| e.round)
                .collect();
            prop_assert_eq!(starts.len(), ends.len(), "unpaired outage window");
            for (s, e) in starts.iter().zip(&ends) {
                prop_assert!(e > s, "outage must have positive length");
            }
            if let Some(depart) = evs
                .iter()
                .find(|e| e.kind == FaultKind::Depart)
                .map(|e| e.round)
            {
                for e in &ends {
                    prop_assert!(*e < depart, "outage overlaps departure");
                }
            }
        }
    }

    /// Compiling the same plan twice from the same seed replays exactly:
    /// identical schedules and identical restaggered arrivals.
    #[test]
    fn compilation_replays_deterministically(
        plan in plan_strategy(),
        seed in 0u64..10_000,
        n in 1usize..40,
    ) {
        let cfg = config(seed);
        let mut a = population(n);
        let mut b = population(n);
        let sa = plan.compile(&mut a, &cfg);
        let sb = plan.compile(&mut b, &cfg);
        prop_assert_eq!(sa, sb);
        let ta: Vec<u64> = a.iter().map(|s| s.arrival.as_millis()).collect();
        let tb: Vec<u64> = b.iter().map(|s| s.arrival.as_millis()).collect();
        prop_assert_eq!(ta, tb);
    }

    /// A plan with every rate at zero is inert: it compiles to the empty
    /// (identity) schedule regardless of seed or population.
    #[test]
    fn zero_rate_plans_compile_to_identity(
        seed in 0u64..10_000,
        n in 1usize..40,
    ) {
        let cfg = config(seed);
        let mut pop = population(n);
        let before: Vec<u64> = pop.iter().map(|s| s.arrival.as_millis()).collect();
        let schedule = FaultPlan::none().compile(&mut pop, &cfg);
        prop_assert!(schedule.is_inert());
        prop_assert!(schedule.events().is_empty());
        let after: Vec<u64> = pop.iter().map(|s| s.arrival.as_millis()).collect();
        prop_assert_eq!(before, after);
    }
}
