//! Benchmarks the telemetry recorder's cost on the swarm round loop: the
//! same simulation with the recorder disabled (the default — every probe
//! site is a single branch), enabled at full rate (probe every round, all
//! categories kept), and enabled with sparse sampling. The disabled run is
//! the baseline the determinism tests pin; the enabled/disabled ratio is
//! the observability tax. Snapshots of these numbers live in the repo
//! root's `BENCH_*.json` files.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coop_incentives::MechanismKind;
use coop_swarm::{flash_crowd, SimResult, Simulation, SwarmConfig};
use coop_telemetry::{Category, Recorder, Sampling, TelemetryConfig};

/// One full quick-scale swarm run with the given recorder attached.
fn run_sim(recorder: Recorder) -> SimResult {
    let config = SwarmConfig::tiny_test();
    let population = flash_crowd(&config, 24, MechanismKind::TChain, 7);
    Simulation::builder(config)
        .population(population)
        .recorder(recorder)
        .build()
        .expect("valid setup")
        .run_traced()
        .0
}

/// A recorder factory for one benchmark variant.
type MakeRecorder = fn() -> Recorder;

fn bench_round_loop_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_round_loop");
    group.sample_size(10);

    let variants: [(&str, MakeRecorder); 3] = [
        ("disabled", Recorder::disabled),
        ("enabled_full", || {
            Recorder::enabled(TelemetryConfig {
                probe_every: 1,
                ..TelemetryConfig::default()
            })
        }),
        ("enabled_sampled", || {
            Recorder::enabled(TelemetryConfig {
                probe_every: 10,
                sampling: Sampling::keep_all()
                    .every(Category::Grant, 16)
                    .every(Category::Transfer, 16),
                ..TelemetryConfig::default()
            })
        }),
    ];
    for (label, make) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &make, |b, make| {
            b.iter(|| black_box(run_sim(make())));
        });
    }
    group.finish();
}

criterion_group!(telemetry, bench_round_loop_overhead);
criterion_main!(telemetry);
