//! Micro-benchmarks of the simulator's hot components: bitfield set
//! algebra, rarest-first piece picking, per-mechanism allocation, and the
//! log-space combinatorics behind the exchange probabilities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coop_incentives::analysis::combin::ln_choose;
use coop_incentives::analysis::exchange::q;
use coop_piece::{AvailabilityMap, Bitfield, PiecePicker, RarestFirstPicker};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_bitfield(len: u32, fill: f64, rng: &mut SmallRng) -> Bitfield {
    let mut bf = Bitfield::new(len);
    for i in 0..len {
        if rng.gen_bool(fill) {
            bf.set(i);
        }
    }
    bf
}

fn bench_bitfield(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let a = random_bitfield(512, 0.5, &mut rng);
    let b = random_bitfield(512, 0.5, &mut rng);
    c.bench_function("bitfield/intersects_512", |bch| {
        bch.iter(|| black_box(black_box(&a).intersects(black_box(&b))))
    });
    c.bench_function("bitfield/wants_from_512", |bch| {
        bch.iter(|| black_box(black_box(&a).wants_from(black_box(&b))))
    });
    c.bench_function("bitfield/count_ones_512", |bch| {
        bch.iter(|| black_box(black_box(&a).count_ones()))
    });
}

fn bench_picker(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(4);
    let down = random_bitfield(512, 0.4, &mut rng);
    let up = random_bitfield(512, 0.7, &mut rng);
    let mut avail = AvailabilityMap::new(512);
    for _ in 0..50 {
        let peer = random_bitfield(512, 0.5, &mut rng);
        avail.add_peer(&peer);
    }
    c.bench_function("picker/rarest_first_512_pieces", |bch| {
        let mut r = SmallRng::seed_from_u64(5);
        bch.iter(|| {
            black_box(RarestFirstPicker.pick(
                black_box(&down),
                black_box(&up),
                black_box(&avail),
                &mut r,
            ))
        })
    });
}

fn bench_combinatorics(c: &mut Criterion) {
    c.bench_function("combin/ln_choose_512_256", |b| {
        b.iter(|| black_box(ln_choose(black_box(512), black_box(256))))
    });
    c.bench_function("exchange/q_mid_swarm_m512", |b| {
        b.iter(|| black_box(q(black_box(200), black_box(300), 512)))
    });
}

fn bench_one_round(c: &mut Criterion) {
    // Cost of a single simulation round at a mid-swarm state, per
    // mechanism: build once, step by limiting max_rounds.
    use coop_incentives::MechanismKind;
    use coop_swarm::{flash_crowd, Simulation, SwarmConfig};
    let mut group = c.benchmark_group("sim/full_run_40_peers");
    group.sample_size(10);
    for kind in [MechanismKind::TChain, MechanismKind::Altruism] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| {
                let mut config = SwarmConfig::tiny_test();
                config.max_rounds = 120;
                let population = flash_crowd(&config, 40, k, 11);
                black_box(
                    Simulation::builder(config)
                        .population(population)
                        .build()
                        .unwrap()
                        .run(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bitfield,
    bench_picker,
    bench_combinatorics,
    bench_one_round
);
criterion_main!(benches);
