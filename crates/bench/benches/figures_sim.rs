//! Benchmarks regenerating the simulated figures (Figs. 4–6) at a reduced
//! swarm size: full flash-crowd runs with and without free-riding attacks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coop_attacks::{apply_attack, AttackPlan};
use coop_incentives::MechanismKind;
use coop_piece::FileSpec;
use coop_swarm::{flash_crowd, Simulation, SwarmConfig};

fn bench_config() -> SwarmConfig {
    let mut c = SwarmConfig::scaled_default();
    c.file = FileSpec::new(2 * 1024 * 1024, 64 * 1024);
    c.neighbor_degree = 16;
    c.seeder_bps = 128_000.0;
    c.max_rounds = 400;
    c
}

fn run(kind: MechanismKind, plan: Option<&AttackPlan>) -> coop_swarm::SimResult {
    let config = bench_config();
    let mut population = flash_crowd(&config, 40, kind, 7);
    if let Some(plan) = plan {
        apply_attack(&mut population, plan, 7);
    }
    Simulation::builder(config)
        .population(population)
        .build()
        .expect("valid config")
        .run()
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_compliant_swarm");
    group.sample_size(10);
    for kind in MechanismKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| black_box(run(k, None)))
        });
    }
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_worst_attack");
    group.sample_size(10);
    for kind in [
        MechanismKind::TChain,
        MechanismKind::FairTorrent,
        MechanismKind::Altruism,
    ] {
        let plan = AttackPlan::most_effective(kind, 0.2);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| black_box(run(k, Some(&plan))))
        });
    }
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_large_view");
    group.sample_size(10);
    for kind in [MechanismKind::TChain, MechanismKind::BitTorrent] {
        let plan = AttackPlan::with_large_view(kind, 0.2);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| black_box(run(k, Some(&plan))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4, bench_fig5, bench_fig6);
criterion_main!(benches);
