//! Benchmarks regenerating the paper's Tables I, II and III (the analytic
//! closed forms of Section IV).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coop_incentives::analysis::bootstrap::{
    bootstrap_probability, expected_bootstrap_time, BootstrapParams,
};
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::analysis::equilibrium::{download_rates, EquilibriumParams};
use coop_incentives::analysis::exchange::{pi_ir, PieceCountDistribution};
use coop_incentives::analysis::freeride::{
    collusion_probability, exploitable_resources, FreeRideParams,
};
use coop_incentives::MechanismKind;

fn bench_table1(c: &mut Criterion) {
    let mix = CapacityClassMix::paper_default();
    let mut rng = coop_des::rng::SeedTree::new(1).rng(0);
    let caps = mix.sample(1000, &mut rng);
    let params = EquilibriumParams::default();
    c.bench_function("table1/download_rates_all_algorithms_n1000", |b| {
        b.iter(|| {
            for kind in MechanismKind::ALL {
                black_box(download_rates(kind, black_box(&caps), &params));
            }
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let params = BootstrapParams::paper_example();
    c.bench_function("table2/bootstrap_probabilities_example_column", |b| {
        b.iter(|| {
            for kind in MechanismKind::ALL {
                black_box(bootstrap_probability(kind, black_box(&params)));
            }
        })
    });
    c.bench_function("table2/lemma3_expected_time_1000_newcomers", |b| {
        b.iter(|| {
            black_box(expected_bootstrap_time(
                black_box(1000),
                |_| 0.3,
                1e-9,
                10_000,
            ))
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let dist = PieceCountDistribution::uniform(512);
    let params = FreeRideParams {
        total_capacity: 1e9,
        ..FreeRideParams::default()
    };
    c.bench_function("table3/exploitable_resources_all_algorithms", |b| {
        b.iter(|| {
            for kind in MechanismKind::ALL {
                black_box(exploitable_resources(kind, black_box(&params)));
            }
        })
    });
    c.bench_function("table3/pi_ir_512_pieces_n1000", |b| {
        b.iter(|| black_box(pi_ir(256, 256, 512, black_box(&dist), 1000)))
    });
    c.bench_function("table3/collusion_probabilities", |b| {
        b.iter(|| {
            for kind in MechanismKind::ALL {
                black_box(collusion_probability(kind, 0.1, 200, 1000));
            }
        })
    });
}

criterion_group!(benches, bench_table1, bench_table2, bench_table3);
criterion_main!(benches);
