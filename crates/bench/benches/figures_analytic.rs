//! Benchmarks regenerating the analytic figures: Fig. 2 (idealized
//! fairness/efficiency ranking) and Fig. 3 (piece-exchange probabilities
//! and the Prop. 3 reputation panel).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::analysis::equilibrium::{equilibrium_summary, EquilibriumParams};
use coop_incentives::analysis::exchange::{
    expected_exchange_probability, pi_tc, PieceCountDistribution,
};
use coop_incentives::analysis::reputation::{prop3_efficiency, prop3_fairness};
use coop_incentives::MechanismKind;

fn bench_fig2(c: &mut Criterion) {
    let mix = CapacityClassMix::paper_default();
    let mut rng = coop_des::rng::SeedTree::new(2).rng(0);
    let caps = mix.sample(1000, &mut rng);
    let params = EquilibriumParams::default();
    c.bench_function("fig2/equilibrium_summary_all_algorithms_n1000", |b| {
        b.iter(|| {
            for kind in MechanismKind::ALL {
                black_box(equilibrium_summary(kind, black_box(&caps), &params));
            }
        })
    });
}

fn bench_fig3(c: &mut Criterion) {
    let dist = PieceCountDistribution::uniform(128);
    c.bench_function("fig3/pi_tc_single_pair_m128_n1000", |b| {
        b.iter(|| black_box(pi_tc(64, 80, 128, black_box(&dist), 1000)))
    });
    let small = PieceCountDistribution::uniform(32);
    c.bench_function("fig3/expected_exchange_probability_m32_n1000", |b| {
        b.iter(|| {
            black_box(expected_exchange_probability(
                MechanismKind::TChain,
                black_box(&small),
                1000,
                0.2,
            ))
        })
    });
    let caps: Vec<f64> = (0..100).map(|i| 16_000.0 * (1 + i % 5) as f64).collect();
    let mut reps = caps.clone();
    for r in reps.iter_mut().take(20) {
        *r *= 0.01;
    }
    c.bench_function("fig3/prop3_fairness_efficiency_n100", |b| {
        b.iter(|| {
            black_box(prop3_fairness(black_box(&reps), black_box(&caps)));
            black_box(prop3_efficiency(black_box(&reps), black_box(&caps)));
        })
    });
}

criterion_group!(benches, bench_fig2, bench_fig3);
criterion_main!(benches);
