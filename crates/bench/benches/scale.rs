//! Benchmarks the round-loop hot path at scale: the incremental
//! availability index + SoA peer state against the pre-index naive path
//! (per-bit rarest-first picks, per-round candidate rebuilds, full
//! peer-struct scans), which `coop-swarm`'s `hotpath-oracle` feature keeps
//! available as the baseline.
//!
//! Two groups:
//!
//! * `rarest_pick` — the piece-selection micro benchmark: the trait-object
//!   [`RarestFirstPicker`] walking `iter_missing_from` with a per-piece
//!   availability lookup, versus [`AvailabilityIndex::pick_rarest_into`]'s
//!   word-masked scan over the shared counts slice. Both draw identical
//!   picks (pinned by the swarm equivalence battery).
//! * `sim_n5000` — a full 5000-peer swarm, naive vs indexed vs dirty-set
//!   round loop, same seed, byte-identical results. The median ratios are
//!   the hot-path speedups recorded in `BENCH_2026-08-07_scale.json` and
//!   `BENCH_2026-08-09_scale.json`. A fourth `dirty_profiled` variant
//!   runs the default loop with the phase [`Profiler`] live, so its delta
//!   against `dirty` is the profiler's whole-run overhead; before the
//!   timing loop the per-phase breakdown of one profiled run is printed
//!   to stderr (the same attribution that `BENCH_2026-08-09_profile.json`
//!   snapshots via the CLI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coop_des::rng::SeedTree;
use coop_des::Duration;
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::MechanismKind;
use coop_piece::{
    AvailabilityIndex, Bitfield, FileSpec, PiecePicker, RarestFirstPicker,
};
use coop_swarm::{flash_crowd_with, RoundLoop, SimResult, Simulation, SwarmConfig};
use coop_telemetry::{profile::phase, ProfileReport, Profiler};

const PIECES: u32 = 2048;

/// A populated index plus downloader/uploader bitfields shaped like a
/// mid-run swarm: availability is uneven, the downloader holds half the
/// file, the uploader offers an overlapping two-thirds.
fn pick_fixture() -> (AvailabilityIndex, Bitfield, Bitfield) {
    use rand::Rng as _;
    let mut index = AvailabilityIndex::new(PIECES);
    let mut rng = SeedTree::new(9).rng(0);
    for _ in 0..64 {
        let mut bf = Bitfield::new(PIECES);
        for i in 0..PIECES {
            if rng.gen_bool(f64::from(1 + i % 5) / 8.0) {
                bf.set(i);
            }
        }
        index.add_peer(&bf);
    }
    let mut held = Bitfield::new(PIECES);
    let mut offer = Bitfield::new(PIECES);
    for i in 0..PIECES {
        if i % 2 == 0 {
            held.set(i);
        }
        if i % 3 != 0 {
            offer.set(i);
        }
    }
    (index, held, offer)
}

fn bench_rarest_pick(c: &mut Criterion) {
    let (index, held, offer) = pick_fixture();
    let mut group = c.benchmark_group("rarest_pick");
    group.bench_function("naive_per_bit", |b| {
        let mut rng = SeedTree::new(3).rng(1);
        b.iter(|| {
            black_box(RarestFirstPicker.pick(
                black_box(&held),
                black_box(&offer),
                index.map(),
                &mut rng,
            ))
        })
    });
    group.bench_function("indexed_word_scan", |b| {
        let mut rng = SeedTree::new(3).rng(1);
        let mut ties = Vec::new();
        b.iter(|| {
            black_box(index.pick_rarest_into(
                black_box(&held),
                black_box(&offer),
                &mut ties,
                &mut rng,
            ))
        })
    });
    group.finish();
}

/// The 5000-peer scale cell: a larger piece space than the figure configs
/// (1024 pieces) so rarest-first selection carries realistic weight, with
/// the round count capped to bound bench time. Identical for both paths.
fn scale_config(seed: u64) -> SwarmConfig {
    let mut c = SwarmConfig::scaled_default();
    c.file = FileSpec::new(64 * 1024 * 1024, 16 * 1024);
    c.neighbor_degree = 40;
    c.seeder_bps = 2_048_000.0;
    c.max_rounds = 50;
    c.sample_every = 8;
    c.seed = seed;
    c
}

fn run_scale_sim(mode: Option<RoundLoop>) -> SimResult {
    // `None` runs the naive oracle; `Some` picks the indexed or
    // dirty-set loop. All three produce identical results.
    let config = scale_config(42);
    let population = flash_crowd_with(
        &config,
        5000,
        MechanismKind::BitTorrent,
        42,
        &CapacityClassMix::paper_default(),
        Duration::from_secs(10),
    );
    let builder = Simulation::builder(config).population(population);
    match mode {
        None => builder.naive_hotpath(true),
        Some(round_loop) => builder.round_loop(round_loop),
    }
    .build()
    .expect("scale config validates")
    .run()
}

/// The default (dirty-set) scale cell with phase timers live, returning
/// the gathered per-phase breakdown (the result bytes are identical to
/// every [`run_scale_sim`] mode — profiling only observes).
fn run_scale_sim_profiled() -> (SimResult, ProfileReport) {
    let config = scale_config(42);
    let population = flash_crowd_with(
        &config,
        5000,
        MechanismKind::BitTorrent,
        42,
        &CapacityClassMix::paper_default(),
        Duration::from_secs(10),
    );
    let (result, _, profile) = Simulation::builder(config)
        .population(population)
        .profiler(Profiler::enabled())
        .build()
        .expect("scale config validates")
        .run_profiled();
    (result, profile)
}

/// Prints one profiled run's per-phase attribution to stderr, sorted by
/// total time descending.
fn print_phase_breakdown(profile: &ProfileReport) {
    let run_ns = profile.total_ns(phase::SIM_RUN).max(1);
    let mut phases: Vec<_> = profile
        .phases
        .iter()
        .filter(|(name, _)| name.as_str() != phase::SIM_RUN)
        .collect();
    phases.sort_by_key(|p| std::cmp::Reverse(p.1.total_ns));
    eprintln!("sim_n5000 per-phase breakdown (one indexed run):");
    for (name, stat) in phases {
        eprintln!(
            "  {name:<16} {:>9.3} ms  {:>5.1}%  ({} calls)",
            stat.total_ns as f64 / 1e6,
            stat.total_ns as f64 * 100.0 / run_ns as f64,
            stat.count
        );
    }
}

fn bench_sim_n5000(c: &mut Criterion) {
    let (_, profile) = run_scale_sim_profiled();
    print_phase_breakdown(&profile);
    let mut group = c.benchmark_group("sim_n5000");
    group.sample_size(2);
    for (label, mode) in [
        ("naive", None),
        ("indexed", Some(RoundLoop::Indexed)),
        ("dirty", Some(RoundLoop::Dirty)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| black_box(run_scale_sim(mode)))
        });
    }
    group.bench_function("dirty_profiled", |b| {
        b.iter(|| black_box(run_scale_sim_profiled()))
    });
    group.finish();
}

criterion_group!(scale, bench_rarest_pick, bench_sim_n5000);
criterion_main!(scale);
