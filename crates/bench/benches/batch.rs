//! Benchmarks the parallel batch executor: one full figure grid (six
//! mechanisms, one seed, worst-case attacks) run through `Executor` at
//! increasing worker counts. The `jobs=1` case is the sequential baseline;
//! the ratio between it and the multi-worker runs is the batch speedup on
//! this machine (≈ min(workers, cores, 6) on an idle multi-core box, ≈ 1×
//! on a single-core CI runner — results are byte-identical either way).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coop_attacks::AttackPlan;
use coop_experiments::{Executor, Scale, SimJob};

fn bench_batch_speedup(c: &mut Criterion) {
    let jobs = SimJob::grid(Scale::Quick, &[7], |kind| {
        Some(AttackPlan::most_effective(kind, 0.2))
    });
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut group = c.benchmark_group("batch_executor");
    group.sample_size(10);
    for workers in [1usize, 2, 4, cores].iter().copied().collect::<std::collections::BTreeSet<_>>() {
        let executor = Executor::new(workers);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("jobs={workers}")),
            &executor,
            |b, executor| b.iter(|| black_box(executor.run_sims(&jobs))),
        );
    }
    group.finish();
}

criterion_group!(batch, bench_batch_speedup);
criterion_main!(batch);
