//! # coop-bench
//!
//! Criterion benchmarks that regenerate (and time) each of the paper's
//! tables and figures, plus micro-benchmarks of the hot simulator
//! components:
//!
//! * `benches/tables.rs` — Tables I, II, III (analytic closed forms).
//! * `benches/figures_analytic.rs` — Figs. 2 and 3 (equilibrium summaries
//!   and piece-exchange probability sweeps).
//! * `benches/figures_sim.rs` — Figs. 4, 5 and 6 (full swarm simulations
//!   at quick scale, with and without attacks).
//! * `benches/components.rs` — bitfields, piece picking, mechanism
//!   allocation and single simulation rounds.
//!
//! Run with `cargo bench --workspace`.
