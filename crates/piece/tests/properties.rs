//! Property-based tests for the piece substrate.

use coop_piece::{
    AvailabilityMap, Bitfield, FileSpec, PiecePicker, PieceSelection, RarestFirstPicker,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bitfield_strategy(len: u32) -> impl Strategy<Value = Bitfield> {
    proptest::collection::vec(any::<bool>(), len as usize).prop_map(move |bits| {
        let mut bf = Bitfield::new(len);
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                bf.set(i as u32);
            }
        }
        bf
    })
}

proptest! {
    /// count_ones + count_zeros == len for arbitrary bitfields.
    #[test]
    fn counts_partition_len(bf in bitfield_strategy(97)) {
        prop_assert_eq!(bf.count_ones() + bf.count_zeros(), bf.len());
    }

    /// wants_from(a, b) holds iff the explicit missing set is nonempty, and
    /// missing_from agrees with the iterator.
    #[test]
    fn wants_from_agrees_with_missing_set(a in bitfield_strategy(80), b in bitfield_strategy(80)) {
        let missing: Vec<u32> = a.iter_missing_from(&b).collect();
        prop_assert_eq!(a.wants_from(&b), !missing.is_empty());
        prop_assert_eq!(a.missing_from(&b) as usize, missing.len());
        for i in missing {
            prop_assert!(!a.get(i));
            prop_assert!(b.get(i));
        }
    }

    /// Union is idempotent, commutative in its effect on count, and a
    /// superset of both operands.
    #[test]
    fn union_is_superset(a in bitfield_strategy(70), b in bitfield_strategy(70)) {
        let mut u = a.clone();
        u.union_with(&b);
        for i in a.iter_ones() {
            prop_assert!(u.get(i));
        }
        for i in b.iter_ones() {
            prop_assert!(u.get(i));
        }
        prop_assert!(!u.wants_from(&a));
        prop_assert!(!u.wants_from(&b));
        let mut again = u.clone();
        again.union_with(&b);
        prop_assert_eq!(again, u);
    }

    /// The rarest-first picker always returns a piece the downloader lacks
    /// and the uploader holds, with minimal availability over that set.
    #[test]
    fn rarest_first_is_valid_and_minimal(
        down in bitfield_strategy(40),
        up in bitfield_strategy(40),
        others in proptest::collection::vec(bitfield_strategy(40), 0..5),
        seed in any::<u64>(),
    ) {
        let mut avail = AvailabilityMap::new(40);
        for o in &others {
            avail.add_peer(o);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        match RarestFirstPicker.pick(&down, &up, &avail, &mut rng) {
            PieceSelection::Piece(i) => {
                prop_assert!(!down.get(i));
                prop_assert!(up.get(i));
                let min = down
                    .iter_missing_from(&up)
                    .map(|j| avail.count(j))
                    .min()
                    .unwrap();
                prop_assert_eq!(avail.count(i), min);
            }
            PieceSelection::NothingNeeded => {
                prop_assert!(!down.wants_from(&up));
            }
        }
    }

    /// The run-compressed representation is observationally identical to
    /// the dense one under an arbitrary interleaving of mutations and
    /// queries: compress at a random point, keep mutating, and every
    /// observable (equality, hash-relevant words, counts, iterators, set
    /// algebra) still matches the dense oracle.
    #[test]
    fn compressed_bitfield_matches_dense_oracle(
        init in bitfield_strategy(150),
        ops in proptest::collection::vec((any::<bool>(), 0u32..150), 0..40),
        compress_at in 0usize..40,
        probe in bitfield_strategy(150),
    ) {
        let mut subject = init.clone();
        let mut oracle = init;
        for (k, &(set, i)) in ops.iter().enumerate() {
            if k == compress_at {
                subject.compress();
            }
            if set {
                prop_assert_eq!(subject.set(i), oracle.set(i));
            } else {
                subject.unset(i);
                oracle.unset(i);
            }
        }
        prop_assert_eq!(&subject, &oracle);
        prop_assert_eq!(subject.count_ones(), oracle.count_ones());
        prop_assert_eq!(
            subject.word_iter().collect::<Vec<_>>(),
            oracle.word_iter().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            subject.iter_ones().collect::<Vec<_>>(),
            oracle.iter_ones().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            subject.iter_zeros().collect::<Vec<_>>(),
            oracle.iter_zeros().collect::<Vec<_>>()
        );
        prop_assert_eq!(subject.wants_from(&probe), oracle.wants_from(&probe));
        prop_assert_eq!(probe.wants_from(&subject), probe.wants_from(&oracle));
        prop_assert_eq!(subject.intersects(&probe), oracle.intersects(&probe));
        prop_assert_eq!(subject.missing_from(&probe), oracle.missing_from(&probe));
        prop_assert_eq!(
            subject.iter_common(&probe).collect::<Vec<_>>(),
            oracle.iter_common(&probe).collect::<Vec<_>>()
        );
    }

    /// Piece lengths always sum to the file size.
    #[test]
    fn file_piece_lengths_sum(size in 1u64..10_000_000, piece in 1u64..100_000) {
        let f = FileSpec::new(size, piece);
        let total: u64 = (0..f.num_pieces()).map(|i| f.piece_len(i)).sum();
        prop_assert_eq!(total, size);
    }

    /// Adding then removing a peer leaves the availability map unchanged.
    #[test]
    fn availability_add_remove_roundtrip(
        base in proptest::collection::vec(bitfield_strategy(30), 0..4),
        extra in bitfield_strategy(30),
    ) {
        let mut m = AvailabilityMap::new(30);
        for b in &base {
            m.add_peer(b);
        }
        let snapshot = m.clone();
        m.add_peer(&extra);
        m.remove_peer(&extra);
        prop_assert_eq!(m, snapshot);
    }
}
