//! Property-based equivalence tests for [`AvailabilityIndex`]: under
//! arbitrary have/lose/depart sequences the incremental index must stay
//! indistinguishable from a from-scratch recount, and its rarest-first
//! query must agree with the naive [`RarestFirstPicker`] on identical
//! tie-break RNG. These are the piece-level half of the hot-path
//! equivalence battery (the swarm-level half is `hotpath_equivalence`).

use coop_piece::{
    AvailabilityIndex, AvailabilityMap, Bitfield, PiecePicker, PieceSelection, RarestFirstPicker,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const LEN: u32 = 100; // spans two words, exercising word-skipping tails

fn bitfield_strategy(len: u32) -> impl Strategy<Value = Bitfield> {
    proptest::collection::vec(any::<bool>(), len as usize).prop_map(move |bits| {
        let mut bf = Bitfield::new(len);
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                bf.set(i as u32);
            }
        }
        bf
    })
}

/// One step of a random swarm history, mirroring every mutation the
/// simulator applies to its availability index.
#[derive(Clone, Debug)]
enum Op {
    /// A peer joins with a bitfield (membership add).
    Join(Bitfield),
    /// The `n`-th live peer (mod population) departs (membership remove).
    Depart(usize),
    /// The `n`-th live peer acquires piece `p` (mod missing set), if any.
    Acquire(usize, u32),
    /// The `n`-th live peer loses piece `p` (mod held set), if any — the
    /// fault-injection path.
    Lose(usize, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        bitfield_strategy(LEN).prop_map(Op::Join),
        (any::<u8>()).prop_map(|n| Op::Depart(n as usize)),
        (any::<u8>(), 0..LEN).prop_map(|(n, p)| Op::Acquire(n as usize, p)),
        (any::<u8>(), 0..LEN).prop_map(|(n, p)| Op::Lose(n as usize, p)),
    ]
}

/// Applies `ops` to both the incremental index and a mirror list of peer
/// bitfields, returning the mirror (the ground truth for recounting).
fn replay(ops: &[Op], index: &mut AvailabilityIndex) -> Vec<Bitfield> {
    let mut peers: Vec<Bitfield> = Vec::new();
    for op in ops {
        match op {
            Op::Join(bf) => {
                index.add_peer(bf);
                peers.push(bf.clone());
            }
            Op::Depart(n) => {
                if !peers.is_empty() {
                    let bf = peers.remove(n % peers.len());
                    index.remove_peer(&bf);
                }
            }
            Op::Acquire(n, p) => {
                if !peers.is_empty() {
                    let slot = n % peers.len();
                    let bf = &mut peers[slot];
                    if !bf.get(*p) {
                        bf.set(*p);
                        index.on_piece_acquired(*p);
                    }
                }
            }
            Op::Lose(n, p) => {
                if !peers.is_empty() {
                    let slot = n % peers.len();
                    let bf = &mut peers[slot];
                    if bf.get(*p) {
                        bf.unset(*p);
                        index.on_piece_lost(*p);
                    }
                }
            }
        }
    }
    peers
}

/// The naive from-scratch availability recount.
fn recount(peers: &[Bitfield]) -> AvailabilityMap {
    let mut map = AvailabilityMap::new(LEN);
    for bf in peers {
        map.add_peer(bf);
    }
    map
}

/// The naive bucket histogram: observe every piece count into lazily
/// grown log2 buckets, exactly as the telemetry `Histogram` does.
fn naive_buckets(map: &AvailabilityMap) -> Vec<u64> {
    let mut buckets: Vec<u64> = Vec::new();
    for i in 0..map.num_pieces() {
        let idx = AvailabilityIndex::bucket_of(map.count(i));
        if idx >= buckets.len() {
            buckets.resize(idx + 1, 0);
        }
        buckets[idx] += 1;
    }
    buckets
}

proptest! {
    /// Random have/lose/depart sequences: the incremental counts and
    /// bucket histogram always equal the from-scratch recount.
    #[test]
    fn index_equals_from_scratch_recount(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut index = AvailabilityIndex::new(LEN);
        let peers = replay(&ops, &mut index);
        let fresh = recount(&peers);
        prop_assert_eq!(index.map(), &fresh);
        prop_assert_eq!(index.bucket_counts(), naive_buckets(&fresh));
        prop_assert_eq!(index.rebuilds(), 0);
    }

    /// A from-scratch rebuild of the replayed index is a no-op on its
    /// observable state (and bumps only the rebuild counter).
    #[test]
    fn rebuild_is_observationally_identity(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        let mut index = AvailabilityIndex::new(LEN);
        let peers = replay(&ops, &mut index);
        let before = index.clone();
        index.rebuild_from(peers.iter());
        prop_assert_eq!(index.map(), before.map());
        prop_assert_eq!(index.bucket_counts(), before.bucket_counts());
        prop_assert_eq!(index.rebuilds(), 1);
    }

    /// On identical tie-break RNG streams, the word-skipping rarest-first
    /// query returns exactly what the naive picker returns, for arbitrary
    /// swarm states and bitfield pairs.
    #[test]
    fn pick_rarest_agrees_with_naive_picker(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        down in bitfield_strategy(LEN),
        up in bitfield_strategy(LEN),
        seed in any::<u64>(),
    ) {
        let mut index = AvailabilityIndex::new(LEN);
        replay(&ops, &mut index);
        let mut fast_rng = SmallRng::seed_from_u64(seed);
        let mut naive_rng = SmallRng::seed_from_u64(seed);
        let mut ties = Vec::new();
        let fast = index.pick_rarest_into(&down, &up, &mut ties, &mut fast_rng);
        let naive = RarestFirstPicker.pick(&down, &up, index.map(), &mut naive_rng);
        prop_assert_eq!(fast, naive);
        // Identical RNG consumption: the next draw from both streams
        // agrees, so a simulation interleaving many picks stays aligned.
        prop_assert_eq!(
            rand::RngCore::next_u64(&mut fast_rng),
            rand::RngCore::next_u64(&mut naive_rng)
        );
        if let PieceSelection::Piece(i) = fast {
            prop_assert!(!down.get(i));
            prop_assert!(up.get(i));
        }
    }

    /// The index's word-skipping `min_over` agrees with the map's
    /// per-piece scan over the same needed set.
    #[test]
    fn min_over_agrees_with_map_scan(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        needed in bitfield_strategy(LEN),
    ) {
        let mut index = AvailabilityIndex::new(LEN);
        replay(&ops, &mut index);
        prop_assert_eq!(index.min_over(&needed), index.map().min_over(needed.iter_ones()));
    }
}
