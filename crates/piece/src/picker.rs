//! Piece-selection strategies.
//!
//! The paper assumes local-rarest-first selection ("we suppose that users
//! are equally likely to have a given piece, e.g., as achieved in
//! local-rarest-first piece selection", Section IV-A2), so
//! [`RarestFirstPicker`] is the default. [`RandomFirstPicker`] and
//! [`SequentialPicker`] are provided for ablation experiments.

use rand::seq::SliceRandom;
use rand::RngCore;

use crate::{AvailabilityMap, Bitfield, PieceId};

/// The outcome of asking a picker for the next piece to transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PieceSelection {
    /// Transfer this piece.
    Piece(PieceId),
    /// The downloader needs nothing the uploader has.
    NothingNeeded,
}

/// Strategy for choosing which needed piece to transfer next.
///
/// `pick` receives the downloader's bitfield, the uploader's bitfield, and
/// the swarm availability map; it must return a piece the downloader lacks
/// and the uploader has (or [`PieceSelection::NothingNeeded`]).
pub trait PiecePicker: Send + std::fmt::Debug {
    /// Chooses the next piece for `downloader` to fetch from `uploader`.
    fn pick(
        &self,
        downloader: &Bitfield,
        uploader: &Bitfield,
        availability: &AvailabilityMap,
        rng: &mut dyn RngCore,
    ) -> PieceSelection;
}

/// Local-rarest-first selection: among the pieces the downloader needs and
/// the uploader has, choose one with minimal swarm-wide availability,
/// breaking ties uniformly at random.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RarestFirstPicker;

impl PiecePicker for RarestFirstPicker {
    fn pick(
        &self,
        downloader: &Bitfield,
        uploader: &Bitfield,
        availability: &AvailabilityMap,
        rng: &mut dyn RngCore,
    ) -> PieceSelection {
        let mut best: Vec<PieceId> = Vec::new();
        let mut best_count = u32::MAX;
        for i in downloader.iter_missing_from(uploader) {
            let c = availability.count(i);
            if c < best_count {
                best_count = c;
                best.clear();
                best.push(i);
            } else if c == best_count {
                best.push(i);
            }
        }
        match best.choose(rng) {
            Some(&i) => PieceSelection::Piece(i),
            None => PieceSelection::NothingNeeded,
        }
    }
}

/// Uniform-random selection among needed pieces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RandomFirstPicker;

impl PiecePicker for RandomFirstPicker {
    fn pick(
        &self,
        downloader: &Bitfield,
        uploader: &Bitfield,
        _availability: &AvailabilityMap,
        rng: &mut dyn RngCore,
    ) -> PieceSelection {
        let candidates: Vec<PieceId> = downloader.iter_missing_from(uploader).collect();
        match candidates.choose(rng) {
            Some(&i) => PieceSelection::Piece(i),
            None => PieceSelection::NothingNeeded,
        }
    }
}

/// In-order selection: the lowest-indexed needed piece (streaming-style).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SequentialPicker;

impl PiecePicker for SequentialPicker {
    fn pick(
        &self,
        downloader: &Bitfield,
        uploader: &Bitfield,
        _availability: &AvailabilityMap,
        _rng: &mut dyn RngCore,
    ) -> PieceSelection {
        match downloader.iter_missing_from(uploader).next() {
            Some(i) => PieceSelection::Piece(i),
            None => PieceSelection::NothingNeeded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn bf(len: u32, ones: &[u32]) -> Bitfield {
        let mut b = Bitfield::new(len);
        for &i in ones {
            b.set(i);
        }
        b
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn rarest_first_picks_minimum_availability() {
        let down = bf(4, &[]);
        let up = bf(4, &[0, 1, 2]);
        let mut avail = AvailabilityMap::new(4);
        avail.add_peer(&bf(4, &[0, 1]));
        avail.add_peer(&bf(4, &[0]));
        // Counts: piece0=2, piece1=1, piece2=0 → rarest needed is 2.
        assert_eq!(
            RarestFirstPicker.pick(&down, &up, &avail, &mut rng()),
            PieceSelection::Piece(2)
        );
    }

    #[test]
    fn rarest_first_ties_stay_within_tied_set() {
        let down = bf(4, &[]);
        let up = bf(4, &[1, 2]);
        let avail = AvailabilityMap::new(4); // all counts 0 → tie between 1, 2
        let mut r = rng();
        for _ in 0..20 {
            match RarestFirstPicker.pick(&down, &up, &avail, &mut r) {
                PieceSelection::Piece(i) => assert!(i == 1 || i == 2),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn nothing_needed_when_uploader_has_no_new_pieces() {
        let down = bf(4, &[0, 1]);
        let up = bf(4, &[0, 1]);
        let avail = AvailabilityMap::new(4);
        assert_eq!(
            RarestFirstPicker.pick(&down, &up, &avail, &mut rng()),
            PieceSelection::NothingNeeded
        );
        assert_eq!(
            RandomFirstPicker.pick(&down, &up, &avail, &mut rng()),
            PieceSelection::NothingNeeded
        );
        assert_eq!(
            SequentialPicker.pick(&down, &up, &avail, &mut rng()),
            PieceSelection::NothingNeeded
        );
    }

    #[test]
    fn random_picker_only_returns_needed_pieces() {
        let down = bf(8, &[0, 2, 4, 6]);
        let up = Bitfield::full(8);
        let avail = AvailabilityMap::new(8);
        let mut r = rng();
        for _ in 0..50 {
            match RandomFirstPicker.pick(&down, &up, &avail, &mut r) {
                PieceSelection::Piece(i) => assert!(i % 2 == 1),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn sequential_picker_is_lowest_index() {
        let down = bf(8, &[0]);
        let up = bf(8, &[0, 3, 5]);
        let avail = AvailabilityMap::new(8);
        assert_eq!(
            SequentialPicker.pick(&down, &up, &avail, &mut rng()),
            PieceSelection::Piece(3)
        );
    }
}
