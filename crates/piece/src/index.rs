//! Incremental swarm-availability index — the hot-path replacement for
//! rebuilding availability histograms and rarest-first scans per round.
//!
//! [`AvailabilityIndex`] wraps an [`AvailabilityMap`] and keeps two
//! derived structures current under O(1) per-piece updates:
//!
//! * a **log2-bucketed histogram** of the per-piece counts, matching the
//!   telemetry `Histogram` bucketing (`0 → bucket 0`, `v → 1 + ⌊log2 v⌋`),
//!   so round probes read [`AvailabilityIndex::bucket_counts`] instead of
//!   re-scanning every piece; and
//! * the plain counts themselves, exposed word-skipping through
//!   [`AvailabilityIndex::pick_rarest_into`] (the rarest-first query) and
//!   [`AvailabilityIndex::min_over`] (starvation detection).
//!
//! The index is *proven* equivalent to the from-scratch path: the
//! `availability_index` proptests pin count equality against a naive
//! recount and pick equality against [`crate::RarestFirstPicker`] on
//! identical tie-break RNG, and the swarm's `hotpath_equivalence` suite
//! pins whole-simulation byte identity.
//!
//! # Invariants
//!
//! * `buckets[b]` is exactly the number of pieces whose count falls in
//!   bucket `b` — every mutation moves one piece between two buckets.
//! * Counts never go negative: removals assert, exactly like
//!   [`AvailabilityMap::remove_peer`].
//! * [`AvailabilityIndex::rebuilds`] counts from-scratch rebuilds; the
//!   steady-state simulator hot path performs **zero** (asserted by the
//!   CI `scale-smoke` job via the `swarm.availability.rebuilds` counter).

use rand::seq::SliceRandom;
use rand::RngCore;

use crate::{AvailabilityMap, Bitfield, PieceId, PieceSelection};

/// Buckets needed to cover any `u32` count under log2 bucketing.
const NUM_BUCKETS: usize = 33;

/// An [`AvailabilityMap`] with incrementally-maintained derived state:
/// a bucketed count histogram and word-skipping rarest-first queries.
///
/// # Example
///
/// ```
/// use coop_piece::{AvailabilityIndex, Bitfield};
///
/// let mut index = AvailabilityIndex::new(4);
/// let mut bf = Bitfield::new(4);
/// bf.set(2);
/// index.add_peer(&bf);
/// assert_eq!(index.count(2), 1);
/// // 3 pieces at count 0 (bucket 0), 1 piece at count 1 (bucket 1):
/// assert_eq!(index.bucket_counts(), vec![3, 1]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AvailabilityIndex {
    map: AvailabilityMap,
    buckets: [u64; NUM_BUCKETS],
    rebuilds: u64,
}

impl AvailabilityIndex {
    /// Creates an index over `num_pieces` pieces with all counts at zero.
    pub fn new(num_pieces: u32) -> Self {
        let mut buckets = [0u64; NUM_BUCKETS];
        buckets[0] = u64::from(num_pieces);
        AvailabilityIndex {
            map: AvailabilityMap::new(num_pieces),
            buckets,
            rebuilds: 0,
        }
    }

    /// Number of pieces tracked.
    pub fn num_pieces(&self) -> u32 {
        self.map.num_pieces()
    }

    /// How many peers hold piece `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: PieceId) -> u32 {
        self.map.count(i)
    }

    /// The underlying [`AvailabilityMap`] — for [`crate::PiecePicker`]
    /// implementations and the naive-oracle equivalence tests, which
    /// consume the map interface.
    pub fn map(&self) -> &AvailabilityMap {
        &self.map
    }

    /// The log2 bucket a count of `v` falls in: 0 for 0, `1 + ⌊log2 v⌋`
    /// otherwise. Mirrors the telemetry `Histogram` bucketing so probe
    /// output is byte-identical either way it is produced.
    pub fn bucket_of(v: u32) -> usize {
        if v == 0 {
            0
        } else {
            1 + v.ilog2() as usize
        }
    }

    /// Registers a joining peer's bitfield.
    ///
    /// # Panics
    ///
    /// Panics if the bitfield length does not match the index.
    pub fn add_peer(&mut self, bf: &Bitfield) {
        self.check_len(bf);
        for (w, bits0) in bf.word_iter().enumerate() {
            let mut bits = bits0;
            while bits != 0 {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                self.on_piece_acquired((w * 64) as PieceId + tz);
            }
        }
    }

    /// Unregisters a departing peer's bitfield.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, or if any removed count would go
    /// negative (the peer was never added or pieces were double-removed).
    pub fn remove_peer(&mut self, bf: &Bitfield) {
        self.check_len(bf);
        for (w, bits0) in bf.word_iter().enumerate() {
            let mut bits = bits0;
            while bits != 0 {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                self.on_piece_lost((w * 64) as PieceId + tz);
            }
        }
    }

    /// Records that one more peer now holds piece `i` (after a transfer).
    pub fn on_piece_acquired(&mut self, i: PieceId) {
        let old = self.map.count(i);
        self.map.on_piece_acquired(i);
        self.buckets[Self::bucket_of(old)] -= 1;
        self.buckets[Self::bucket_of(old + 1)] += 1;
    }

    /// Records that one fewer peer holds piece `i` (loss or departure).
    ///
    /// # Panics
    ///
    /// Panics if the count would go negative.
    pub fn on_piece_lost(&mut self, i: PieceId) {
        let old = self.map.count(i);
        self.map.on_piece_lost(i);
        self.buckets[Self::bucket_of(old)] -= 1;
        self.buckets[Self::bucket_of(old - 1)] += 1;
    }

    /// The bucketed count histogram, truncated after its last non-empty
    /// bucket — byte-identical to observing every piece count into a
    /// freshly-built telemetry `Histogram` (which grows its bucket vector
    /// lazily to the highest observed bucket). Empty when the index
    /// tracks zero pieces.
    pub fn bucket_counts(&self) -> Vec<u64> {
        match self.buckets.iter().rposition(|&b| b != 0) {
            Some(last) => self.buckets[..=last].to_vec(),
            None => Vec::new(),
        }
    }

    /// Local-rarest-first query: among the pieces `downloader` lacks and
    /// `uploader` has, choose one with minimal swarm-wide availability,
    /// breaking ties uniformly at random.
    ///
    /// Behaviorally identical to [`crate::RarestFirstPicker`] — same
    /// ascending candidate order, same tie set, and exactly one RNG draw
    /// iff a candidate exists — but word-skipping, and reusing `ties` as
    /// scratch so the hot loop allocates nothing in steady state.
    ///
    /// # Panics
    ///
    /// Panics if the bitfield lengths differ from each other or from the
    /// index.
    pub fn pick_rarest_into(
        &self,
        downloader: &Bitfield,
        uploader: &Bitfield,
        ties: &mut Vec<PieceId>,
        rng: &mut dyn RngCore,
    ) -> PieceSelection {
        assert_eq!(
            downloader.len(),
            uploader.len(),
            "bitfield length mismatch: {} vs {}",
            downloader.len(),
            uploader.len()
        );
        self.check_len(uploader);
        ties.clear();
        let counts = self.map.counts();
        let mut best = u32::MAX;
        for (w, (mine, theirs)) in downloader.word_iter().zip(uploader.word_iter()).enumerate() {
            let mut bits = !mine & theirs;
            while bits != 0 {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                let i = (w * 64) as PieceId + tz;
                let c = counts[i as usize];
                if c < best {
                    best = c;
                    ties.clear();
                    ties.push(i);
                } else if c == best {
                    ties.push(i);
                }
            }
        }
        match ties.choose(rng) {
            Some(&i) => PieceSelection::Piece(i),
            None => PieceSelection::NothingNeeded,
        }
    }

    /// Returns the minimum availability over the pieces set in `needed`,
    /// or `None` when `needed` has no set pieces. The word-skipping,
    /// zero-short-circuiting routing of [`AvailabilityMap::min_over`]
    /// for starvation checks on the hot path.
    ///
    /// # Panics
    ///
    /// Panics if `needed`'s length does not match the index.
    pub fn min_over(&self, needed: &Bitfield) -> Option<u32> {
        self.check_len(needed);
        let counts = self.map.counts();
        let mut min: Option<u32> = None;
        for (w, bits0) in needed.word_iter().enumerate() {
            let mut bits = bits0;
            while bits != 0 {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                let c = counts[(w * 64) + tz as usize];
                if c == 0 {
                    return Some(0);
                }
                min = Some(min.map_or(c, |m| m.min(c)));
            }
        }
        min
    }

    /// Normalized Shannon entropy of the availability distribution; see
    /// [`AvailabilityMap::diversity`].
    pub fn diversity(&self) -> Option<f64> {
        self.map.diversity()
    }

    /// Discards all state and re-adds every bitfield from scratch,
    /// incrementing [`AvailabilityIndex::rebuilds`]. The steady-state
    /// simulator never calls this — it exists for recovery paths and so
    /// regressions that reintroduce per-round rebuilds show up in the
    /// `swarm.availability.rebuilds` telemetry counter.
    pub fn rebuild_from<'a>(&mut self, peers: impl IntoIterator<Item = &'a Bitfield>) {
        self.rebuilds += 1;
        let num_pieces = self.map.num_pieces();
        self.map = AvailabilityMap::new(num_pieces);
        self.buckets = [0; NUM_BUCKETS];
        self.buckets[0] = u64::from(num_pieces);
        for bf in peers {
            self.add_peer(bf);
        }
    }

    /// How many from-scratch rebuilds this index has performed.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    fn check_len(&self, bf: &Bitfield) {
        assert_eq!(
            bf.len(),
            self.map.num_pieces(),
            "bitfield length {} does not match availability map {}",
            bf.len(),
            self.map.num_pieces()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RarestFirstPicker;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn bf(len: u32, ones: &[u32]) -> Bitfield {
        let mut b = Bitfield::new(len);
        for &i in ones {
            b.set(i);
        }
        b
    }

    #[test]
    fn bucket_of_matches_log2_rule() {
        assert_eq!(AvailabilityIndex::bucket_of(0), 0);
        assert_eq!(AvailabilityIndex::bucket_of(1), 1);
        assert_eq!(AvailabilityIndex::bucket_of(2), 2);
        assert_eq!(AvailabilityIndex::bucket_of(3), 2);
        assert_eq!(AvailabilityIndex::bucket_of(4), 3);
        assert_eq!(AvailabilityIndex::bucket_of(u32::MAX), 32);
    }

    #[test]
    fn counts_track_map_semantics() {
        let mut idx = AvailabilityIndex::new(8);
        let a = bf(8, &[0, 1, 2]);
        let b = bf(8, &[2, 3]);
        idx.add_peer(&a);
        idx.add_peer(&b);
        assert_eq!(idx.count(2), 2);
        idx.remove_peer(&a);
        assert_eq!(idx.count(2), 1);
        assert_eq!(idx.count(0), 0);
        assert_eq!(idx.map().count(3), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn removing_unknown_peer_panics() {
        let mut idx = AvailabilityIndex::new(4);
        idx.remove_peer(&bf(4, &[1]));
    }

    #[test]
    fn bucket_counts_follow_mutations() {
        let mut idx = AvailabilityIndex::new(4);
        assert_eq!(idx.bucket_counts(), vec![4]);
        idx.on_piece_acquired(0); // counts 1,0,0,0
        assert_eq!(idx.bucket_counts(), vec![3, 1]);
        idx.on_piece_acquired(0); // counts 2,0,0,0 → bucket 2
        assert_eq!(idx.bucket_counts(), vec![3, 0, 1]);
        idx.on_piece_lost(0);
        idx.on_piece_lost(0);
        assert_eq!(idx.bucket_counts(), vec![4]);
        assert_eq!(AvailabilityIndex::new(0).bucket_counts(), Vec::<u64>::new());
    }

    #[test]
    fn pick_rarest_matches_naive_picker_with_shared_rng() {
        let mut idx = AvailabilityIndex::new(130);
        idx.add_peer(&bf(130, &[0, 64, 65, 129]));
        idx.add_peer(&bf(130, &[0, 64]));
        let down = bf(130, &[0]);
        let up = bf(130, &[0, 1, 64, 65, 129]);
        let mut fast_rng = SmallRng::seed_from_u64(7);
        let mut naive_rng = SmallRng::seed_from_u64(7);
        let mut ties = Vec::new();
        for _ in 0..50 {
            let fast = idx.pick_rarest_into(&down, &up, &mut ties, &mut fast_rng);
            let naive = crate::PiecePicker::pick(
                &RarestFirstPicker,
                &down,
                &up,
                idx.map(),
                &mut naive_rng,
            );
            assert_eq!(fast, naive);
        }
    }

    #[test]
    fn pick_rarest_nothing_needed_draws_no_rng() {
        let idx = AvailabilityIndex::new(8);
        let down = bf(8, &[0, 1]);
        let up = bf(8, &[0, 1]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ties = vec![5]; // stale scratch must be cleared
        assert_eq!(
            idx.pick_rarest_into(&down, &up, &mut ties, &mut rng),
            PieceSelection::NothingNeeded
        );
        assert!(ties.is_empty());
    }

    #[test]
    fn min_over_agrees_with_map_and_short_circuits() {
        let mut idx = AvailabilityIndex::new(70);
        idx.add_peer(&bf(70, &[0, 1, 69]));
        idx.add_peer(&bf(70, &[0]));
        let needed = bf(70, &[0, 1, 69]);
        assert_eq!(idx.min_over(&needed), idx.map().min_over(needed.iter_ones()));
        assert_eq!(idx.min_over(&bf(70, &[2])), Some(0));
        assert_eq!(idx.min_over(&bf(70, &[])), None);
        assert_eq!(idx.min_over(&bf(70, &[0])), Some(2));
    }

    #[test]
    fn rebuild_from_restores_state_and_counts_rebuilds() {
        let peers = [bf(8, &[0, 1]), bf(8, &[1, 2])];
        let mut idx = AvailabilityIndex::new(8);
        for p in &peers {
            idx.add_peer(p);
        }
        let before = idx.clone();
        idx.rebuild_from(peers.iter());
        assert_eq!(idx.map(), before.map());
        assert_eq!(idx.bucket_counts(), before.bucket_counts());
        assert_eq!(idx.rebuilds(), 1);
        assert_eq!(before.rebuilds(), 0);
    }

    #[test]
    fn diversity_delegates_to_map() {
        let mut idx = AvailabilityIndex::new(4);
        assert_eq!(idx.diversity(), None);
        idx.add_peer(&Bitfield::full(4));
        assert!((idx.diversity().unwrap() - 1.0).abs() < 1e-12);
    }
}
