//! A compact fixed-size bitset for tracking piece possession.

use std::fmt;

use crate::PieceId;

const WORD_BITS: usize = 64;

/// A fixed-length bitset over piece indices `0..len`.
///
/// `Bitfield` supports the set algebra the simulator and the analytical
/// model need: membership, counting, and the "does peer *i* need anything
/// from peer *j*" test (`wants_from`), which underlies the paper's
/// piece-exchange probabilities (Eq. 5).
///
/// # Example
///
/// ```
/// use coop_piece::Bitfield;
///
/// let mut a = Bitfield::new(10);
/// let mut b = Bitfield::new(10);
/// a.set(1);
/// b.set(1);
/// b.set(2);
/// // a needs piece 2, which b has:
/// assert!(a.wants_from(&b));
/// // b needs nothing a has:
/// assert!(!b.wants_from(&a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitfield {
    words: Vec<u64>,
    len: u32,
}

impl Bitfield {
    /// Creates an all-zero bitfield over `len` pieces.
    pub fn new(len: u32) -> Self {
        let words = vec![0u64; (len as usize).div_ceil(WORD_BITS)];
        Bitfield { words, len }
    }

    /// Creates an all-one bitfield over `len` pieces (a seeder's bitfield).
    pub fn full(len: u32) -> Self {
        let mut bf = Bitfield::new(len);
        for w in &mut bf.words {
            *w = u64::MAX;
        }
        bf.clear_tail();
        bf
    }

    /// The number of pieces this bitfield covers.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Returns true if the bitfield covers zero pieces.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns whether piece `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: PieceId) -> bool {
        self.check(i);
        let (w, b) = Self::locate(i);
        self.words[w] >> b & 1 == 1
    }

    /// Sets piece `i`. Returns whether the bit was previously unset.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: PieceId) -> bool {
        self.check(i);
        let (w, b) = Self::locate(i);
        let was_unset = self.words[w] >> b & 1 == 0;
        self.words[w] |= 1 << b;
        was_unset
    }

    /// Clears piece `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn unset(&mut self, i: PieceId) {
        self.check(i);
        let (w, b) = Self::locate(i);
        self.words[w] &= !(1 << b);
    }

    /// The number of set pieces.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// The number of unset pieces.
    pub fn count_zeros(&self) -> u32 {
        self.len - self.count_ones()
    }

    /// Returns true if every piece is set (download complete).
    pub fn is_complete(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Iterates over the indices of set pieces in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = PieceId> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Iterates over the indices of unset pieces in increasing order.
    pub fn iter_zeros(&self) -> impl Iterator<Item = PieceId> + '_ {
        (0..self.len).filter(move |&i| !self.get(i))
    }

    /// Returns true if `other` has at least one piece this bitfield lacks —
    /// i.e. whether the owner of `self` *needs* something from the owner of
    /// `other`. This is the event whose probability is `q(i, j)` in Eq. (5)
    /// of the paper.
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn wants_from(&self, other: &Bitfield) -> bool {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .any(|(mine, theirs)| !mine & theirs != 0)
    }

    /// The number of pieces `other` has that this bitfield lacks.
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn missing_from(&self, other: &Bitfield) -> u32 {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(mine, theirs)| (!mine & theirs).count_ones())
            .sum()
    }

    /// Iterates over pieces that `other` has and this bitfield lacks.
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn iter_missing_from<'a>(&'a self, other: &'a Bitfield) -> impl Iterator<Item = PieceId> + 'a {
        self.check_same_len(other);
        (0..self.len).filter(move |&i| !self.get(i) && other.get(i))
    }

    /// Returns true if the two bitfields share at least one set piece —
    /// word-level, so this is the fast path for interest tests on hot
    /// simulator loops.
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn intersects(&self, other: &Bitfield) -> bool {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .any(|(a, b)| a & b != 0)
    }

    /// Iterates over pieces set in both bitfields, skipping all-zero words.
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn iter_common<'a>(&'a self, other: &'a Bitfield) -> impl Iterator<Item = PieceId> + 'a {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(|(w, (a, b))| {
                let mut bits = a & b;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let tz = bits.trailing_zeros();
                        bits &= bits - 1;
                        Some((w * WORD_BITS) as PieceId + tz)
                    }
                })
            })
    }

    /// In-place union: afterwards every piece set in `other` is set here.
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn union_with(&mut self, other: &Bitfield) {
        self.check_same_len(other);
        for (mine, theirs) in self.words.iter_mut().zip(&other.words) {
            *mine |= theirs;
        }
    }

    /// Read-only view of the backing words, least-significant bit first.
    /// Bits at positions `>= len` are always zero, so word-level scans
    /// never see phantom pieces. This is the entry point hot loops (the
    /// availability index, pickers) use to skip all-zero regions a bit at
    /// a time instead of testing every piece index.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites this bitfield with the contents of `other`, reusing the
    /// existing word buffer when capacities allow. This is the allocation-
    /// free alternative to `*self = other.clone()` for scratch bitfields
    /// that are refilled on a hot path.
    pub fn copy_from(&mut self, other: &Bitfield) {
        self.len = other.len;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    fn locate(i: PieceId) -> (usize, usize) {
        (i as usize / WORD_BITS, i as usize % WORD_BITS)
    }

    fn check(&self, i: PieceId) {
        assert!(i < self.len, "piece index {i} out of range 0..{}", self.len);
    }

    fn check_same_len(&self, other: &Bitfield) {
        assert_eq!(
            self.len, other.len,
            "bitfield length mismatch: {} vs {}",
            self.len, other.len
        );
    }

    fn clear_tail(&mut self) {
        let tail_bits = self.len as usize % WORD_BITS;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }
}

impl fmt::Debug for Bitfield {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitfield({}/{} ", self.count_ones(), self.len)?;
        // Show at most the first 64 bits to keep output readable.
        for i in 0..self.len.min(64) {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<PieceId> for Bitfield {
    /// Builds a bitfield sized to the maximum index plus one.
    fn from_iter<T: IntoIterator<Item = PieceId>>(iter: T) -> Self {
        let ids: Vec<PieceId> = iter.into_iter().collect();
        let len = ids.iter().copied().max().map_or(0, |m| m + 1);
        let mut bf = Bitfield::new(len);
        for i in ids {
            bf.set(i);
        }
        bf
    }
}

impl Extend<PieceId> for Bitfield {
    fn extend<T: IntoIterator<Item = PieceId>>(&mut self, iter: T) {
        for i in iter {
            self.set(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty_full_is_complete() {
        let empty = Bitfield::new(100);
        assert_eq!(empty.count_ones(), 0);
        assert!(!empty.is_complete());
        let full = Bitfield::full(100);
        assert_eq!(full.count_ones(), 100);
        assert!(full.is_complete());
    }

    #[test]
    fn full_clears_tail_bits() {
        // 70 pieces spans two words; the top 58 bits of word 1 must be zero.
        let full = Bitfield::full(70);
        assert_eq!(full.count_ones(), 70);
    }

    #[test]
    fn set_get_unset() {
        let mut bf = Bitfield::new(130);
        assert!(bf.set(129));
        assert!(!bf.set(129)); // already set
        assert!(bf.get(129));
        bf.unset(129);
        assert!(!bf.get(129));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitfield::new(10).get(10);
    }

    #[test]
    fn wants_from_detects_needed_pieces() {
        let mut a = Bitfield::new(200);
        let mut b = Bitfield::new(200);
        for i in 0..100 {
            a.set(i);
            b.set(i);
        }
        assert!(!a.wants_from(&b));
        b.set(150);
        assert!(a.wants_from(&b));
        assert!(!b.wants_from(&a));
        assert_eq!(a.missing_from(&b), 1);
        assert_eq!(a.iter_missing_from(&b).collect::<Vec<_>>(), vec![150]);
    }

    #[test]
    fn newcomer_wants_from_anyone_with_pieces() {
        let newcomer = Bitfield::new(64);
        let mut veteran = Bitfield::new(64);
        assert!(!newcomer.wants_from(&veteran)); // veteran has nothing yet
        veteran.set(0);
        assert!(newcomer.wants_from(&veteran));
    }

    #[test]
    fn union_accumulates() {
        let mut a = Bitfield::new(64);
        let b: Bitfield = [1u32, 2, 3].into_iter().collect::<Bitfield>();
        let mut b_resized = Bitfield::new(64);
        for i in b.iter_ones() {
            b_resized.set(i);
        }
        a.union_with(&b_resized);
        assert_eq!(a.count_ones(), 3);
    }

    #[test]
    fn iterators_agree_with_counts() {
        let mut bf = Bitfield::new(300);
        for i in (0..300).step_by(7) {
            bf.set(i);
        }
        assert_eq!(bf.iter_ones().count() as u32, bf.count_ones());
        assert_eq!(bf.iter_zeros().count() as u32, bf.count_zeros());
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut bf: Bitfield = [0u32, 5, 9].into_iter().collect();
        assert_eq!(bf.len(), 10);
        assert_eq!(bf.count_ones(), 3);
        bf.extend([1u32, 2]);
        assert_eq!(bf.count_ones(), 5);
    }

    #[test]
    fn intersects_and_iter_common_agree() {
        let mut a = Bitfield::new(200);
        let mut b = Bitfield::new(200);
        assert!(!a.intersects(&b));
        a.set(5);
        b.set(6);
        assert!(!a.intersects(&b));
        b.set(5);
        a.set(150);
        b.set(150);
        assert!(a.intersects(&b));
        assert_eq!(a.iter_common(&b).collect::<Vec<_>>(), vec![5, 150]);
    }

    #[test]
    fn debug_is_nonempty() {
        let bf = Bitfield::new(3);
        assert!(!format!("{bf:?}").is_empty());
    }
}
