//! A compact fixed-size bitset for tracking piece possession.
//!
//! Two storage representations hide behind one API:
//!
//! * **Dense** — one `u64` word per 64 pieces, the default, optimal for
//!   bitfields in the middle of a download; and
//! * **Runs** — sorted, disjoint, non-adjacent half-open intervals
//!   `[start, end)`, the memory diet for near-complete (or freshly
//!   seeded) bitfields, where the whole field collapses to a handful of
//!   runs regardless of the piece count.
//!
//! All set-algebra queries go through [`Bitfield::word_iter`], which
//! yields the logical 64-bit words of either representation, so the two
//! storages are observationally identical: equality, hashing, iteration
//! and the interest tests cannot tell them apart. [`Bitfield::compress`]
//! switches to runs when they are strictly smaller; mutations keep runs
//! exact ([`Bitfield::set`]/[`Bitfield::unset`] splice) and operations
//! that want word-level writes densify first.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::PieceId;

const WORD_BITS: usize = 64;

/// A fixed-length bitset over piece indices `0..len`.
///
/// `Bitfield` supports the set algebra the simulator and the analytical
/// model need: membership, counting, and the "does peer *i* need anything
/// from peer *j*" test (`wants_from`), which underlies the paper's
/// piece-exchange probabilities (Eq. 5).
///
/// # Example
///
/// ```
/// use coop_piece::Bitfield;
///
/// let mut a = Bitfield::new(10);
/// let mut b = Bitfield::new(10);
/// a.set(1);
/// b.set(1);
/// b.set(2);
/// // a needs piece 2, which b has:
/// assert!(a.wants_from(&b));
/// // b needs nothing a has:
/// assert!(!b.wants_from(&a));
/// ```
#[derive(Clone)]
pub struct Bitfield {
    repr: Repr,
    len: u32,
}

/// The backing storage. Run lists hold sorted, disjoint, *non-adjacent*
/// half-open `[start, end)` intervals with `start < end <= len`, plus the
/// cached popcount so `count_ones` stays O(1).
#[derive(Clone)]
enum Repr {
    Dense(Vec<u64>),
    Runs { runs: Vec<(u32, u32)>, ones: u32 },
}

impl Bitfield {
    /// Creates an all-zero bitfield over `len` pieces.
    pub fn new(len: u32) -> Self {
        let words = vec![0u64; (len as usize).div_ceil(WORD_BITS)];
        Bitfield {
            repr: Repr::Dense(words),
            len,
        }
    }

    /// Creates an all-one bitfield over `len` pieces (a seeder's
    /// bitfield). Stored as a single run — a seeder's bitfield costs the
    /// same 8 bytes whether it covers 100 pieces or 100 million.
    pub fn full(len: u32) -> Self {
        let runs = if len == 0 { Vec::new() } else { vec![(0, len)] };
        Bitfield {
            repr: Repr::Runs { runs, ones: len },
            len,
        }
    }

    /// The number of pieces this bitfield covers.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Returns true if the bitfield covers zero pieces.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns whether piece `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: PieceId) -> bool {
        self.check(i);
        match &self.repr {
            Repr::Dense(words) => {
                let (w, b) = Self::locate(i);
                words[w] >> b & 1 == 1
            }
            Repr::Runs { runs, .. } => {
                let idx = runs.partition_point(|&(s, _)| s <= i);
                idx > 0 && runs[idx - 1].1 > i
            }
        }
    }

    /// Sets piece `i`. Returns whether the bit was previously unset.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: PieceId) -> bool {
        self.check(i);
        match &mut self.repr {
            Repr::Dense(words) => {
                let (w, b) = Self::locate(i);
                let was_unset = words[w] >> b & 1 == 0;
                words[w] |= 1 << b;
                was_unset
            }
            Repr::Runs { runs, ones } => {
                let idx = runs.partition_point(|&(s, _)| s <= i);
                if idx > 0 && runs[idx - 1].1 > i {
                    return false;
                }
                *ones += 1;
                let merge_left = idx > 0 && runs[idx - 1].1 == i;
                let merge_right = idx < runs.len() && runs[idx].0 == i + 1;
                match (merge_left, merge_right) {
                    (true, true) => {
                        runs[idx - 1].1 = runs[idx].1;
                        runs.remove(idx);
                    }
                    (true, false) => runs[idx - 1].1 = i + 1,
                    (false, true) => runs[idx].0 = i,
                    (false, false) => runs.insert(idx, (i, i + 1)),
                }
                true
            }
        }
    }

    /// Clears piece `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn unset(&mut self, i: PieceId) {
        self.check(i);
        match &mut self.repr {
            Repr::Dense(words) => {
                let (w, b) = Self::locate(i);
                words[w] &= !(1 << b);
            }
            Repr::Runs { runs, ones } => {
                let idx = runs.partition_point(|&(s, _)| s <= i);
                if idx == 0 || runs[idx - 1].1 <= i {
                    return;
                }
                *ones -= 1;
                let (s, e) = runs[idx - 1];
                if s == i && e == i + 1 {
                    runs.remove(idx - 1);
                } else if s == i {
                    runs[idx - 1].0 = i + 1;
                } else if e == i + 1 {
                    runs[idx - 1].1 = i;
                } else {
                    runs[idx - 1].1 = i;
                    runs.insert(idx, (i + 1, e));
                }
            }
        }
    }

    /// The number of set pieces.
    pub fn count_ones(&self) -> u32 {
        match &self.repr {
            Repr::Dense(words) => words.iter().map(|w| w.count_ones()).sum(),
            Repr::Runs { ones, .. } => *ones,
        }
    }

    /// The number of unset pieces.
    pub fn count_zeros(&self) -> u32 {
        self.len - self.count_ones()
    }

    /// Returns true if every piece is set (download complete).
    pub fn is_complete(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Iterates over the indices of set pieces in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = PieceId> + '_ {
        Self::bits_of(self.word_iter(), |w| w)
    }

    /// Iterates over the indices of unset pieces in increasing order.
    pub fn iter_zeros(&self) -> impl Iterator<Item = PieceId> + '_ {
        let len = self.len;
        Self::bits_of(self.word_iter(), |w| !w).take_while(move |&i| i < len)
    }

    /// Returns true if `other` has at least one piece this bitfield lacks —
    /// i.e. whether the owner of `self` *needs* something from the owner of
    /// `other`. This is the event whose probability is `q(i, j)` in Eq. (5)
    /// of the paper.
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn wants_from(&self, other: &Bitfield) -> bool {
        self.check_same_len(other);
        self.word_iter()
            .zip(other.word_iter())
            .any(|(mine, theirs)| !mine & theirs != 0)
    }

    /// The number of pieces `other` has that this bitfield lacks.
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn missing_from(&self, other: &Bitfield) -> u32 {
        self.check_same_len(other);
        self.word_iter()
            .zip(other.word_iter())
            .map(|(mine, theirs)| (!mine & theirs).count_ones())
            .sum()
    }

    /// Iterates over pieces that `other` has and this bitfield lacks.
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn iter_missing_from<'a>(&'a self, other: &'a Bitfield) -> impl Iterator<Item = PieceId> + 'a {
        self.check_same_len(other);
        Self::bits_of(
            self.word_iter().zip(other.word_iter()),
            |(mine, theirs)| !mine & theirs,
        )
    }

    /// Returns true if the two bitfields share at least one set piece —
    /// word-level, so this is the fast path for interest tests on hot
    /// simulator loops.
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn intersects(&self, other: &Bitfield) -> bool {
        self.check_same_len(other);
        self.word_iter()
            .zip(other.word_iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Iterates over pieces set in both bitfields, skipping all-zero words.
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn iter_common<'a>(&'a self, other: &'a Bitfield) -> impl Iterator<Item = PieceId> + 'a {
        self.check_same_len(other);
        Self::bits_of(self.word_iter().zip(other.word_iter()), |(a, b)| a & b)
    }

    /// In-place union: afterwards every piece set in `other` is set here.
    /// Densifies a run-compressed receiver (word-level writes want words).
    ///
    /// # Panics
    ///
    /// Panics if the bitfields have different lengths.
    pub fn union_with(&mut self, other: &Bitfield) {
        self.check_same_len(other);
        self.densify();
        let Repr::Dense(words) = &mut self.repr else {
            unreachable!("just densified");
        };
        for (mine, theirs) in words.iter_mut().zip(other.word_iter()) {
            *mine |= theirs;
        }
    }

    /// Iterates the logical 64-bit words of the bitfield, least-significant
    /// bit first. Bits at positions `>= len` are always zero, so word-level
    /// scans never see phantom pieces. This is the entry point hot loops
    /// (the availability index, pickers) use to skip all-zero regions a
    /// word at a time instead of testing every piece index — and it is the
    /// seam that makes the dense and run-compressed representations
    /// observationally identical.
    pub fn word_iter(&self) -> Words<'_> {
        let num_words = (self.len as usize).div_ceil(WORD_BITS);
        match &self.repr {
            Repr::Dense(words) => Words(WordsState::Dense(words.iter())),
            Repr::Runs { runs, .. } => Words(WordsState::Runs {
                runs,
                cursor: 0,
                word: 0,
                num_words,
            }),
        }
    }

    /// Overwrites this bitfield with the contents of `other`, reusing the
    /// existing word buffer when both sides are dense. This is the
    /// allocation-free alternative to `*self = other.clone()` for scratch
    /// bitfields that are refilled on a hot path.
    pub fn copy_from(&mut self, other: &Bitfield) {
        self.len = other.len;
        match (&mut self.repr, &other.repr) {
            (Repr::Dense(mine), Repr::Dense(theirs)) => {
                mine.clear();
                mine.extend_from_slice(theirs);
            }
            _ => self.repr = other.repr.clone(),
        }
    }

    /// Switches to the run-compressed representation when it is strictly
    /// smaller than the dense one; otherwise stays (or re-densifies to)
    /// dense. Returns whether the bitfield is run-compressed afterwards.
    ///
    /// Compression is purely a storage decision — every observation is
    /// identical before and after — but callers on deterministic paths
    /// should invoke it at deterministic points (completion, departure)
    /// so memory profiles are reproducible.
    pub fn compress(&mut self) -> bool {
        let num_words = (self.len as usize).div_ceil(WORD_BITS);
        // A run list of r intervals costs r * 8 bytes, same unit as words:
        // compress only when strictly smaller.
        let max_runs = num_words.saturating_sub(1).max(1);
        match &self.repr {
            Repr::Runs { runs, .. } => {
                if runs.len() <= max_runs || self.len == 0 {
                    return true;
                }
                self.densify();
                false
            }
            Repr::Dense(_) => {
                let mut runs: Vec<(u32, u32)> = Vec::new();
                let mut ones = 0u32;
                for i in self.iter_ones() {
                    ones += 1;
                    match runs.last_mut() {
                        Some(last) if last.1 == i => last.1 = i + 1,
                        _ => {
                            if runs.len() == max_runs {
                                return false; // denser than dense: keep words
                            }
                            runs.push((i, i + 1));
                        }
                    }
                }
                self.repr = Repr::Runs { runs, ones };
                true
            }
        }
    }

    /// Whether the bitfield currently uses the run-compressed storage.
    pub fn is_compressed(&self) -> bool {
        matches!(self.repr, Repr::Runs { .. })
    }

    /// Bytes of heap the backing storage occupies (capacity, not length) —
    /// the quantity the memory diet actually shrinks.
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Dense(words) => words.capacity() * std::mem::size_of::<u64>(),
            Repr::Runs { runs, .. } => runs.capacity() * std::mem::size_of::<(u32, u32)>(),
        }
    }

    /// Converts run storage back to words (no-op when already dense).
    fn densify(&mut self) {
        if let Repr::Runs { runs, .. } = &self.repr {
            let mut words = vec![0u64; (self.len as usize).div_ceil(WORD_BITS)];
            for &(start, end) in runs {
                let (mut s, e) = (start as usize, end as usize);
                while s < e {
                    let (w, b) = (s / WORD_BITS, s % WORD_BITS);
                    let n = (e - s).min(WORD_BITS - b);
                    let mask = if n == WORD_BITS {
                        u64::MAX
                    } else {
                        ((1u64 << n) - 1) << b
                    };
                    words[w] |= mask;
                    s += n;
                }
            }
            self.repr = Repr::Dense(words);
        }
    }

    /// Expands a word stream into ascending bit indices, applying `f` to
    /// each word first (identity, complement, intersection, ...).
    fn bits_of<T, I, F>(words: I, f: F) -> impl Iterator<Item = PieceId>
    where
        I: Iterator<Item = T>,
        F: Fn(T) -> u64,
    {
        words.enumerate().flat_map(move |(w, item)| {
            let mut bits = f(item);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some((w * WORD_BITS) as PieceId + tz)
                }
            })
        })
    }

    fn locate(i: PieceId) -> (usize, usize) {
        (i as usize / WORD_BITS, i as usize % WORD_BITS)
    }

    fn check(&self, i: PieceId) {
        assert!(i < self.len, "piece index {i} out of range 0..{}", self.len);
    }

    fn check_same_len(&self, other: &Bitfield) {
        assert_eq!(
            self.len, other.len,
            "bitfield length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

/// Iterator over the logical words of a [`Bitfield`], independent of its
/// storage representation. See [`Bitfield::word_iter`].
pub struct Words<'a>(WordsState<'a>);

enum WordsState<'a> {
    Dense(std::slice::Iter<'a, u64>),
    Runs {
        runs: &'a [(u32, u32)],
        cursor: usize,
        word: usize,
        num_words: usize,
    },
}

impl Iterator for Words<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        match &mut self.0 {
            WordsState::Dense(iter) => iter.next().copied(),
            WordsState::Runs {
                runs,
                cursor,
                word,
                num_words,
            } => {
                if *word == *num_words {
                    return None;
                }
                let lo = (*word * WORD_BITS) as u64;
                let hi = lo + WORD_BITS as u64;
                while *cursor < runs.len() && u64::from(runs[*cursor].1) <= lo {
                    *cursor += 1;
                }
                let mut bits = 0u64;
                let mut c = *cursor;
                while c < runs.len() && u64::from(runs[c].0) < hi {
                    let s = u64::from(runs[c].0).max(lo);
                    let e = u64::from(runs[c].1).min(hi);
                    let n = e - s;
                    let mask = if n == WORD_BITS as u64 {
                        u64::MAX
                    } else {
                        ((1u64 << n) - 1) << (s - lo)
                    };
                    bits |= mask;
                    if u64::from(runs[c].1) > hi {
                        break; // run continues into the next word
                    }
                    c += 1;
                }
                *word += 1;
                Some(bits)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match &self.0 {
            WordsState::Dense(iter) => iter.len(),
            WordsState::Runs { word, num_words, .. } => num_words - word,
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Words<'_> {}

impl PartialEq for Bitfield {
    /// Semantic equality: two bitfields are equal when they cover the same
    /// pieces, regardless of storage representation.
    fn eq(&self, other: &Bitfield) -> bool {
        self.len == other.len
            && self
                .word_iter()
                .zip(other.word_iter())
                .all(|(a, b)| a == b)
    }
}

impl Eq for Bitfield {}

impl Hash for Bitfield {
    /// Hashes the logical words, so a dense and a run-compressed view of
    /// the same set hash identically (required by `PartialEq`).
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        for w in self.word_iter() {
            w.hash(state);
        }
    }
}

impl fmt::Debug for Bitfield {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitfield({}/{} ", self.count_ones(), self.len)?;
        // Show at most the first 64 bits to keep output readable.
        for i in 0..self.len.min(64) {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<PieceId> for Bitfield {
    /// Builds a bitfield sized to the maximum index plus one.
    fn from_iter<T: IntoIterator<Item = PieceId>>(iter: T) -> Self {
        let ids: Vec<PieceId> = iter.into_iter().collect();
        let len = ids.iter().copied().max().map_or(0, |m| m + 1);
        let mut bf = Bitfield::new(len);
        for i in ids {
            bf.set(i);
        }
        bf
    }
}

impl Extend<PieceId> for Bitfield {
    fn extend<T: IntoIterator<Item = PieceId>>(&mut self, iter: T) {
        for i in iter {
            self.set(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn new_is_empty_full_is_complete() {
        let empty = Bitfield::new(100);
        assert_eq!(empty.count_ones(), 0);
        assert!(!empty.is_complete());
        let full = Bitfield::full(100);
        assert_eq!(full.count_ones(), 100);
        assert!(full.is_complete());
    }

    #[test]
    fn full_clears_tail_bits() {
        // 70 pieces spans two words; the top 58 bits of word 1 must be zero.
        let full = Bitfield::full(70);
        assert_eq!(full.count_ones(), 70);
        let words: Vec<u64> = full.word_iter().collect();
        assert_eq!(words, vec![u64::MAX, (1u64 << 6) - 1]);
    }

    #[test]
    fn set_get_unset() {
        let mut bf = Bitfield::new(130);
        assert!(bf.set(129));
        assert!(!bf.set(129)); // already set
        assert!(bf.get(129));
        bf.unset(129);
        assert!(!bf.get(129));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitfield::new(10).get(10);
    }

    #[test]
    fn wants_from_detects_needed_pieces() {
        let mut a = Bitfield::new(200);
        let mut b = Bitfield::new(200);
        for i in 0..100 {
            a.set(i);
            b.set(i);
        }
        assert!(!a.wants_from(&b));
        b.set(150);
        assert!(a.wants_from(&b));
        assert!(!b.wants_from(&a));
        assert_eq!(a.missing_from(&b), 1);
        assert_eq!(a.iter_missing_from(&b).collect::<Vec<_>>(), vec![150]);
    }

    #[test]
    fn newcomer_wants_from_anyone_with_pieces() {
        let newcomer = Bitfield::new(64);
        let mut veteran = Bitfield::new(64);
        assert!(!newcomer.wants_from(&veteran)); // veteran has nothing yet
        veteran.set(0);
        assert!(newcomer.wants_from(&veteran));
    }

    #[test]
    fn union_accumulates() {
        let mut a = Bitfield::new(64);
        let b: Bitfield = [1u32, 2, 3].into_iter().collect::<Bitfield>();
        let mut b_resized = Bitfield::new(64);
        for i in b.iter_ones() {
            b_resized.set(i);
        }
        a.union_with(&b_resized);
        assert_eq!(a.count_ones(), 3);
    }

    #[test]
    fn iterators_agree_with_counts() {
        let mut bf = Bitfield::new(300);
        for i in (0..300).step_by(7) {
            bf.set(i);
        }
        assert_eq!(bf.iter_ones().count() as u32, bf.count_ones());
        assert_eq!(bf.iter_zeros().count() as u32, bf.count_zeros());
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut bf: Bitfield = [0u32, 5, 9].into_iter().collect();
        assert_eq!(bf.len(), 10);
        assert_eq!(bf.count_ones(), 3);
        bf.extend([1u32, 2]);
        assert_eq!(bf.count_ones(), 5);
    }

    #[test]
    fn intersects_and_iter_common_agree() {
        let mut a = Bitfield::new(200);
        let mut b = Bitfield::new(200);
        assert!(!a.intersects(&b));
        a.set(5);
        b.set(6);
        assert!(!a.intersects(&b));
        b.set(5);
        a.set(150);
        b.set(150);
        assert!(a.intersects(&b));
        assert_eq!(a.iter_common(&b).collect::<Vec<_>>(), vec![5, 150]);
    }

    #[test]
    fn debug_is_nonempty() {
        let bf = Bitfield::new(3);
        assert!(!format!("{bf:?}").is_empty());
    }

    // --- run-compressed representation ---

    /// A dense and a compressed copy of the same set, for paired checks.
    fn dense_and_runs(len: u32, ones: &[u32]) -> (Bitfield, Bitfield) {
        let mut dense = Bitfield::new(len);
        for &i in ones {
            dense.set(i);
        }
        let mut runs = dense.clone();
        runs.compress();
        (dense, runs)
    }

    fn hash_of(bf: &Bitfield) -> u64 {
        let mut h = DefaultHasher::new();
        bf.hash(&mut h);
        h.finish()
    }

    #[test]
    fn full_is_run_compressed_and_equal_to_dense_full() {
        let full = Bitfield::full(1000);
        assert!(full.is_compressed());
        let mut dense = Bitfield::new(1000);
        for i in 0..1000 {
            dense.set(i);
        }
        assert!(!dense.is_compressed());
        assert_eq!(full, dense);
        assert_eq!(hash_of(&full), hash_of(&dense));
        assert!(full.heap_bytes() < dense.heap_bytes());
    }

    #[test]
    fn compress_declines_when_runs_beat_nothing() {
        // Alternating bits: runs would cost far more than words.
        let mut bf = Bitfield::new(256);
        for i in (0..256).step_by(2) {
            bf.set(i);
        }
        assert!(!bf.compress());
        assert!(!bf.is_compressed());
    }

    #[test]
    fn set_splices_runs() {
        let mut bf = Bitfield::full(100);
        bf.unset(50); // split into two runs
        assert!(bf.is_compressed());
        assert_eq!(bf.count_ones(), 99);
        assert!(!bf.get(50));
        assert!(bf.set(50)); // merge the two runs back
        assert!(!bf.set(50));
        assert_eq!(bf.count_ones(), 100);
        assert!(bf.is_complete());
    }

    #[test]
    fn unset_edges_and_interior() {
        let mut bf = Bitfield::full(10);
        bf.unset(0); // shrink left edge
        bf.unset(9); // shrink right edge
        bf.unset(5); // split interior
        bf.unset(5); // idempotent
        assert_eq!(bf.count_ones(), 7);
        assert_eq!(
            bf.iter_ones().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 6, 7, 8]
        );
        // Remove a singleton run entirely.
        let mut one = Bitfield::new(5);
        one.set(2);
        one.compress();
        one.unset(2);
        assert_eq!(one.count_ones(), 0);
        assert!(one.iter_ones().next().is_none());
    }

    #[test]
    fn word_iter_is_representation_independent() {
        // 3 runs over 4 words: [0,3) [63,66) [130,135). A 4th run would
        // not be strictly smaller than dense and compress() would decline.
        let ones = [0, 1, 2, 63, 64, 65, 130, 131, 132, 133, 134];
        let (dense, runs) = dense_and_runs(199, &ones);
        assert!(runs.is_compressed());
        let dw: Vec<u64> = dense.word_iter().collect();
        let rw: Vec<u64> = runs.word_iter().collect();
        assert_eq!(dw, rw);
        assert_eq!(dense.word_iter().len(), 4);
    }

    #[test]
    fn run_spanning_multiple_words_renders_correctly() {
        let (dense, runs) = dense_and_runs(300, &(10..200).collect::<Vec<_>>());
        assert!(runs.is_compressed());
        assert_eq!(
            dense.word_iter().collect::<Vec<_>>(),
            runs.word_iter().collect::<Vec<_>>()
        );
        assert_eq!(runs.count_ones(), 190);
    }

    #[test]
    fn mixed_representation_set_algebra() {
        let (a_dense, a_runs) = dense_and_runs(200, &(0..190).collect::<Vec<_>>());
        let mut b = Bitfield::new(200);
        b.set(195);
        // wants_from across representations
        assert!(a_dense.wants_from(&b));
        assert!(a_runs.wants_from(&b));
        assert!(!b.wants_from(&b));
        assert_eq!(a_runs.missing_from(&b), 1);
        assert_eq!(
            a_runs.iter_missing_from(&b).collect::<Vec<_>>(),
            vec![195]
        );
        assert!(!a_runs.intersects(&b));
        b.set(100);
        assert!(a_runs.intersects(&b));
        assert_eq!(a_runs.iter_common(&b).collect::<Vec<_>>(), vec![100]);
        // union densifies but stays equal
        let mut u = a_runs.clone();
        u.union_with(&b);
        assert!(!u.is_compressed());
        assert_eq!(u.count_ones(), 191);
    }

    #[test]
    fn copy_from_preserves_representation() {
        let (_, runs) = dense_and_runs(128, &(0..120).collect::<Vec<_>>());
        let mut scratch = Bitfield::new(5);
        scratch.copy_from(&runs);
        assert_eq!(scratch, runs);
        assert!(scratch.is_compressed());
        let dense = Bitfield::new(128);
        scratch.copy_from(&dense);
        assert!(!scratch.is_compressed());
        assert_eq!(scratch.count_ones(), 0);
    }

    #[test]
    fn compress_roundtrip_preserves_observations() {
        let ones = [3, 4, 5, 6, 7, 100, 101, 102, 511];
        let (dense, mut bf) = dense_and_runs(512, &ones);
        assert!(bf.is_compressed());
        assert_eq!(bf, dense);
        assert_eq!(bf.iter_ones().collect::<Vec<_>>(), ones.to_vec());
        assert_eq!(bf.iter_zeros().count(), 512 - ones.len());
        // Mutate while compressed, then compare against the dense oracle.
        let mut oracle = dense.clone();
        for i in [0u32, 5, 200, 201, 202, 511] {
            assert_eq!(bf.set(i), oracle.set(i));
        }
        for i in [4u32, 100, 200, 999 % 512] {
            bf.unset(i);
            oracle.unset(i);
        }
        assert_eq!(bf, oracle);
        assert_eq!(hash_of(&bf), hash_of(&oracle));
        assert_eq!(
            bf.iter_ones().collect::<Vec<_>>(),
            oracle.iter_ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_length_bitfield_compresses() {
        let mut bf = Bitfield::new(0);
        assert!(bf.compress());
        assert!(bf.is_compressed());
        assert!(bf.word_iter().next().is_none());
        assert_eq!(bf, Bitfield::full(0));
    }
}
