//! File geometry: size, piece size, piece count.

use std::fmt;

use crate::PieceId;

/// Describes the file being distributed: total size and piece size.
///
/// The paper's experiments use a 128 MB file; piece sizes follow BitTorrent
/// convention (256 KiB by default in the experiment harness).
///
/// # Example
///
/// ```
/// use coop_piece::FileSpec;
/// let f = FileSpec::new(1_000_000, 256 * 1024);
/// assert_eq!(f.num_pieces(), 4);            // three full pieces + remainder
/// assert_eq!(f.piece_len(3), 1_000_000 - 3 * 256 * 1024);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FileSpec {
    size_bytes: u64,
    piece_size: u64,
}

impl FileSpec {
    /// Creates a file spec.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero, or if the file would have more
    /// than `u32::MAX` pieces.
    pub fn new(size_bytes: u64, piece_size: u64) -> Self {
        assert!(size_bytes > 0, "file size must be positive");
        assert!(piece_size > 0, "piece size must be positive");
        let pieces = size_bytes.div_ceil(piece_size);
        assert!(
            pieces <= u32::MAX as u64,
            "file has too many pieces ({pieces})"
        );
        FileSpec {
            size_bytes,
            piece_size,
        }
    }

    /// Total file size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Nominal piece size in bytes (the final piece may be shorter).
    pub fn piece_size(&self) -> u64 {
        self.piece_size
    }

    /// Number of pieces in the file.
    pub fn num_pieces(&self) -> u32 {
        self.size_bytes.div_ceil(self.piece_size) as u32
    }

    /// The byte length of piece `i` (the final piece may be a remainder).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn piece_len(&self, i: PieceId) -> u64 {
        let n = self.num_pieces();
        assert!(i < n, "piece index {i} out of range 0..{n}");
        if i + 1 == n {
            self.size_bytes - (n as u64 - 1) * self.piece_size
        } else {
            self.piece_size
        }
    }
}

impl fmt::Display for FileSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bytes in {} pieces of {} bytes",
            self.size_bytes,
            self.num_pieces(),
            self.piece_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let f = FileSpec::new(128 * 1024 * 1024, 256 * 1024);
        assert_eq!(f.num_pieces(), 512);
        assert_eq!(f.piece_len(511), 256 * 1024);
    }

    #[test]
    fn remainder_piece() {
        let f = FileSpec::new(1000, 256);
        assert_eq!(f.num_pieces(), 4);
        assert_eq!(f.piece_len(0), 256);
        assert_eq!(f.piece_len(3), 1000 - 768);
    }

    #[test]
    fn piece_lengths_sum_to_file_size() {
        let f = FileSpec::new(123_457, 1000);
        let total: u64 = (0..f.num_pieces()).map(|i| f.piece_len(i)).sum();
        assert_eq!(total, f.size_bytes());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        FileSpec::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn piece_len_out_of_range_panics() {
        FileSpec::new(100, 50).piece_len(2);
    }
}
