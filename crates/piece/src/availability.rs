//! Swarm-wide piece-availability tracking.

use crate::{Bitfield, PieceId};

/// Counts, for every piece, how many peers currently hold it.
///
/// The rarest-first picker consults this map, and the experiment harness
/// uses [`AvailabilityMap::piece_count_histogram`] to estimate the paper's
/// `p_k` — the probability that a user holds exactly `k` pieces — which
/// parameterizes the piece-exchange probabilities of Proposition 2.
///
/// # Example
///
/// ```
/// use coop_piece::{AvailabilityMap, Bitfield};
///
/// let mut avail = AvailabilityMap::new(4);
/// let mut bf = Bitfield::new(4);
/// bf.set(2);
/// avail.add_peer(&bf);
/// assert_eq!(avail.count(2), 1);
/// assert_eq!(avail.count(0), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AvailabilityMap {
    counts: Vec<u32>,
}

impl AvailabilityMap {
    /// Creates a map over `num_pieces` pieces with all counts at zero.
    pub fn new(num_pieces: u32) -> Self {
        AvailabilityMap {
            counts: vec![0; num_pieces as usize],
        }
    }

    /// Number of pieces tracked.
    pub fn num_pieces(&self) -> u32 {
        self.counts.len() as u32
    }

    /// How many peers hold piece `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: PieceId) -> u32 {
        self.counts[i as usize]
    }

    /// Registers a joining peer's bitfield.
    pub fn add_peer(&mut self, bf: &Bitfield) {
        self.check_len(bf);
        for i in bf.iter_ones() {
            self.counts[i as usize] += 1;
        }
    }

    /// Unregisters a departing peer's bitfield.
    ///
    /// # Panics
    ///
    /// Panics if any removed count would go negative, which indicates the
    /// peer was never added or pieces were double-removed.
    pub fn remove_peer(&mut self, bf: &Bitfield) {
        self.check_len(bf);
        for i in bf.iter_ones() {
            let c = &mut self.counts[i as usize];
            assert!(*c > 0, "availability underflow at piece {i}");
            *c -= 1;
        }
    }

    /// Records that one more peer now holds piece `i` (after a transfer).
    pub fn on_piece_acquired(&mut self, i: PieceId) {
        self.counts[i as usize] += 1;
    }

    /// Records that one fewer peer holds piece `i` (a loss or a partial
    /// departure). The per-piece inverse of [`AvailabilityMap::on_piece_acquired`].
    ///
    /// # Panics
    ///
    /// Panics if the count would go negative.
    pub fn on_piece_lost(&mut self, i: PieceId) {
        let c = &mut self.counts[i as usize];
        assert!(*c > 0, "availability underflow at piece {i}");
        *c -= 1;
    }

    /// Read-only view of the per-piece counts, indexed by [`PieceId`].
    /// Word-skipping hot paths (see [`crate::AvailabilityIndex`]) read
    /// this slice directly instead of calling [`AvailabilityMap::count`]
    /// per piece.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Histogram of how many peers hold `k` pieces, for `k = 0..=max`,
    /// computed from a slice of peer bitfields. Dividing by the number of
    /// peers yields the paper's `p_k` distribution.
    pub fn piece_count_histogram(peers: &[&Bitfield]) -> Vec<u32> {
        let max = peers.iter().map(|b| b.count_ones()).max().unwrap_or(0);
        let mut hist = vec![0u32; max as usize + 1];
        for b in peers {
            hist[b.count_ones() as usize] += 1;
        }
        hist
    }

    /// Returns the minimum availability over a set of pieces the caller
    /// still needs, or `None` if `needed` yields nothing. Used to detect
    /// starvation (a needed piece held by no connected peer).
    ///
    /// This walks `needed` one piece at a time; hot paths with a needed
    /// set already in [`Bitfield`] form should use
    /// [`crate::AvailabilityIndex::min_over`], which skips empty words
    /// and short-circuits on the first zero-availability piece.
    pub fn min_over(&self, needed: impl IntoIterator<Item = PieceId>) -> Option<u32> {
        needed
            .into_iter()
            .map(|i| self.counts[i as usize])
            .min()
    }

    /// Normalized Shannon entropy of the availability distribution: 1 when
    /// every piece is equally replicated (the diversity rarest-first
    /// selection aims for), approaching 0 when replication concentrates on
    /// few pieces. Returns `None` when no piece has any copies.
    pub fn diversity(&self) -> Option<f64> {
        let total: u64 = self.counts.iter().map(|&c| u64::from(c)).sum();
        if total == 0 || self.counts.len() < 2 {
            return None;
        }
        let mut h = 0.0;
        for &c in &self.counts {
            if c > 0 {
                let p = c as f64 / total as f64;
                h -= p * p.ln();
            }
        }
        Some(h / (self.counts.len() as f64).ln())
    }

    fn check_len(&self, bf: &Bitfield) {
        assert_eq!(
            bf.len() as usize,
            self.counts.len(),
            "bitfield length {} does not match availability map {}",
            bf.len(),
            self.counts.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(len: u32, ones: &[u32]) -> Bitfield {
        let mut b = Bitfield::new(len);
        for &i in ones {
            b.set(i);
        }
        b
    }

    #[test]
    fn add_and_remove_are_inverse() {
        let mut m = AvailabilityMap::new(8);
        let a = bf(8, &[0, 1, 2]);
        let b = bf(8, &[2, 3]);
        m.add_peer(&a);
        m.add_peer(&b);
        assert_eq!(m.count(2), 2);
        m.remove_peer(&a);
        assert_eq!(m.count(2), 1);
        assert_eq!(m.count(0), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn removing_unknown_peer_panics() {
        let mut m = AvailabilityMap::new(4);
        m.remove_peer(&bf(4, &[1]));
    }

    #[test]
    fn acquisition_increments() {
        let mut m = AvailabilityMap::new(4);
        m.on_piece_acquired(3);
        m.on_piece_acquired(3);
        assert_eq!(m.count(3), 2);
    }

    #[test]
    fn histogram_counts_peers_by_piece_count() {
        let a = bf(8, &[0]);
        let b = bf(8, &[0, 1]);
        let c = bf(8, &[]);
        let hist = AvailabilityMap::piece_count_histogram(&[&a, &b, &c]);
        assert_eq!(hist, vec![1, 1, 1]);
    }

    #[test]
    fn diversity_is_one_when_uniform_and_lower_when_skewed() {
        let mut uniform = AvailabilityMap::new(4);
        for _ in 0..3 {
            uniform.add_peer(&bf(4, &[0, 1, 2, 3]));
        }
        assert!((uniform.diversity().unwrap() - 1.0).abs() < 1e-12);
        let mut skewed = AvailabilityMap::new(4);
        for _ in 0..9 {
            skewed.on_piece_acquired(0);
        }
        skewed.on_piece_acquired(1);
        assert!(skewed.diversity().unwrap() < 0.5);
        assert_eq!(AvailabilityMap::new(4).diversity(), None);
    }

    #[test]
    fn min_over_detects_rarest_needed() {
        let mut m = AvailabilityMap::new(4);
        m.add_peer(&bf(4, &[0, 1]));
        m.add_peer(&bf(4, &[0]));
        assert_eq!(m.min_over([0, 1]), Some(1));
        assert_eq!(m.min_over([2]), Some(0));
        assert_eq!(m.min_over(std::iter::empty()), None);
    }
}
