//! # coop-piece
//!
//! The file/piece substrate for the cooperative-computing incentive
//! simulator: data files are divided into discrete *pieces* (Section III of
//! the paper), peers track which pieces they hold in a [`Bitfield`], choose
//! what to download next with a [`PiecePicker`] (local-rarest-first by
//! default, as assumed by the paper's piece-availability model), and the
//! swarm-wide distribution of pieces is summarized by an
//! [`AvailabilityMap`].
//!
//! # Example
//!
//! ```
//! use coop_piece::{Bitfield, FileSpec};
//!
//! let file = FileSpec::new(128 * 1024 * 1024, 256 * 1024); // 128 MiB, 256 KiB pieces
//! assert_eq!(file.num_pieces(), 512);
//!
//! let mut have = Bitfield::new(file.num_pieces());
//! have.set(3);
//! assert!(have.get(3));
//! assert_eq!(have.count_ones(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod availability;
mod bitfield;
mod file;
mod index;
mod picker;

pub use availability::AvailabilityMap;
pub use index::AvailabilityIndex;
pub use bitfield::{Bitfield, Words};
pub use file::FileSpec;
pub use picker::{PiecePicker, PieceSelection, RandomFirstPicker, RarestFirstPicker, SequentialPicker};

/// Index of a piece within a file, starting at 0.
pub type PieceId = u32;
