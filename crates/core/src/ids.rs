//! Peer identifiers.

use std::fmt;

/// Identifies a peer within one simulation.
///
/// Identifiers are dense indices assigned in arrival order; whitewashing
/// free-riders obtain a *new* `PeerId` when they rejoin (the old identity is
/// retired), exactly as a new user ID in a real system.
///
/// # Example
///
/// ```
/// use coop_incentives::PeerId;
/// let p = PeerId::new(7);
/// assert_eq!(p.index(), 7);
/// assert_eq!(p.to_string(), "peer#7");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(u32);

impl PeerId {
    /// Creates a peer id from a dense index.
    pub const fn new(index: u32) -> Self {
        PeerId(index)
    }

    /// Returns the dense index backing this id.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

impl From<u32> for PeerId {
    fn from(i: u32) -> Self {
        PeerId(i)
    }
}

impl From<PeerId> for u32 {
    fn from(p: PeerId) -> u32 {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_u32() {
        let p = PeerId::from(9u32);
        assert_eq!(u32::from(p), 9);
        assert_eq!(p, PeerId::new(9));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PeerId::new(1) < PeerId::new(2));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(PeerId::new(0).to_string(), "peer#0");
    }
}
