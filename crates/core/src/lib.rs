//! # coop-incentives
//!
//! A Rust implementation of the incentive-mechanism design space analyzed in
//! *“A Performance Analysis of Incentive Mechanisms for Cooperative
//! Computing”* (Joe-Wong, Im, Shin, Ha — IEEE ICDCS 2016).
//!
//! The paper classifies mechanisms that decide *to whom each user uploads
//! data* into three basic classes — **reciprocity**, **altruism**, and
//! **reputation** — plus three hybrids — **BitTorrent**
//! (reciprocity/altruism), **FairTorrent** (reputation/altruism) and
//! **T-Chain** (reciprocity/reputation) — and compares their fairness,
//! efficiency, bootstrapping speed and susceptibility to free-riding.
//!
//! This crate provides:
//!
//! * [`MechanismKind`] / [`MechanismClass`] — the classification of Fig. 1;
//! * [`Mechanism`] — a common allocation trait, plus faithful
//!   implementations of all six algorithms in [`mechanisms`];
//! * [`ledger`] — the state each mechanism consults (contribution ledgers,
//!   deficit counters, a global reputation table);
//! * [`analysis`] — every closed form in Section IV of the paper:
//!   equilibrium download rates (Table I), efficiency/fairness statistics
//!   (Eqs. 2–3, Lemma 1), piece-exchange probabilities (Eqs. 4–8,
//!   Props. 2 & 3, Corollaries 1 & 2), bootstrapping probabilities and
//!   expected bootstrap times (Table II, Lemma 3, Prop. 4), and
//!   free-riding exploitability (Table III);
//! * [`metrics`] — the empirical statistics used by the paper's
//!   experiments (average fairness, completion-time efficiency,
//!   susceptibility, Jain index, CDFs and time series).
//!
//! The companion crate `coop-swarm` drives these mechanisms inside an
//! event-driven swarm simulator to reproduce the paper's Figs. 4–6.
//!
//! # Example
//!
//! ```
//! use coop_incentives::analysis::bootstrap::{bootstrap_probability, BootstrapParams};
//! use coop_incentives::MechanismKind;
//!
//! // Reproduce the "Example" column of the paper's Table II.
//! let params = BootstrapParams::paper_example();
//! let p = bootstrap_probability(MechanismKind::Altruism, &params);
//! assert!((p - 0.918).abs() < 0.001);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod class;
mod ids;
pub mod ledger;
mod mechanism;
pub mod mechanisms;
pub mod metrics;
mod view;

pub use class::{ExpectedPerformance, MechanismClass, MechanismKind, Rating};
pub use ids::PeerId;
pub use mechanism::{
    build_mechanism, ConsensusPolicy, Grant, GrantReason, Mechanism, MechanismParams,
    ReciprocationCondition, SettleCadence,
};
pub use view::{Obligation, SwarmView};
