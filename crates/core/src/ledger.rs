//! The bookkeeping state incentive mechanisms consult.
//!
//! * [`ContributionLedger`] — per-neighbor bytes sent/received, with a
//!   last-round window (BitTorrent's tit-for-tat ranks last-round
//!   contributors; pure reciprocity tracks outstanding credit).
//! * [`DeficitLedger`] — FairTorrent's signed per-neighbor deficit counters
//!   (bytes sent minus bytes received).
//! * [`ReputationTable`] — the global reputation store: total bytes each
//!   peer has uploaded to anyone, as assumed by the paper's reputation
//!   algorithm ("the probability of uploading to another user is
//!   proportional to the total number of pieces uploaded by that user").

use std::collections::HashMap;

use rand::Rng;
use rand::RngCore;

use crate::PeerId;

/// Per-neighbor contribution accounting for one peer.
///
/// # Example
///
/// ```
/// use coop_incentives::ledger::ContributionLedger;
/// use coop_incentives::PeerId;
///
/// let mut l = ContributionLedger::new();
/// let p = PeerId::new(1);
/// l.record_received(p, 100);
/// l.record_sent(p, 40);
/// assert_eq!(l.credit(p), 60); // they gave us 60 bytes more than we returned
/// l.end_round();
/// assert_eq!(l.received_last_round(p), 100);
/// assert_eq!(l.received_this_round(p), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ContributionLedger {
    sent: HashMap<PeerId, u64>,
    received: HashMap<PeerId, u64>,
    received_this_round: HashMap<PeerId, u64>,
    received_last_round: HashMap<PeerId, u64>,
    total_sent: u64,
    total_received: u64,
}

impl ContributionLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records bytes we uploaded to `to`.
    pub fn record_sent(&mut self, to: PeerId, bytes: u64) {
        *self.sent.entry(to).or_insert(0) += bytes;
        self.total_sent += bytes;
    }

    /// Records bytes we received from `from`.
    pub fn record_received(&mut self, from: PeerId, bytes: u64) {
        *self.received.entry(from).or_insert(0) += bytes;
        *self.received_this_round.entry(from).or_insert(0) += bytes;
        self.total_received += bytes;
    }

    /// Rolls the per-round window: this round's receipts become "last
    /// round" and the current window resets.
    pub fn end_round(&mut self) {
        self.received_last_round = std::mem::take(&mut self.received_this_round);
    }

    /// Total bytes ever sent to `to`.
    pub fn sent_to(&self, to: PeerId) -> u64 {
        self.sent.get(&to).copied().unwrap_or(0)
    }

    /// Total bytes ever received from `from`.
    pub fn received_from(&self, from: PeerId) -> u64 {
        self.received.get(&from).copied().unwrap_or(0)
    }

    /// Bytes received from `from` in the previous round (tit-for-tat
    /// ranking input).
    pub fn received_last_round(&self, from: PeerId) -> u64 {
        self.received_last_round.get(&from).copied().unwrap_or(0)
    }

    /// Bytes received from `from` so far in the current round.
    pub fn received_this_round(&self, from: PeerId) -> u64 {
        self.received_this_round.get(&from).copied().unwrap_or(0)
    }

    /// Outstanding reciprocity credit toward `peer`: bytes they sent us
    /// that we have not yet returned (clamped at zero).
    ///
    /// Pure reciprocity uploads only against positive credit.
    pub fn credit(&self, peer: PeerId) -> u64 {
        self.received_from(peer).saturating_sub(self.sent_to(peer))
    }

    /// Total bytes ever sent to anyone.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Total bytes ever received from anyone.
    pub fn total_received(&self) -> u64 {
        self.total_received
    }

    /// Peers that contributed to us in the previous round, sorted by
    /// contribution descending (ties broken by peer id for determinism).
    pub fn top_contributors_last_round(&self) -> Vec<(PeerId, u64)> {
        let mut v: Vec<(PeerId, u64)> = self
            .received_last_round
            .iter()
            .filter(|(_, &b)| b > 0)
            .map(|(&p, &b)| (p, b))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Forgets all state about `peer` (used when a neighbor departs or
    /// whitewashes its identity).
    pub fn forget(&mut self, peer: PeerId) {
        self.sent.remove(&peer);
        self.received.remove(&peer);
        self.received_this_round.remove(&peer);
        self.received_last_round.remove(&peer);
    }
}

/// FairTorrent's per-neighbor deficit counters.
///
/// `deficit(p) = bytes sent to p − bytes received from p`. FairTorrent
/// always uploads to the interested neighbor with the *lowest* deficit;
/// a negative deficit means we owe that neighbor data.
///
/// # Example
///
/// ```
/// use coop_incentives::ledger::DeficitLedger;
/// use coop_incentives::PeerId;
///
/// let mut d = DeficitLedger::new();
/// let p = PeerId::new(3);
/// d.on_received(p, 10);
/// assert_eq!(d.deficit(p), -10); // we owe them
/// d.on_sent(p, 25);
/// assert_eq!(d.deficit(p), 15);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DeficitLedger {
    deficits: HashMap<PeerId, i64>,
}

impl DeficitLedger {
    /// Creates an empty ledger (all deficits implicitly zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records bytes sent to `to`.
    pub fn on_sent(&mut self, to: PeerId, bytes: u64) {
        *self.deficits.entry(to).or_insert(0) += bytes as i64;
    }

    /// Records bytes received from `from`.
    pub fn on_received(&mut self, from: PeerId, bytes: u64) {
        *self.deficits.entry(from).or_insert(0) -= bytes as i64;
    }

    /// The signed deficit toward `peer` (zero if never interacted).
    pub fn deficit(&self, peer: PeerId) -> i64 {
        self.deficits.get(&peer).copied().unwrap_or(0)
    }

    /// Returns true if some known neighbor has a negative deficit, i.e. we
    /// owe data to somebody. This is the event whose probability the paper
    /// calls `ω` in the FairTorrent analysis.
    pub fn owes_anyone(&self) -> bool {
        self.deficits.values().any(|&d| d < 0)
    }

    /// The most negative deficit (largest debt), if any.
    pub fn min_deficit(&self) -> Option<(PeerId, i64)> {
        self.deficits
            .iter()
            .min_by_key(|(p, &d)| (d, p.index()))
            .map(|(&p, &d)| (p, d))
    }

    /// Forgets all state about `peer`.
    pub fn forget(&mut self, peer: PeerId) {
        self.deficits.remove(&peer);
    }
}

/// The global reputation table: total bytes each peer has uploaded.
///
/// The paper's reputation algorithm assumes users know "the amount of data
/// that each user uploads to all other users" and pick upload targets with
/// probability proportional to it. Collusive free-riders attack this table
/// by reporting fictitious uploads (false praise).
///
/// # Example
///
/// ```
/// use coop_incentives::ledger::ReputationTable;
/// use coop_incentives::PeerId;
///
/// let mut r = ReputationTable::new();
/// r.credit_upload(PeerId::new(0), 500);
/// assert_eq!(r.reputation(PeerId::new(0)), 500.0);
/// assert_eq!(r.reputation(PeerId::new(1)), 0.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ReputationTable {
    uploaded: HashMap<PeerId, u64>,
    total: u64,
}

impl ReputationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credits `peer` with `bytes` of (claimed) upload contribution.
    ///
    /// Legitimate credits come from real transfers; collusive free-riders
    /// inject fictitious credits through the same entry point.
    pub fn credit_upload(&mut self, peer: PeerId, bytes: u64) {
        *self.uploaded.entry(peer).or_insert(0) += bytes;
        self.total += bytes;
    }

    /// The reputation score of `peer` (total bytes uploaded; zero for
    /// newcomers).
    pub fn reputation(&self, peer: PeerId) -> f64 {
        self.uploaded.get(&peer).copied().unwrap_or(0) as f64
    }

    /// Sum of all reputations.
    pub fn total(&self) -> f64 {
        self.total as f64
    }

    /// Samples one peer from `candidates` with probability proportional to
    /// reputation. Returns `None` if the candidate list is empty or every
    /// candidate has zero reputation.
    pub fn sample_proportional(
        &self,
        candidates: &[PeerId],
        rng: &mut dyn RngCore,
    ) -> Option<PeerId> {
        let weights: Vec<f64> = candidates.iter().map(|&p| self.reputation(p)).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return Some(candidates[i]);
            }
            x -= w;
        }
        // Floating-point edge: fall back to the last positive-weight candidate.
        candidates
            .iter()
            .zip(&weights)
            .rev()
            .find(|(_, &w)| w > 0.0)
            .map(|(&p, _)| p)
    }

    /// Removes `peer` from the table (identity retirement).
    pub fn forget(&mut self, peer: PeerId) {
        if let Some(b) = self.uploaded.remove(&peer) {
            self.total -= b;
        }
    }
}

/// A reporter-attributed reputation store: "peer S uploaded N bytes to me",
/// reported by the receiver.
///
/// The paper's basic reputation algorithm sums all reports, which makes it
/// trivially gameable by false praise (colluders reporting fictitious
/// receipts for each other — Table III rates this collusion's success
/// probability as 1). Footnote 6 notes that "more sophisticated reputation
/// schemes that consider users' trustworthiness can circumvent such false
/// praise to some extent": [`ReportedReputation::trusted_scores`]
/// implements EigenTrust — row-normalized report weights, trust propagated
/// through the report graph, damped toward a *pre-trusted set* (e.g. the
/// operator's own seed nodes). Trust then only originates from the
/// pre-trusted peers, so a collusion ring with no inbound trust edge
/// starves no matter how large its fictitious claims are.
///
/// # Example
///
/// ```
/// use coop_incentives::ledger::ReportedReputation;
/// use coop_incentives::PeerId;
///
/// let mut r = ReportedReputation::new();
/// // A pre-trusted peer 9 reports receiving from peer 0, and 0 from 1.
/// r.record(PeerId::new(9), PeerId::new(0), 1000);
/// r.record(PeerId::new(0), PeerId::new(1), 500);
/// // Free-riders 2 and 3 praise each other enormously.
/// r.record(PeerId::new(2), PeerId::new(3), 1_000_000);
/// r.record(PeerId::new(3), PeerId::new(2), 1_000_000);
/// let trusted = r.trusted_scores(&[PeerId::new(9)]);
/// assert!(trusted[&PeerId::new(1)] > trusted.get(&PeerId::new(3)).copied().unwrap_or(0.0));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ReportedReputation {
    /// subject → (reporter → claim with decay bookkeeping).
    reports: HashMap<PeerId, HashMap<PeerId, Claim>>,
    /// subject → total claimed bytes (the basic reputation, undecayed).
    basic: HashMap<PeerId, u64>,
    /// Current round, advanced by the caller; claim ages are measured
    /// against it. Stays 0 (no decay) unless [`Self::advance_to`] is used.
    round: u64,
}

/// One reporter→subject claim edge: exponentially decayed weight plus the
/// raw byte total (kept for [`ReportedReputation::forget`]'s basic-score
/// bookkeeping).
#[derive(Clone, Copy, Debug)]
struct Claim {
    /// Claimed bytes, decayed by [`REPORT_DECAY`] per round of age as of
    /// `last_round` (fold-in accumulation).
    decayed: f64,
    /// Undecayed claimed bytes.
    raw: u64,
    /// Round of the most recent fold-in.
    last_round: u64,
}

/// Per-round multiplicative decay of a report's trust weight (half-life
/// ≈ 69 rounds). Applied to each claim *before* row normalization in
/// [`ReportedReputation::trusted_scores`], so a reporter's trust flows
/// toward its recently-vouched subjects and long-idle peers cannot hold
/// stale top scores indefinitely.
const REPORT_DECAY: f64 = 0.99;

impl ReportedReputation {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the decay clock to `round` (monotonic; earlier rounds are
    /// ignored). The swarm calls this once per round so claim ages in
    /// [`Self::trusted_scores`] track simulation time.
    pub fn advance_to(&mut self, round: u64) {
        self.round = self.round.max(round);
    }

    /// Records `reporter`'s claim that `subject` uploaded `bytes` to it.
    pub fn record(&mut self, reporter: PeerId, subject: PeerId, bytes: u64) {
        let now = self.round;
        let claim = self
            .reports
            .entry(subject)
            .or_default()
            .entry(reporter)
            .or_insert(Claim {
                decayed: 0.0,
                raw: 0,
                last_round: now,
            });
        let age = (now - claim.last_round) as i32;
        claim.decayed = claim.decayed * REPORT_DECAY.powi(age) + bytes as f64;
        claim.raw += bytes;
        claim.last_round = now;
        *self.basic.entry(subject).or_insert(0) += bytes;
    }

    /// The basic (unweighted) reputation: total claimed uploads.
    pub fn basic(&self, subject: PeerId) -> f64 {
        self.basic.get(&subject).copied().unwrap_or(0) as f64
    }

    /// EigenTrust scores: each reporter's claims are row-normalized (so a
    /// colossal fictitious claim carries no more weight than an honest
    /// one), then trust is propagated through the report graph, damped
    /// toward the `pretrusted` distribution. Trust only *originates* at
    /// the pre-trusted peers: a collusion ring that no trusted peer has
    /// ever vouched for converges to zero, while peers on report chains
    /// rooted at pre-trusted reporters accumulate real standing.
    ///
    /// If `pretrusted` is empty, the pre-trust falls back to uniform over
    /// all participants — weaker, because closed rings then retain their
    /// own pre-trust share.
    ///
    /// Claims age: each edge's weight is decayed by [`REPORT_DECAY`] per
    /// round since its last report *before* the row is normalized, so a
    /// reporter's trust share shifts toward whoever it vouched for
    /// recently and a long-idle subject's stale claims fade instead of
    /// being re-inflated to a full row share.
    pub fn trusted_scores(&self, pretrusted: &[PeerId]) -> HashMap<PeerId, f64> {
        const DAMPING: f64 = 0.15;
        const ITERATIONS: usize = 15;
        let now = self.round;
        let effective =
            |c: &Claim| c.decayed * REPORT_DECAY.powi((now - c.last_round) as i32);
        // Collect every peer seen as reporter or subject.
        let mut members: Vec<PeerId> = self.reports.keys().copied().collect();
        for reporters in self.reports.values() {
            members.extend(reporters.keys().copied());
        }
        members.extend(pretrusted.iter().copied());
        members.sort();
        members.dedup();
        if members.is_empty() {
            return HashMap::new();
        }
        let n = members.len() as f64;
        let pre: HashMap<PeerId, f64> = if pretrusted.is_empty() {
            members.iter().map(|&m| (m, 1.0 / n)).collect()
        } else {
            let share = 1.0 / pretrusted.len() as f64;
            pretrusted.iter().map(|&m| (m, share)).collect()
        };
        let pre_of = |m: PeerId| pre.get(&m).copied().unwrap_or(0.0);
        // Row-normalized outgoing claims per reporter, decayed first.
        let mut outgoing_total: HashMap<PeerId, f64> = HashMap::new();
        for reporters in self.reports.values() {
            for (&r, claim) in reporters {
                *outgoing_total.entry(r).or_insert(0.0) += effective(claim);
            }
        }
        let mut trust: HashMap<PeerId, f64> =
            members.iter().map(|&m| (m, pre_of(m))).collect();
        for _ in 0..ITERATIONS {
            let mut next: HashMap<PeerId, f64> = members
                .iter()
                .map(|&m| (m, DAMPING * pre_of(m)))
                .collect();
            for (&subject, reporters) in &self.reports {
                let mut inflow = 0.0;
                for (&reporter, claim) in reporters {
                    let total = outgoing_total.get(&reporter).copied().unwrap_or(0.0);
                    if total > 0.0 {
                        let weight = effective(claim) / total;
                        inflow += weight * trust.get(&reporter).copied().unwrap_or(0.0);
                    }
                }
                *next.entry(subject).or_insert(0.0) += (1.0 - DAMPING) * inflow;
            }
            trust = next;
        }
        trust
    }

    /// Forgets everything reported about and by `peer` (identity
    /// retirement).
    pub fn forget(&mut self, peer: PeerId) {
        if let Some(reporters) = self.reports.remove(&peer) {
            let removed: u64 = reporters.values().map(|c| c.raw).sum();
            if let Some(b) = self.basic.get_mut(&peer) {
                *b = b.saturating_sub(removed);
            }
            self.basic.remove(&peer);
        }
        for (subject, reporters) in self.reports.iter_mut() {
            if let Some(claim) = reporters.remove(&peer) {
                if let Some(b) = self.basic.get_mut(subject) {
                    *b = b.saturating_sub(claim.raw);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    #[test]
    fn contribution_totals_accumulate() {
        let mut l = ContributionLedger::new();
        l.record_sent(p(1), 10);
        l.record_sent(p(2), 20);
        l.record_received(p(1), 5);
        assert_eq!(l.total_sent(), 30);
        assert_eq!(l.total_received(), 5);
        assert_eq!(l.sent_to(p(1)), 10);
        assert_eq!(l.received_from(p(1)), 5);
        assert_eq!(l.received_from(p(9)), 0);
    }

    #[test]
    fn credit_clamps_at_zero() {
        let mut l = ContributionLedger::new();
        l.record_sent(p(1), 100);
        assert_eq!(l.credit(p(1)), 0);
        l.record_received(p(1), 160);
        assert_eq!(l.credit(p(1)), 60);
    }

    #[test]
    fn round_window_rolls() {
        let mut l = ContributionLedger::new();
        l.record_received(p(1), 7);
        assert_eq!(l.received_this_round(p(1)), 7);
        assert_eq!(l.received_last_round(p(1)), 0);
        l.end_round();
        assert_eq!(l.received_this_round(p(1)), 0);
        assert_eq!(l.received_last_round(p(1)), 7);
        l.end_round();
        assert_eq!(l.received_last_round(p(1)), 0);
    }

    #[test]
    fn top_contributors_sorted_desc_with_deterministic_ties() {
        let mut l = ContributionLedger::new();
        l.record_received(p(3), 10);
        l.record_received(p(1), 30);
        l.record_received(p(2), 10);
        l.end_round();
        let top = l.top_contributors_last_round();
        assert_eq!(top, vec![(p(1), 30), (p(2), 10), (p(3), 10)]);
    }

    #[test]
    fn forget_erases_peer_state() {
        let mut l = ContributionLedger::new();
        l.record_received(p(1), 10);
        l.end_round();
        l.forget(p(1));
        assert_eq!(l.received_from(p(1)), 0);
        assert_eq!(l.received_last_round(p(1)), 0);
    }

    #[test]
    fn deficit_sign_convention() {
        let mut d = DeficitLedger::new();
        assert_eq!(d.deficit(p(1)), 0);
        assert!(!d.owes_anyone());
        d.on_received(p(1), 50);
        assert_eq!(d.deficit(p(1)), -50);
        assert!(d.owes_anyone());
        d.on_sent(p(1), 50);
        assert_eq!(d.deficit(p(1)), 0);
        assert!(!d.owes_anyone());
    }

    #[test]
    fn min_deficit_finds_largest_debt() {
        let mut d = DeficitLedger::new();
        d.on_received(p(1), 10);
        d.on_received(p(2), 30);
        d.on_sent(p(3), 5);
        assert_eq!(d.min_deficit(), Some((p(2), -30)));
    }

    #[test]
    fn reputation_sampling_is_proportional() {
        let mut r = ReputationTable::new();
        r.credit_upload(p(0), 900);
        r.credit_upload(p(1), 100);
        let candidates = [p(0), p(1)];
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hits = [0u32; 2];
        for _ in 0..10_000 {
            match r.sample_proportional(&candidates, &mut rng) {
                Some(x) if x == p(0) => hits[0] += 1,
                Some(x) if x == p(1) => hits[1] += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        let frac = hits[0] as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn reputation_sampling_none_when_all_zero() {
        let r = ReputationTable::new();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(r.sample_proportional(&[p(0), p(1)], &mut rng), None);
        assert_eq!(r.sample_proportional(&[], &mut rng), None);
    }

    #[test]
    fn reported_reputation_basic_sums_claims() {
        let mut r = ReportedReputation::new();
        r.record(p(0), p(1), 100);
        r.record(p(2), p(1), 50);
        r.record(p(0), p(3), 10);
        assert_eq!(r.basic(p(1)), 150.0);
        assert_eq!(r.basic(p(3)), 10.0);
        assert_eq!(r.basic(p(9)), 0.0);
    }

    #[test]
    fn trusted_scores_starve_unrooted_collusion_rings() {
        let mut r = ReportedReputation::new();
        // A pre-trusted reporter vouches for peer 0, and 0 for peer 1.
        r.record(p(9), p(0), 1000);
        r.record(p(0), p(1), 100);
        // Free-riders 2 and 3 praise each other enormously.
        r.record(p(2), p(3), 1_000_000);
        r.record(p(3), p(2), 1_000_000);
        let trusted = r.trusted_scores(&[p(9)]);
        let honest = trusted[&p(1)];
        let colluder = trusted.get(&p(3)).copied().unwrap_or(0.0);
        assert!(
            honest > 10.0 * colluder,
            "honest {honest} must dwarf unrooted praise {colluder}"
        );
        // But the basic scores are fooled completely.
        assert!(r.basic(p(3)) > r.basic(p(1)));
    }

    #[test]
    fn colluders_vouched_by_trusted_peers_still_game_scores() {
        // Footnote 6's caveat: "if legitimate users collude with many
        // free-riders, then users can still game the system" — a colluder
        // that a trusted peer vouches for passes its standing onward.
        let mut r = ReportedReputation::new();
        r.record(p(9), p(2), 500); // colluder 2 was vouched for
        r.record(p(2), p(3), 1_000_000);
        let trusted = r.trusted_scores(&[p(9)]);
        assert!(trusted[&p(3)] > 0.0);
    }

    #[test]
    fn uniform_fallback_when_no_pretrusted() {
        let mut r = ReportedReputation::new();
        r.record(p(0), p(1), 100);
        let trusted = r.trusted_scores(&[]);
        assert!(trusted[&p(1)] > 0.0);
    }

    #[test]
    fn reported_forget_removes_subject_and_reporter() {
        let mut r = ReportedReputation::new();
        r.record(p(0), p(1), 100);
        r.record(p(1), p(2), 40);
        r.forget(p(1));
        assert_eq!(r.basic(p(1)), 0.0);
        assert_eq!(r.basic(p(2)), 0.0, "claims by the retired id vanish");
        let trusted = r.trusted_scores(&[p(0)]);
        assert!(!trusted.contains_key(&p(1)));
    }

    #[test]
    fn trusted_scores_empty_when_no_reports() {
        assert!(ReportedReputation::new().trusted_scores(&[]).is_empty());
    }

    #[test]
    fn decay_before_normalization_fades_idle_top_scores() {
        // Regression: without per-claim decay ahead of row normalization,
        // a huge early claim held the top trusted score forever — a
        // long-idle peer outranked every active one indefinitely.
        let mut r = ReportedReputation::new();
        // Round 0: peer 1 uploads enormously to pre-trusted reporter 9.
        r.record(p(9), p(1), 1_000_000);
        // Peer 1 then idles for 600 rounds; peer 2 uploads modestly.
        r.advance_to(600);
        r.record(p(9), p(2), 10_000);
        let t = r.trusted_scores(&[p(9)]);
        assert!(
            t[&p(2)] > t[&p(1)],
            "recent modest claim {} must outrank stale huge claim {}",
            t[&p(2)],
            t[&p(1)]
        );
        // Same claims with no idle gap: magnitude wins as before.
        let mut fresh = ReportedReputation::new();
        fresh.record(p(9), p(1), 1_000_000);
        fresh.record(p(9), p(2), 10_000);
        let t = fresh.trusted_scores(&[p(9)]);
        assert!(t[&p(1)] > t[&p(2)]);
        // The basic (undecayed) score is untouched by the clock.
        assert_eq!(r.basic(p(1)), 1_000_000.0);
    }

    #[test]
    fn record_folds_decay_into_repeated_claims() {
        let mut r = ReportedReputation::new();
        r.record(p(0), p(1), 1000);
        r.advance_to(100);
        // A fresh claim after 100 idle rounds: the old 1000 has decayed to
        // ~366, so the fresh 1000 dominates the edge weight but the raw
        // basic total still sums both.
        r.record(p(0), p(1), 1000);
        assert_eq!(r.basic(p(1)), 2000.0);
        let t = r.trusted_scores(&[p(0)]);
        assert!(t[&p(1)] > 0.0);
    }

    #[test]
    fn reputation_forget_reduces_total() {
        let mut r = ReputationTable::new();
        r.credit_upload(p(0), 100);
        r.credit_upload(p(1), 50);
        r.forget(p(0));
        assert_eq!(r.total(), 50.0);
        assert_eq!(r.reputation(p(0)), 0.0);
    }
}
