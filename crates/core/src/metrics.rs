//! Empirical performance statistics (Sections IV-A and V of the paper).
//!
//! * [`fairness_stat`] — the paper's `F` statistic, Eq. (3):
//!   `F = (1/N) Σ |log(d_i/u_i)|` (0 is perfectly fair).
//! * [`avg_fairness_ratio`] — the convenience metric the experiments use
//!   instead: `(Σ u_i/d_i)/N` (1 is perfectly fair).
//! * [`efficiency_from_rates`] — Eq. (2): `E = Σ 1/(N·d_i)`, the average
//!   download time for a unit file at equilibrium rates.
//! * [`susceptibility`] — the fraction of upload bandwidth received by
//!   free-riders (Section V's definition).
//! * [`jain_index`] — the standard Jain fairness index, reported alongside
//!   the paper's metrics in our experiment output.
//! * [`Cdf`] and [`TimeSeries`] — the series behind the paper's figures.

use std::fmt;

/// The paper's fairness statistic `F` (Eq. 3) over per-user
/// (upload, download) rate pairs. `F = 0` iff `u_i = d_i` for all users.
///
/// Users with a zero upload or download rate are skipped (their log-ratio
/// is undefined — the paper notes reciprocity is "so inefficient that
/// fairness cannot be defined"); the number of skipped users is returned
/// alongside the statistic.
///
/// # Example
///
/// ```
/// use coop_incentives::metrics::fairness_stat;
/// let (f, skipped) = fairness_stat(&[(10.0, 10.0), (5.0, 5.0)]);
/// assert_eq!(f, 0.0);
/// assert_eq!(skipped, 0);
/// ```
pub fn fairness_stat(rates: &[(f64, f64)]) -> (f64, usize) {
    let mut sum = 0.0;
    let mut counted = 0usize;
    let mut skipped = 0usize;
    for &(u, d) in rates {
        if u > 0.0 && d > 0.0 {
            sum += (d / u).ln().abs();
            counted += 1;
        } else {
            skipped += 1;
        }
    }
    if counted == 0 {
        (f64::INFINITY, skipped)
    } else {
        (sum / counted as f64, skipped)
    }
}

/// The experiments' average fairness `(Σ u_i/d_i)/N` over users with a
/// positive download rate (Section V: "we use the average fairness,
/// `(Σ u_i/d_i)/N`, to measure the system fairness in our experiments").
/// Returns `None` if no user has downloaded anything.
pub fn avg_fairness_ratio(rates: &[(f64, f64)]) -> Option<f64> {
    let ratios: Vec<f64> = rates
        .iter()
        .filter(|&&(_, d)| d > 0.0)
        .map(|&(u, d)| u / d)
        .collect();
    if ratios.is_empty() {
        None
    } else {
        Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
    }
}

/// The paper's efficiency `E = Σ 1/(N·d_i)` (Eq. 2): the average download
/// time of a unit-size file at the given per-user download rates. Lower is
/// better. Returns infinity if any rate is zero (that user never finishes).
///
/// # Panics
///
/// Panics if `rates` is empty.
pub fn efficiency_from_rates(rates: &[f64]) -> f64 {
    assert!(!rates.is_empty(), "efficiency needs at least one user");
    let n = rates.len() as f64;
    rates
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / (n * d) } else { f64::INFINITY })
        .sum()
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` — 1 when all values are equal,
/// `1/n` when one user takes everything. Returns `None` on empty or
/// all-zero input.
pub fn jain_index(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return None;
    }
    Some(sum * sum / (values.len() as f64 * sq))
}

/// Free-riding susceptibility (Section V): the fraction of all uploaded
/// bytes that ended up (usable) at free-riders.
///
/// Returns 0 when nothing has been uploaded yet.
pub fn susceptibility(freerider_received: u64, total_uploaded: u64) -> f64 {
    if total_uploaded == 0 {
        0.0
    } else {
        freerider_received as f64 / total_uploaded as f64
    }
}

/// An empirical cumulative distribution function over `f64` samples.
///
/// # Example
///
/// ```
/// use coop_incentives::metrics::Cdf;
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.5), 0.5);
/// assert_eq!(cdf.quantile(0.5), Some(2.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from unsorted samples; NaNs are dropped.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaNs removed"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns true if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `≤ x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`), or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 * q).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Mean of the samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Evaluates the CDF at `points` evenly spaced grid positions between
    /// the min and max sample, returning `(x, fraction ≤ x)` pairs — the
    /// series a figure would plot.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("nonempty");
        (0..points)
            .map(|i| {
                let x = if points == 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (points - 1) as f64
                };
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

/// A sampled time series `(time seconds, value)` — the backing data of the
/// paper's fairness-vs-time and bootstrap-vs-time plots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample; times must be nondecreasing.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous sample.
    pub fn push(&mut self, t: f64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be nondecreasing in time");
        }
        self.points.push((t, value));
    }

    /// The raw samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The final value, or `None` when empty.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// The value at the latest sample with `time ≤ t` (step interpolation).
    pub fn value_at(&self, t: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|&&(pt, _)| pt <= t)
            .last()
            .map(|&(_, v)| v)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns true when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimeSeries[{} points]", self.points.len())
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = (f64, f64)>>(iter: T) -> Self {
        let mut ts = TimeSeries::new();
        for (t, v) in iter {
            ts.push(t, v);
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_zero_iff_balanced() {
        let (f, _) = fairness_stat(&[(3.0, 3.0), (7.0, 7.0)]);
        assert_eq!(f, 0.0);
        let (f, _) = fairness_stat(&[(1.0, 2.0)]);
        assert!((f - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn fairness_skips_zero_rates() {
        let (f, skipped) = fairness_stat(&[(0.0, 5.0), (2.0, 2.0)]);
        assert_eq!(f, 0.0);
        assert_eq!(skipped, 1);
        let (f, skipped) = fairness_stat(&[(0.0, 0.0)]);
        assert!(f.is_infinite());
        assert_eq!(skipped, 1);
    }

    #[test]
    fn fairness_is_symmetric_in_ratio_direction() {
        let (f1, _) = fairness_stat(&[(1.0, 4.0)]);
        let (f2, _) = fairness_stat(&[(4.0, 1.0)]);
        assert!((f1 - f2).abs() < 1e-12);
    }

    #[test]
    fn avg_ratio_one_when_balanced() {
        let r = avg_fairness_ratio(&[(2.0, 2.0), (9.0, 9.0)]).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        assert_eq!(avg_fairness_ratio(&[(1.0, 0.0)]), None);
    }

    #[test]
    fn efficiency_matches_hand_computation() {
        // Two users with rates 1 and 2: E = 1/(2·1) + 1/(2·2) = 0.75.
        let e = efficiency_from_rates(&[1.0, 2.0]);
        assert!((e - 0.75).abs() < 1e-12);
        assert!(efficiency_from_rates(&[1.0, 0.0]).is_infinite());
    }

    #[test]
    fn equal_rates_minimize_efficiency_for_fixed_total() {
        // Lemma 1: with Σd fixed, equal rates minimize Σ 1/(N d_i).
        let equal = efficiency_from_rates(&[2.0, 2.0]);
        let skewed = efficiency_from_rates(&[1.0, 3.0]);
        assert!(equal < skewed);
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_index(&[5.0, 5.0, 5.0]).unwrap() - 1.0).abs() < 1e-12);
        let one_taker = jain_index(&[10.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((one_taker - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), None);
        assert_eq!(jain_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn susceptibility_fraction() {
        assert_eq!(susceptibility(0, 0), 0.0);
        assert_eq!(susceptibility(25, 100), 0.25);
    }

    #[test]
    fn cdf_fraction_and_quantiles() {
        let cdf = Cdf::from_samples(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(4.0));
        assert_eq!(cdf.mean(), Some(2.5));
    }

    #[test]
    fn cdf_handles_nan_and_empty() {
        let cdf = Cdf::from_samples(vec![f64::NAN]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.mean(), None);
        assert!(cdf.series(5).is_empty());
    }

    #[test]
    fn cdf_empty_input() {
        let cdf = Cdf::from_samples(Vec::new());
        assert!(cdf.is_empty());
        assert_eq!(cdf.len(), 0);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.mean(), None);
        assert!(cdf.series(10).is_empty());
    }

    #[test]
    fn cdf_single_sample() {
        let cdf = Cdf::from_samples(vec![7.0]);
        assert_eq!(cdf.len(), 1);
        assert!(!cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(6.9), 0.0);
        assert_eq!(cdf.fraction_at_or_below(7.0), 1.0);
        // Every quantile of a single sample is that sample.
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(cdf.quantile(q), Some(7.0), "q = {q}");
        }
        assert_eq!(cdf.mean(), Some(7.0));
        // A degenerate (zero-width) support still yields a plottable series.
        assert_eq!(cdf.series(1), vec![(7.0, 1.0)]);
        let series = cdf.series(3);
        assert_eq!(series.len(), 3);
        assert!(series.iter().all(|&(x, f)| x == 7.0 && f == 1.0));
    }

    #[test]
    fn cdf_quantile_edges() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(cdf.quantile(-0.5), Some(1.0));
        assert_eq!(cdf.quantile(1.5), Some(4.0));
        // Quantiles step at the k/n boundaries (ceil convention): q just
        // above k/4 selects sample k+1.
        assert_eq!(cdf.quantile(0.25), Some(1.0));
        assert_eq!(cdf.quantile(0.25 + 1e-9), Some(2.0));
        assert_eq!(cdf.quantile(0.75), Some(3.0));
        assert_eq!(cdf.quantile(0.75 + 1e-9), Some(4.0));
    }

    #[test]
    fn time_series_empty_and_single() {
        let empty = TimeSeries::new();
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.last_value(), None);
        assert_eq!(empty.value_at(0.0), None);
        assert!(empty.points().is_empty());
        assert_eq!(empty.to_string(), "TimeSeries[0 points]");

        let mut single = TimeSeries::new();
        single.push(2.0, 9.0);
        assert_eq!(single.len(), 1);
        assert_eq!(single.value_at(1.9), None, "before the first sample");
        assert_eq!(single.value_at(2.0), Some(9.0));
        assert_eq!(single.value_at(f64::INFINITY), Some(9.0));
        assert_eq!(single.last_value(), Some(9.0));
        // Repeated timestamps are allowed (nondecreasing, not increasing).
        single.push(2.0, 10.0);
        assert_eq!(single.value_at(2.0), Some(10.0));
    }

    #[test]
    fn cdf_series_is_monotone() {
        let cdf = Cdf::from_samples((1..=100).map(|i| i as f64).collect());
        let series = cdf.series(10);
        assert_eq!(series.len(), 10);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn time_series_step_lookup() {
        let ts: TimeSeries = [(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)]
            .into_iter()
            .collect();
        assert_eq!(ts.value_at(-1.0), None);
        assert_eq!(ts.value_at(0.0), Some(1.0));
        assert_eq!(ts.value_at(15.0), Some(2.0));
        assert_eq!(ts.value_at(100.0), Some(3.0));
        assert_eq!(ts.last_value(), Some(3.0));
        assert_eq!(ts.len(), 3);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn time_series_rejects_time_travel() {
        let mut ts = TimeSeries::new();
        ts.push(5.0, 0.0);
        ts.push(4.0, 0.0);
    }
}
