//! The paper's analytical performance model (Section IV).
//!
//! Every closed form in the paper is implemented here:
//!
//! | Paper artifact | Module |
//! |----------------|--------|
//! | Capacity assumptions (`U_1 ≥ … ≥ U_N`, `U_i ≤ Σ_{j≠i} U_j`) | [`capacity`] |
//! | Lemma 1 (optimal fairness/efficiency), Lemma 2, Table I, Corollary 1 | [`equilibrium`] |
//! | Eqs. (4)–(8): `q(i,j)`, `π_DR`, `π_TC`, `π_BT`, Prop. 2, Cor. 2, `π_IR` | [`exchange`] |
//! | Table II, Lemma 3, Prop. 4 (bootstrapping) | [`bootstrap`] |
//! | Prop. 3 (reputation fairness/efficiency) | [`reputation`] |
//! | Table III (exploitable resources, collusion) | [`freeride`] |
//! | Qiu–Srikant fluid dynamics (footnote 3's \[27\], with `η` = Prop. 2's exchange probability) | [`fluid`] |
//!
//! The combinatorial quantities are computed in log-space
//! ([`combin`]) so they remain accurate for the thousands of pieces and
//! users in the paper's experiments.

pub mod bootstrap;
pub mod capacity;
pub mod combin;
pub mod equilibrium;
pub mod exchange;
pub mod fluid;
pub mod freeride;
pub mod reputation;
