//! Free-riding susceptibility: Table III (Section IV-C).
//!
//! Two quantities bound what free-riders can obtain: the pool of
//! *exploitable resources* (upload bandwidth given without any reciprocity
//! requirement) and the probability that a *collusive* attack can trick a
//! legitimate user into releasing data.

use crate::MechanismKind;

/// Parameters of the Table III resource model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FreeRideParams {
    /// Total system upload capacity `Σ U_i`.
    pub total_capacity: f64,
    /// BitTorrent's optimistic-unchoke fraction `α_BT`.
    pub alpha_bt: f64,
    /// The reputation algorithm's altruistic fraction `α_R`.
    pub alpha_r: f64,
    /// FairTorrent's probability `ω` that a user owes data to at least one
    /// neighbor (only `1 − ω` of capacity can leak to strangers).
    pub omega: f64,
    /// The epoch-settled extension's open-epoch fraction `λ`: the share of
    /// time during which contributions have not yet settled into balances,
    /// so uploads fall back to the altruistic channel.
    pub epoch_open_fraction: f64,
}

impl Default for FreeRideParams {
    fn default() -> Self {
        FreeRideParams {
            total_capacity: 1.0,
            alpha_bt: 0.2,
            alpha_r: 0.1,
            omega: 0.75,
            epoch_open_fraction: 0.5,
        }
    }
}

/// Table III, column 1: upload bandwidth directly exploitable by
/// non-collusive free-riders.
///
/// * Reciprocity and T-Chain expose **zero** resources — every byte demands
///   reciprocation (T-Chain's encrypted pieces are useless without the
///   key).
/// * BitTorrent exposes its optimistic share `α_BT · ΣU`.
/// * FairTorrent exposes `(1 − ω) · ΣU` (zero-deficit strangers are served
///   only when no debts are outstanding).
/// * The reputation algorithm exposes its bootstrap share `α_R · ΣU`.
/// * Altruism exposes **everything**.
pub fn exploitable_resources(kind: MechanismKind, p: &FreeRideParams) -> f64 {
    match kind {
        MechanismKind::Reciprocity | MechanismKind::TChain => 0.0,
        MechanismKind::BitTorrent => p.alpha_bt * p.total_capacity,
        MechanismKind::FairTorrent => (1.0 - p.omega) * p.total_capacity,
        // ConsensusReputation exposes the same α_R bootstrap share while a
        // free-rider is unbanned; bans (a dynamic effect the simulator
        // measures) then cut even that off.
        MechanismKind::Reputation | MechanismKind::ConsensusReputation => {
            p.alpha_r * p.total_capacity
        }
        MechanismKind::Altruism => p.total_capacity,
        // Beyond the paper: while an epoch is open, earned balances have
        // not settled yet, so the whole open-epoch fraction of capacity
        // leaks through the altruistic fallback. λ → 0 recovers the
        // FairTorrent-style bound, λ → 1 the altruism row.
        MechanismKind::EpochSettlement => p.epoch_open_fraction * p.total_capacity,
    }
}

/// Table III, column 2: the probability that a collusive attack succeeds
/// in one interaction.
///
/// * `None` — collusion offers no advantage (reciprocity, BitTorrent,
///   FairTorrent: no third party is ever consulted; altruism needs no
///   collusion because everything is already free).
/// * T-Chain: collusion fires only when (a) indirect reciprocity occurs
///   (probability `π_IR`) *and* (b) both the receiver and the designated
///   confirmation target are among the `m` colluders:
///   `π_IR · m(m−1) / (N(N−1))` — "generally quite low".
/// * Reputation: `Some(1.0)` — colluders can always inflate each other's
///   scores with false praise.
pub fn collusion_probability(
    kind: MechanismKind,
    pi_ir: f64,
    colluders: u64,
    n: u64,
) -> Option<f64> {
    match kind {
        MechanismKind::TChain => {
            if n < 2 {
                return Some(0.0);
            }
            let m = colluders as f64;
            let n = n as f64;
            Some((pi_ir * m * (m - 1.0) / (n * (n - 1.0))).clamp(0.0, 1.0))
        }
        // A consensus ring's matched fabricated reports also credit on
        // every interaction; the defense punishes afterward (strikes and
        // bans), which the static table does not model.
        MechanismKind::Reputation | MechanismKind::ConsensusReputation => Some(1.0),
        MechanismKind::Reciprocity
        | MechanismKind::BitTorrent
        | MechanismKind::FairTorrent
        // Epoch balances derive from each uploader's local receipt ledger,
        // like FairTorrent deficits — no third party is ever consulted.
        | MechanismKind::EpochSettlement
        | MechanismKind::Altruism => None,
    }
}

/// The FairTorrent deficit bound from Sherman et al. \[7\], cited in Section
/// IV-C: over time an honest user's deficit with any peer is `O(log N)`
/// pieces, which bounds what a single (even whitewashing) free-rider can
/// extract per identity. We expose the bound with unit constant.
pub fn fairtorrent_deficit_bound(n: u64) -> f64 {
    (n.max(2) as f64).ln()
}

/// Convenience: ranks the six algorithms by exploitable resources,
/// ascending (most resistant first) — Fig. 5a's expected ordering.
pub fn susceptibility_ranking(p: &FreeRideParams) -> Vec<(MechanismKind, f64)> {
    let mut v: Vec<(MechanismKind, f64)> = MechanismKind::ALL
        .iter()
        .map(|&k| (k, exploitable_resources(k, p)))
        .collect();
    v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_resource_column() {
        let p = FreeRideParams {
            total_capacity: 100.0,
            alpha_bt: 0.2,
            alpha_r: 0.1,
            omega: 0.75,
            epoch_open_fraction: 0.5,
        };
        assert_eq!(exploitable_resources(MechanismKind::Reciprocity, &p), 0.0);
        assert_eq!(exploitable_resources(MechanismKind::TChain, &p), 0.0);
        assert!((exploitable_resources(MechanismKind::BitTorrent, &p) - 20.0).abs() < 1e-12);
        assert!((exploitable_resources(MechanismKind::FairTorrent, &p) - 25.0).abs() < 1e-12);
        assert!((exploitable_resources(MechanismKind::Reputation, &p) - 10.0).abs() < 1e-12);
        assert_eq!(exploitable_resources(MechanismKind::Altruism, &p), 100.0);
        assert!((exploitable_resources(MechanismKind::EpochSettlement, &p) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn epoch_settlement_susceptibility_limits() {
        let mut p = FreeRideParams::default();
        p.epoch_open_fraction = 0.0;
        assert_eq!(exploitable_resources(MechanismKind::EpochSettlement, &p), 0.0);
        p.epoch_open_fraction = 1.0;
        assert_eq!(
            exploitable_resources(MechanismKind::EpochSettlement, &p),
            exploitable_resources(MechanismKind::Altruism, &p)
        );
        assert_eq!(
            collusion_probability(MechanismKind::EpochSettlement, 0.5, 100, 1000),
            None
        );
    }

    #[test]
    fn ranking_puts_reciprocity_class_first_and_altruism_last() {
        let ranking = susceptibility_ranking(&FreeRideParams::default());
        assert_eq!(ranking[0].1, 0.0);
        assert_eq!(ranking[1].1, 0.0);
        let first_two: Vec<MechanismKind> = ranking[..2].iter().map(|&(k, _)| k).collect();
        assert!(first_two.contains(&MechanismKind::Reciprocity));
        assert!(first_two.contains(&MechanismKind::TChain));
        assert_eq!(ranking[5].0, MechanismKind::Altruism);
    }

    #[test]
    fn tchain_collusion_is_rare() {
        // 200 colluders among 1000 users with π_IR = 0.3 still yields a
        // well-below-1 probability.
        let p = collusion_probability(MechanismKind::TChain, 0.3, 200, 1000).unwrap();
        let expected = 0.3 * 200.0 * 199.0 / (1000.0 * 999.0);
        assert!((p - expected).abs() < 1e-12);
        assert!(p < 0.02);
    }

    #[test]
    fn tchain_collusion_needs_two_colluders() {
        let p = collusion_probability(MechanismKind::TChain, 0.5, 1, 1000).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn reputation_collusion_always_succeeds() {
        assert_eq!(
            collusion_probability(MechanismKind::Reputation, 0.0, 2, 1000),
            Some(1.0)
        );
    }

    #[test]
    fn non_third_party_algorithms_have_no_collusion() {
        for kind in [
            MechanismKind::Reciprocity,
            MechanismKind::BitTorrent,
            MechanismKind::FairTorrent,
            MechanismKind::Altruism,
        ] {
            assert_eq!(collusion_probability(kind, 0.5, 100, 1000), None, "{kind}");
        }
    }

    #[test]
    fn deficit_bound_grows_logarithmically() {
        assert!(fairtorrent_deficit_bound(1000) > fairtorrent_deficit_bound(100));
        assert!(fairtorrent_deficit_bound(1_000_000) < 20.0);
    }
}
