//! Piece-exchange probabilities under imperfect piece availability
//! (Section IV-A2: Eqs. 4–8, Proposition 2, Corollary 2).
//!
//! Users hold uniformly random piece sets (as produced by local-rarest-
//! first selection); `q(i, j)` is the probability that a user holding `m_i`
//! of `M` pieces needs at least one of the `m_j` pieces held by another
//! user.
//!
//! **Erratum handling.** Eq. (5) as printed divides by `C(M, m_j)`, but the
//! derivation (and Eq. (4)'s stated `m = 0` special case) require the
//! denominator `C(M, m_i)`: the probability that `j`'s `m_j` pieces all lie
//! inside `i`'s `m_i`-piece set is `C(M−m_j, m_i−m_j)/C(M, m_i)`. We
//! implement the corrected form, which reproduces every downstream claim in
//! the paper (Eq. 4's factorization, the zero cases, and Corollary 2).

use crate::analysis::combin::choose_ratio;
use crate::MechanismKind;

/// Eq. (5) (corrected, see module docs): the probability `q(i, j)` that a
/// user with `m_i` uniformly-random pieces out of `M` needs at least one of
/// the `m_j` pieces held by another user.
///
/// Edge cases: `q = 1` when `m_i < m_j` (a smaller set cannot contain a
/// larger one) and `q = 0` when `m_j = 0` (nothing to need).
///
/// # Panics
///
/// Panics if `m_i > M` or `m_j > M`.
pub fn q(m_i: u32, m_j: u32, big_m: u32) -> f64 {
    assert!(m_i <= big_m, "m_i = {m_i} exceeds M = {big_m}");
    assert!(m_j <= big_m, "m_j = {m_j} exceeds M = {big_m}");
    if m_j == 0 {
        return 0.0;
    }
    if m_i < m_j {
        return 1.0;
    }
    // P(j's set ⊆ i's set) = C(M − m_j, m_i − m_j) / C(M, m_i).
    1.0 - choose_ratio(
        (big_m - m_j) as u64,
        (m_i - m_j) as u64,
        big_m as u64,
        m_i as u64,
    )
}

/// Eq. (4): the probability `π_DR(j, i) = q(i, j)·q(j, i)` that users `i`
/// and `j` can exchange pieces with direct reciprocation.
pub fn pi_dr(m_i: u32, m_j: u32, big_m: u32) -> f64 {
    q(m_i, m_j, big_m) * q(m_j, m_i, big_m)
}

/// The distribution `p_k` of the number of pieces held by a user
/// (`p[k]` = probability of holding exactly `k` pieces, `k = 0..=M`).
#[derive(Clone, Debug, PartialEq)]
pub struct PieceCountDistribution {
    p: Vec<f64>,
}

impl PieceCountDistribution {
    /// Creates a distribution from probabilities `p[0..=M]`.
    ///
    /// # Errors
    ///
    /// Returns an error if the probabilities are negative or do not sum to
    /// 1 (±1e-6).
    pub fn new(p: Vec<f64>) -> Result<Self, String> {
        if p.is_empty() {
            return Err("distribution must be nonempty".to_string());
        }
        if p.iter().any(|&x| x < 0.0) {
            return Err("probabilities must be nonnegative".to_string());
        }
        let total: f64 = p.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(format!("probabilities must sum to 1, got {total}"));
        }
        Ok(PieceCountDistribution { p })
    }

    /// A uniform distribution over `0..=M` pieces — the flash-crowd
    /// mid-download regime used in the harness's Fig. 3 sweeps.
    pub fn uniform(big_m: u32) -> Self {
        let n = big_m as usize + 1;
        PieceCountDistribution {
            p: vec![1.0 / n as f64; n],
        }
    }

    /// A point mass at `k` pieces.
    ///
    /// # Panics
    ///
    /// Panics if `k > M`.
    pub fn point(k: u32, big_m: u32) -> Self {
        assert!(k <= big_m);
        let mut p = vec![0.0; big_m as usize + 1];
        p[k as usize] = 1.0;
        PieceCountDistribution { p }
    }

    /// Builds the empirical distribution from a histogram of piece counts
    /// (`hist[k]` = number of users with `k` pieces).
    pub fn from_histogram(hist: &[u32], big_m: u32) -> Self {
        let total: u32 = hist.iter().sum();
        let mut p = vec![0.0; big_m as usize + 1];
        if total > 0 {
            for (k, &c) in hist.iter().enumerate().take(p.len()) {
                p[k] = c as f64 / total as f64;
            }
        }
        PieceCountDistribution { p }
    }

    /// `M` (the distribution covers `0..=M`).
    pub fn max_pieces(&self) -> u32 {
        (self.p.len() - 1) as u32
    }

    /// The probability of holding exactly `k` pieces.
    pub fn prob(&self, k: u32) -> f64 {
        self.p.get(k as usize).copied().unwrap_or(0.0)
    }
}

/// The inner sum of Eq. (6): `Σ_l p_l q(j, l)(1 − q(l, j))` — the
/// probability that a random third user `l` needs a piece from `j` while
/// `j` needs nothing from `l` (an indirect-reciprocity opportunity).
///
/// Note: in Eq. (6)'s notation `q(j, l)` means "l needs from j"; we keep
/// the paper's argument order by calling [`q`]`(m_l, m_j, M)` for "l needs
/// at least one of j's pieces".
fn indirect_opportunity(m_j: u32, dist: &PieceCountDistribution, big_m: u32) -> f64 {
    (0..=big_m)
        .map(|l| {
            let p_l = dist.prob(l);
            if p_l == 0.0 {
                0.0
            } else {
                // l needs from j, while j does not need from l.
                p_l * q(l, m_j, big_m) * (1.0 - q(m_j, l, big_m))
            }
        })
        .sum()
}

/// Eq. (6): the probability `π_TC(j, i)` that user `j` can upload to user
/// `i` under T-Chain — direct reciprocity, plus indirect reciprocity
/// through at least one of the other `N − 2` users.
pub fn pi_tc(m_i: u32, m_j: u32, big_m: u32, dist: &PieceCountDistribution, n: usize) -> f64 {
    let q_ij = q(m_i, m_j, big_m); // i needs from j
    let q_ji = q(m_j, m_i, big_m); // j needs from i
    let direct = q_ij * q_ji;
    let redirect = indirect_exists(m_j, dist, big_m, n);
    direct + q_ij * (1.0 - q_ji) * redirect
}

/// The probability that at least one of `N − 2` third users offers an
/// indirect-reciprocity opportunity with `j`:
/// `1 − (1 − Σ_l p_l q(j,l)(1 − q(l,j)))^{N−2}`.
pub fn indirect_exists(m_j: u32, dist: &PieceCountDistribution, big_m: u32, n: usize) -> f64 {
    let single = indirect_opportunity(m_j, dist, big_m).clamp(0.0, 1.0);
    let exponent = n.saturating_sub(2) as f64;
    1.0 - (1.0 - single).powf(exponent)
}

/// Eq. (7): the probability `π_BT(j, i)` that user `j` can upload to user
/// `i` under BitTorrent — tit-for-tat requires mutual interest, and the
/// `α_BT` optimistic share requires only `i`'s interest.
pub fn pi_bt(m_i: u32, m_j: u32, big_m: u32, alpha_bt: f64) -> f64 {
    let q_ij = q(m_i, m_j, big_m);
    let q_ji = q(m_j, m_i, big_m);
    q_ij * ((1.0 - alpha_bt) * q_ji + alpha_bt)
}

/// Altruism's exchange probability: only the receiver's interest matters,
/// `π_A(j, i) = q(i, j)` (Corollary 2's upper bound).
pub fn pi_altruism(m_i: u32, m_j: u32, big_m: u32) -> f64 {
    q(m_i, m_j, big_m)
}

/// Eq. (8): the largest `α_BT` for which `π_TC ≥ π_BT` is guaranteed —
/// the indirect-reciprocity availability term.
pub fn alpha_bt_threshold(m_j: u32, dist: &PieceCountDistribution, big_m: u32, n: usize) -> f64 {
    indirect_exists(m_j, dist, big_m, n)
}

/// The probability of *indirect* reciprocity occurring between `j` and `i`
/// (the second summand of Eq. 6 alone) — the window in which T-Chain's
/// collusion attack can fire (Table III).
pub fn pi_ir(m_i: u32, m_j: u32, big_m: u32, dist: &PieceCountDistribution, n: usize) -> f64 {
    let q_ij = q(m_i, m_j, big_m);
    let q_ji = q(m_j, m_i, big_m);
    q_ij * (1.0 - q_ji) * indirect_exists(m_j, dist, big_m, n)
}

/// Evaluates the expected exchange probability of an algorithm with both
/// endpoints' piece counts drawn from `dist` — the scalar the Fig. 3
/// efficiency ranking compares.
///
/// Reciprocity's probability is identically zero (no exchange can be
/// initiated); FairTorrent is availability-limited like altruism but must
/// honor deficit order, which the simulator (not this formula) captures.
pub fn expected_exchange_probability(
    kind: MechanismKind,
    dist: &PieceCountDistribution,
    n: usize,
    alpha_bt: f64,
) -> f64 {
    let big_m = dist.max_pieces();
    let mut acc = 0.0;
    for m_i in 0..=big_m {
        let p_i = dist.prob(m_i);
        if p_i == 0.0 {
            continue;
        }
        for m_j in 0..=big_m {
            let p_j = dist.prob(m_j);
            if p_j == 0.0 {
                continue;
            }
            let pi = match kind {
                MechanismKind::Reciprocity => 0.0,
                MechanismKind::TChain => pi_tc(m_i, m_j, big_m, dist, n),
                MechanismKind::BitTorrent => pi_bt(m_i, m_j, big_m, alpha_bt),
                MechanismKind::FairTorrent | MechanismKind::Altruism => {
                    pi_altruism(m_i, m_j, big_m)
                }
                MechanismKind::Reputation | MechanismKind::ConsensusReputation => {
                    // Reputation- and consensus-score-weighted targets
                    // still require the receiver's interest only.
                    pi_altruism(m_i, m_j, big_m)
                }
                MechanismKind::EpochSettlement => {
                    // Like FairTorrent, settled balances only reorder
                    // recipients; whether a piece can move is still
                    // availability-limited.
                    pi_altruism(m_i, m_j, big_m)
                }
            };
            acc += p_i * p_j * pi;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: u32 = 64;

    #[test]
    fn q_edge_cases() {
        assert_eq!(q(0, 0, M), 0.0); // nothing to need
        assert_eq!(q(0, 5, M), 1.0); // empty set needs anything
        assert_eq!(q(5, 0, M), 0.0);
        assert_eq!(q(M, 5, M), 0.0); // complete user needs nothing
        assert_eq!(q(M, M, M), 0.0);
    }

    #[test]
    fn q_is_a_probability_and_monotone_in_m_j() {
        for m_i in [0u32, 1, 10, 32, 63, 64] {
            let mut prev = 0.0;
            for m_j in 0..=M {
                let v = q(m_i, m_j, M);
                assert!((0.0..=1.0).contains(&v), "q({m_i},{m_j}) = {v}");
                assert!(
                    v >= prev - 1e-12,
                    "q should not decrease as j holds more pieces"
                );
                prev = v;
            }
        }
    }

    #[test]
    fn q_hand_computed_small_case() {
        // M = 4, m_i = 2, m_j = 1: P(j's 1 piece ∈ i's 2) = C(3,1)/C(4,2)
        // = 3/6 = 1/2, so q = 1/2.
        assert!((q(2, 1, 4) - 0.5).abs() < 1e-12);
        // M = 4, m_i = 3, m_j = 1: C(3,2)/C(4,3) = 3/4 ⊂ → q = 1/4.
        assert!((q(3, 1, 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pi_dr_matches_eq4_closed_form() {
        // Eq. (4): π_DR = 1 − C(M−min, max−min)/C(M, max).
        for (m_i, m_j) in [(10u32, 20u32), (32, 32), (5, 60), (0, 10), (7, 0)] {
            let lhs = pi_dr(m_i, m_j, M);
            let mn = m_i.min(m_j);
            let mx = m_i.max(m_j);
            let rhs = if mn == 0 {
                0.0
            } else {
                1.0 - crate::analysis::combin::choose_ratio(
                    (M - mn) as u64,
                    (mx - mn) as u64,
                    M as u64,
                    mx as u64,
                )
            };
            assert!(
                (lhs - rhs).abs() < 1e-9,
                "π_DR({m_i},{m_j}) = {lhs} vs Eq.4 {rhs}"
            );
        }
    }

    #[test]
    fn newcomers_cannot_directly_reciprocate() {
        // The paper's flash-crowd observation: with m_i or m_j = 0,
        // π_DR = 0 — users cannot exchange unless each has a piece.
        assert_eq!(pi_dr(0, 10, M), 0.0);
        assert_eq!(pi_dr(10, 0, M), 0.0);
        assert!(pi_dr(1, 1, M) > 0.0);
    }

    #[test]
    fn corollary2_altruism_dominates() {
        let dist = PieceCountDistribution::uniform(M);
        for m_i in [0u32, 5, 30, 60] {
            for m_j in [1u32, 8, 40, 64] {
                let pa = pi_altruism(m_i, m_j, M);
                let ptc = pi_tc(m_i, m_j, M, &dist, 100);
                let pbt = pi_bt(m_i, m_j, M, 0.2);
                assert!(pa >= ptc - 1e-12, "π_A ≥ π_TC at ({m_i},{m_j})");
                assert!(pa >= pbt - 1e-12, "π_A ≥ π_BT at ({m_i},{m_j})");
            }
        }
    }

    #[test]
    fn corollary2_tchain_approaches_altruism_as_n_grows() {
        let dist = PieceCountDistribution::uniform(M);
        let (m_i, m_j) = (20u32, 30u32);
        let pa = pi_altruism(m_i, m_j, M);
        let small = pi_tc(m_i, m_j, M, &dist, 5);
        let large = pi_tc(m_i, m_j, M, &dist, 100_000);
        assert!(large > small);
        assert!(
            (pa - large).abs() < 1e-6,
            "π_TC → π_A as N → ∞ ({large} vs {pa})"
        );
    }

    #[test]
    fn proposition2_threshold_orders_tc_and_bt() {
        let dist = PieceCountDistribution::uniform(M);
        let n = 1000;
        let (m_i, m_j) = (20u32, 25u32);
        let threshold = alpha_bt_threshold(m_j, &dist, M, n);
        // α_BT below the threshold: T-Chain wins.
        let alpha_low = threshold * 0.5;
        assert!(pi_tc(m_i, m_j, M, &dist, n) >= pi_bt(m_i, m_j, M, alpha_low) - 1e-12);
        // α_BT above the threshold: BitTorrent can win.
        let alpha_high = (threshold * 1.5).min(1.0);
        if alpha_high > threshold {
            assert!(pi_bt(m_i, m_j, M, alpha_high) >= pi_tc(m_i, m_j, M, &dist, n) - 1e-9);
        }
    }

    #[test]
    fn pi_ir_is_the_indirect_component() {
        let dist = PieceCountDistribution::uniform(M);
        let (m_i, m_j) = (20u32, 30u32);
        let total = pi_tc(m_i, m_j, M, &dist, 500);
        let direct = pi_dr(m_i, m_j, M);
        // Careful: pi_tc's direct term is q(i,j)q(j,i) = pi_dr.
        let indirect = pi_ir(m_i, m_j, M, &dist, 500);
        assert!((total - (direct + indirect)).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&indirect));
    }

    #[test]
    fn distribution_constructors_validate() {
        assert!(PieceCountDistribution::new(vec![]).is_err());
        assert!(PieceCountDistribution::new(vec![0.5, 0.4]).is_err());
        assert!(PieceCountDistribution::new(vec![-0.1, 1.1]).is_err());
        let u = PieceCountDistribution::uniform(4);
        assert_eq!(u.max_pieces(), 4);
        assert!((u.prob(2) - 0.2).abs() < 1e-12);
        let pt = PieceCountDistribution::point(3, 4);
        assert_eq!(pt.prob(3), 1.0);
        assert_eq!(pt.prob(2), 0.0);
    }

    #[test]
    fn distribution_from_histogram() {
        let d = PieceCountDistribution::from_histogram(&[2, 0, 2], 4);
        assert_eq!(d.prob(0), 0.5);
        assert_eq!(d.prob(2), 0.5);
        assert_eq!(d.prob(4), 0.0);
    }

    #[test]
    fn expected_probability_ranking_matches_fig3() {
        // Fig. 3: altruism ≥ T-Chain ≥ FairTorrent-class ≥ BitTorrent,
        // reciprocity = 0. (FairTorrent shares altruism's formula here; its
        // extra deficit constraint only appears in simulation.)
        let dist = PieceCountDistribution::uniform(32);
        let n = 1000;
        let e = |kind| expected_exchange_probability(kind, &dist, n, 0.2);
        let alt = e(MechanismKind::Altruism);
        let tc = e(MechanismKind::TChain);
        let bt = e(MechanismKind::BitTorrent);
        let rec = e(MechanismKind::Reciprocity);
        assert!(alt >= tc && tc >= bt, "alt={alt} tc={tc} bt={bt}");
        assert!(tc > 0.9 * alt, "T-Chain nearly matches altruism at N=1000");
        assert_eq!(rec, 0.0);
    }
}
