//! Bootstrapping analysis: Table II, Lemma 3, Proposition 4 (Section IV-B).
//!
//! `T_B(P)` is the time for `P` flash-crowd newcomers to each receive at
//! least one piece. Table II gives the per-timeslot probability `p_B` that
//! a single newcomer is bootstrapped, given `z(t)` already-bootstrapped
//! users; Lemma 3 converts `p_B(t)` into the expected bootstrap time.

use crate::MechanismKind;

/// The parameters of Table II.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapParams {
    /// Total number of users `N`.
    pub n: u64,
    /// Users bootstrapped by the seeder per timeslot, `n_S`.
    pub n_s: u64,
    /// Average pieces uploadable per user per timeslot, `K`.
    pub k: u64,
    /// Number of already-bootstrapped users, `z(t)`.
    pub z: u64,
    /// Probability of direct reciprocity in T-Chain, `π_DR`.
    pub pi_dr: f64,
    /// BitTorrent's reciprocal unchoke slots, `n_BT`.
    pub n_bt: u64,
    /// FairTorrent's probability of owing data to at least one peer, `ω`.
    pub omega: f64,
    /// Number of zero-deficit users in FairTorrent, `n_FT`.
    pub n_ft: u64,
}

impl BootstrapParams {
    /// The example column of Table II: `N = 1000, n_S = 1, K = 5, z = 500,
    /// π_DR = 0.5, n_BT = 4, ω = 0.75, n_FT = 500`.
    pub fn paper_example() -> Self {
        BootstrapParams {
            n: 1000,
            n_s: 1,
            k: 5,
            z: 500,
            pi_dr: 0.5,
            n_bt: 4,
            omega: 0.75,
            n_ft: 500,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (e.g. `N < 3`,
    /// probabilities outside `[0, 1]`, `n_FT ≤ K + 1`).
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 3 {
            return Err(format!("N must be at least 3, got {}", self.n));
        }
        if self.n_s > self.n {
            return Err("n_S cannot exceed N".to_string());
        }
        if !(0.0..=1.0).contains(&self.pi_dr) {
            return Err(format!("π_DR must be in [0,1], got {}", self.pi_dr));
        }
        if !(0.0..=1.0).contains(&self.omega) {
            return Err(format!("ω must be in [0,1], got {}", self.omega));
        }
        if self.n_bt + 2 >= self.n {
            return Err("N must exceed n_BT + 2".to_string());
        }
        if self.n_ft < self.k + 2 {
            return Err(format!(
                "n_FT must be at least K + 2 (got n_FT = {}, K = {})",
                self.n_ft, self.k
            ));
        }
        Ok(())
    }
}

/// Table II: the probability that a single newcomer is bootstrapped in one
/// timeslot under the given algorithm.
///
/// # Panics
///
/// Panics if the parameters fail [`BootstrapParams::validate`].
pub fn bootstrap_probability(kind: MechanismKind, p: &BootstrapParams) -> f64 {
    p.validate()
        .unwrap_or_else(|e| panic!("invalid bootstrap parameters: {e}"));
    let n = p.n as f64;
    let n_s = p.n_s as f64;
    let seeder_miss = (n - n_s) / n;
    let kz = (p.k * p.z) as f64;
    let z = p.z as f64;
    let x = match kind {
        // Peers never bootstrap each other; only the seeder does.
        MechanismKind::Reciprocity => 1.0,
        MechanismKind::TChain => (((n - 2.0) + p.pi_dr) / (n - 1.0)).powf(kz),
        MechanismKind::BitTorrent => {
            let nb = p.n_bt as f64;
            ((n - nb - 2.0) / (n - nb - 1.0)).powf(z)
        }
        MechanismKind::FairTorrent => {
            let nft = p.n_ft as f64;
            let kf = p.k as f64;
            (p.omega + (1.0 - p.omega) * (nft - kf - 1.0) / (nft - 1.0)).powf(z)
        }
        MechanismKind::Reputation => ((n - 2.0) / (n - 1.0)).powf(z / 2.0),
        MechanismKind::Altruism => ((n - 2.0) / (n - 1.0)).powf(kz),
        // Beyond the paper: newcomers have no settled balances, so during
        // an open epoch only the altruistic remainder reaches them. Each
        // bootstrapped user spends most of its K pieces repaying settled
        // creditors, leaving ~one altruistic piece per timeslot — the
        // reputation row's shape (z/2 effective altruistic uploads).
        MechanismKind::EpochSettlement => ((n - 2.0) / (n - 1.0)).powf(z / 2.0),
        // Beyond the paper: newcomers start with zero consensus score
        // (there is no pre-trusted root to inherit from), so exactly as in
        // the reputation row only the altruistic α_R share reaches them.
        MechanismKind::ConsensusReputation => ((n - 2.0) / (n - 1.0)).powf(z / 2.0),
    };
    1.0 - seeder_miss * x
}

/// Lemma 3: the expected time until all `P` newcomers are bootstrapped,
/// `E[T_B(P)] = Σ_{n≥1} (1 − (1 − Π_{t=1}^n (1 − p_B(t)))^P)`,
/// where `p_B(t)` is supplied per timeslot (1-based).
///
/// The sum is truncated once the tail term drops below `tol` or after
/// `max_terms` timeslots, whichever comes first.
pub fn expected_bootstrap_time<F>(p_newcomers: u64, mut p_b: F, tol: f64, max_terms: u64) -> f64
where
    F: FnMut(u64) -> f64,
{
    assert!(p_newcomers > 0, "need at least one newcomer");
    // E[T] = Σ_{n≥0} P(T > n); the n = 0 term is 1 (bootstrapping takes at
    // least one timeslot), and each later term is Eq. (10)'s summand.
    let mut expectation = 1.0;
    let mut survive = 1.0; // Π_{t≤n} (1 − p_B(t)) — P(one newcomer still not bootstrapped)
    for t in 1..=max_terms {
        let pb = p_b(t).clamp(0.0, 1.0);
        survive *= 1.0 - pb;
        // P(T_B > n) for all P newcomers = 1 − (1 − survive)^P.
        let term = 1.0 - (1.0 - survive).powf(p_newcomers as f64);
        expectation += term;
        if term < tol {
            break;
        }
    }
    expectation
}

/// One step of the mean-field bootstrapping dynamics: starting from `z`
/// bootstrapped users out of `n_total`, the expected number bootstrapped
/// after one timeslot of the given algorithm.
pub fn mean_field_step(kind: MechanismKind, params: &BootstrapParams, n_total: u64) -> f64 {
    let pb = bootstrap_probability(kind, params);
    let unboot = n_total.saturating_sub(params.z) as f64;
    params.z as f64 + unboot * pb
}

/// Simulates the mean-field evolution of `z(t)` for `rounds` timeslots and
/// returns the trajectory (starting value included). The trajectory is the
/// analytic counterpart of the paper's Fig. 4c bootstrap curves.
pub fn mean_field_trajectory(
    kind: MechanismKind,
    base: &BootstrapParams,
    z0: u64,
    rounds: u64,
) -> Vec<f64> {
    let mut z = z0 as f64;
    let mut out = vec![z];
    for _ in 0..rounds {
        let mut p = *base;
        p.z = z.round() as u64;
        let next = mean_field_step(kind, &p, base.n).min(base.n as f64);
        z = next;
        out.push(z);
    }
    out
}

/// Proposition 4's first condition, Eq. (14): altruism bootstraps fastest
/// when `K ≥ 2`, `N ≫ K`, and
/// `(1 − ω)(N − 1)/(n_FT − 1) ≤ (1 − 1/(N − 1))^{K−1}`.
pub fn prop4_altruism_fastest(p: &BootstrapParams) -> bool {
    if p.k < 2 {
        return false;
    }
    let n = p.n as f64;
    let lhs = (1.0 - p.omega) * (n - 1.0) / (p.n_ft as f64 - 1.0);
    let rhs = (1.0 - 1.0 / (n - 1.0)).powf(p.k as f64 - 1.0);
    lhs <= rhs
}

/// The pairwise comparisons proved in Proposition 4's appendix, evaluated
/// as predicates on concrete parameters. Each returns whether the
/// condition under which the paper proves the ordering holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prop4Conditions {
    /// Altruism ≥ T-Chain (always true; the proof is unconditional).
    pub altruism_beats_tchain: bool,
    /// Altruism ≥ FairTorrent (requires Eq. 14).
    pub altruism_beats_fairtorrent: bool,
    /// Altruism ≥ BitTorrent (requires `N ≫ K ≥ n_BT`-style size
    /// conditions; checked directly on the probabilities).
    pub altruism_beats_bittorrent: bool,
    /// T-Chain ≥ BitTorrent (the appendix proves it for
    /// `π_DR ≤ 1/2` and sufficiently large `N`).
    pub tchain_beats_bittorrent: bool,
    /// FairTorrent ≥ BitTorrent (requires `n_FT ≥ N − n_BT` and
    /// `ω ≤ 1 − 1/K`).
    pub fairtorrent_beats_bittorrent: bool,
    /// BitTorrent ≥ reputation (always true; cross-multiplication).
    pub bittorrent_beats_reputation: bool,
}

/// Evaluates every Proposition 4 pairwise claim at the given parameters by
/// comparing the Table II probabilities directly, alongside the sufficient
/// conditions the appendix derives.
pub fn prop4_pairwise(p: &BootstrapParams) -> Prop4Conditions {
    let prob = |k| bootstrap_probability(k, p);
    let tol = 1e-12;
    Prop4Conditions {
        altruism_beats_tchain: prob(MechanismKind::Altruism)
            >= prob(MechanismKind::TChain) - tol,
        altruism_beats_fairtorrent: prob(MechanismKind::Altruism)
            >= prob(MechanismKind::FairTorrent) - tol,
        altruism_beats_bittorrent: prob(MechanismKind::Altruism)
            >= prob(MechanismKind::BitTorrent) - tol,
        tchain_beats_bittorrent: prob(MechanismKind::TChain)
            >= prob(MechanismKind::BitTorrent) - tol,
        fairtorrent_beats_bittorrent: prob(MechanismKind::FairTorrent)
            >= prob(MechanismKind::BitTorrent) - tol,
        bittorrent_beats_reputation: prob(MechanismKind::BitTorrent)
            >= prob(MechanismKind::Reputation) - tol,
    }
}

/// The appendix's sufficient condition for T-Chain ≥ BitTorrent:
/// `π_DR ≤ 1/2` with `N` sufficiently large and `K ≥ 2` ("if K = 2, it is
/// sufficient for π_DR, ω ≤ 1/2").
pub fn prop4_tchain_condition(p: &BootstrapParams) -> bool {
    p.k >= 2 && p.pi_dr <= 0.5 && p.n >= 10 * p.n_bt
}

/// The appendix's sufficient condition for FairTorrent ≥ BitTorrent:
/// `n_FT ≥ N − n_BT` and `ω ≤ 1 − 1/K`.
pub fn prop4_fairtorrent_condition(p: &BootstrapParams) -> bool {
    p.k >= 1 && p.n_ft >= p.n.saturating_sub(p.n_bt) && p.omega <= 1.0 - 1.0 / p.k as f64
}

/// Proposition 4's qualitative ordering at the given parameters: returns
/// the six algorithms sorted by decreasing bootstrap probability.
pub fn bootstrap_ranking(p: &BootstrapParams) -> Vec<(MechanismKind, f64)> {
    let mut v: Vec<(MechanismKind, f64)> = MechanismKind::ALL
        .iter()
        .map(|&k| (k, bootstrap_probability(k, p)))
        .collect();
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("probabilities are finite"));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_example_column() {
        // The paper's Table II sample probabilities: 0.1%, 71.4%, 39.6%,
        // 71.4%, 22.2%, 91.8%.
        let p = BootstrapParams::paper_example();
        let cases = [
            (MechanismKind::Reciprocity, 0.001),
            (MechanismKind::TChain, 0.714),
            (MechanismKind::BitTorrent, 0.396),
            (MechanismKind::FairTorrent, 0.714),
            (MechanismKind::Reputation, 0.222),
            (MechanismKind::Altruism, 0.918),
        ];
        for (kind, expected) in cases {
            let got = bootstrap_probability(kind, &p);
            assert!(
                (got - expected).abs() < 0.001,
                "{kind}: got {got:.4}, paper says {expected}"
            );
        }
    }

    #[test]
    fn prop4_ordering_at_paper_example() {
        // Altruism > {T-Chain, FairTorrent} > BitTorrent > Reputation >
        // Reciprocity.
        let p = BootstrapParams::paper_example();
        let ranking = bootstrap_ranking(&p);
        let names: Vec<MechanismKind> = ranking.iter().map(|&(k, _)| k).collect();
        assert_eq!(names[0], MechanismKind::Altruism);
        assert_eq!(names[5], MechanismKind::Reciprocity);
        assert_eq!(names[4], MechanismKind::Reputation);
        assert_eq!(names[3], MechanismKind::BitTorrent);
        assert!(prop4_altruism_fastest(&p));
    }

    #[test]
    fn tchain_equals_altruism_when_pi_dr_zero() {
        let mut p = BootstrapParams::paper_example();
        p.pi_dr = 0.0;
        let tc = bootstrap_probability(MechanismKind::TChain, &p);
        let alt = bootstrap_probability(MechanismKind::Altruism, &p);
        assert!((tc - alt).abs() < 1e-12);
    }

    #[test]
    fn fairtorrent_equals_altruism_when_omega_zero_and_nft_tracks() {
        // Prop. 4: with ω = 0 FairTorrent's miss factor becomes
        // (n_FT−K−1)/(n_FT−1) per bootstrapped user; as n_FT → N this
        // approaches altruism's (1 − 1/(N−1))^K per-user factor.
        let mut p = BootstrapParams::paper_example();
        p.omega = 0.0;
        p.n_ft = p.n;
        let ft = bootstrap_probability(MechanismKind::FairTorrent, &p);
        let alt = bootstrap_probability(MechanismKind::Altruism, &p);
        assert!(
            (ft - alt).abs() < 0.02,
            "ft = {ft}, alt = {alt} should nearly coincide"
        );
    }

    #[test]
    fn probabilities_increase_with_z() {
        for kind in [
            MechanismKind::TChain,
            MechanismKind::BitTorrent,
            MechanismKind::Reputation,
            MechanismKind::Altruism,
        ] {
            let mut p = BootstrapParams::paper_example();
            p.z = 100;
            let lo = bootstrap_probability(kind, &p);
            p.z = 800;
            let hi = bootstrap_probability(kind, &p);
            assert!(hi > lo, "{kind}: more seeds should bootstrap faster");
        }
    }

    #[test]
    fn reciprocity_is_seeder_only() {
        let mut p = BootstrapParams::paper_example();
        let base = bootstrap_probability(MechanismKind::Reciprocity, &p);
        assert!((base - 0.001).abs() < 1e-9);
        p.z = 999; // even with everyone bootstrapped, peers never help
        let still = bootstrap_probability(MechanismKind::Reciprocity, &p);
        assert!((still - 0.001).abs() < 1e-9);
    }

    #[test]
    fn lemma3_geometric_special_case() {
        // With constant p_B = p and a single newcomer, T_B is geometric
        // with mean 1/p.
        for p in [0.1, 0.25, 0.5] {
            let e = expected_bootstrap_time(1, |_| p, 1e-12, 100_000);
            assert!((e - 1.0 / p).abs() < 1e-6, "p = {p}: E = {e}");
        }
    }

    #[test]
    fn lemma3_maximum_of_many_newcomers_is_larger() {
        let single = expected_bootstrap_time(1, |_| 0.3, 1e-12, 100_000);
        let crowd = expected_bootstrap_time(1000, |_| 0.3, 1e-12, 100_000);
        assert!(crowd > single);
        // E[max of P geometrics] ≈ H_P / -ln(1-p) for large P; sanity bound.
        assert!(crowd < 50.0);
    }

    #[test]
    fn lemma3_monotone_in_probability() {
        let slow = expected_bootstrap_time(100, |_| 0.1, 1e-12, 100_000);
        let fast = expected_bootstrap_time(100, |_| 0.5, 1e-12, 100_000);
        assert!(fast < slow);
    }

    #[test]
    fn mean_field_trajectory_is_monotone_and_bounded() {
        let p = BootstrapParams {
            z: 1,
            ..BootstrapParams::paper_example()
        };
        let traj = mean_field_trajectory(MechanismKind::Altruism, &p, 1, 50);
        assert_eq!(traj.len(), 51);
        for w in traj.windows(2) {
            assert!(w[1] >= w[0], "z(t) must not decrease");
            assert!(w[1] <= p.n as f64);
        }
        // The flash crowd fully bootstraps quickly under altruism.
        assert!(*traj.last().unwrap() > 0.99 * p.n as f64);
    }

    #[test]
    fn mean_field_altruism_beats_bittorrent() {
        let p = BootstrapParams {
            z: 1,
            ..BootstrapParams::paper_example()
        };
        let alt = mean_field_trajectory(MechanismKind::Altruism, &p, 1, 30);
        let bt = mean_field_trajectory(MechanismKind::BitTorrent, &p, 1, 30);
        // At every time step altruism has bootstrapped at least as many.
        for (a, b) in alt.iter().zip(&bt) {
            assert!(a >= b);
        }
    }

    #[test]
    fn prop4_pairwise_holds_at_paper_example() {
        let p = BootstrapParams::paper_example();
        let c = prop4_pairwise(&p);
        assert!(c.altruism_beats_tchain);
        assert!(c.altruism_beats_fairtorrent);
        assert!(c.altruism_beats_bittorrent);
        assert!(c.tchain_beats_bittorrent);
        assert!(c.fairtorrent_beats_bittorrent);
        assert!(c.bittorrent_beats_reputation);
    }

    #[test]
    fn prop4_unconditional_claims_hold_broadly() {
        // Altruism ≥ T-Chain and BitTorrent ≥ reputation are proved
        // without side conditions; sweep a parameter grid.
        for n in [100u64, 500, 2000] {
            for z in [10u64, 100, n / 2] {
                for pi in [0.0, 0.3, 0.7, 1.0] {
                    let p = BootstrapParams {
                        n,
                        n_s: 1,
                        k: 3,
                        z,
                        pi_dr: pi,
                        n_bt: 4,
                        omega: 0.5,
                        n_ft: n / 2,
                    };
                    if p.validate().is_err() {
                        continue;
                    }
                    let c = prop4_pairwise(&p);
                    assert!(c.altruism_beats_tchain, "{p:?}");
                    assert!(c.bittorrent_beats_reputation, "{p:?}");
                }
            }
        }
    }

    #[test]
    fn prop4_sufficient_conditions_imply_orderings() {
        // Wherever the appendix's sufficient conditions hold, the direct
        // probability comparison must agree.
        for n in [200u64, 1000] {
            for pi in [0.1, 0.4, 0.5] {
                for omega in [0.0, 0.3, 0.6] {
                    let p = BootstrapParams {
                        n,
                        n_s: 1,
                        k: 4,
                        z: n / 3,
                        pi_dr: pi,
                        n_bt: 4,
                        omega,
                        n_ft: n,
                    };
                    let c = prop4_pairwise(&p);
                    if prop4_tchain_condition(&p) {
                        assert!(c.tchain_beats_bittorrent, "{p:?}");
                    }
                    if prop4_fairtorrent_condition(&p) {
                        assert!(c.fairtorrent_beats_bittorrent, "{p:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn prop4_ordering_can_invert_outside_conditions() {
        // With π_DR = 1 (perfect direct reciprocity everywhere), T-Chain's
        // bootstrap advantage over BitTorrent disappears — the condition
        // matters.
        let p = BootstrapParams {
            pi_dr: 1.0,
            ..BootstrapParams::paper_example()
        };
        assert!(!prop4_tchain_condition(&p));
        let c = prop4_pairwise(&p);
        assert!(
            !c.tchain_beats_bittorrent,
            "π_DR = 1 degenerates T-Chain's bootstrapping"
        );
    }

    #[test]
    fn validation_rejects_inconsistent_params() {
        let mut p = BootstrapParams::paper_example();
        p.n = 2;
        assert!(p.validate().is_err());
        p = BootstrapParams::paper_example();
        p.pi_dr = 1.5;
        assert!(p.validate().is_err());
        p = BootstrapParams::paper_example();
        p.n_ft = 3;
        assert!(p.validate().is_err());
        p = BootstrapParams::paper_example();
        p.n_s = 2000;
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid bootstrap parameters")]
    fn bootstrap_probability_panics_on_bad_params() {
        let mut p = BootstrapParams::paper_example();
        p.omega = -1.0;
        bootstrap_probability(MechanismKind::FairTorrent, &p);
    }
}
