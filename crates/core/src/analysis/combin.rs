//! Log-space combinatorics.
//!
//! The piece-exchange probabilities (Eqs. 4–5) involve ratios of binomial
//! coefficients with arguments up to the number of pieces `M` (hundreds) or
//! users `N` (thousands). Direct evaluation overflows; all ratios are
//! therefore computed via `ln Γ`.

/// Natural log of the gamma function, by the Lanczos approximation
/// (g = 7, n = 9 coefficients; absolute error below 1e-13 for x > 0).
///
/// # Panics
///
/// Panics if `x <= 0` (the analysis only needs positive arguments).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln n!` via `ln Γ(n + 1)`.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, k)`; returns negative infinity when `k > n` (the coefficient is
/// zero), so ratios of impossible configurations vanish cleanly.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The ratio `C(n1, k1) / C(n2, k2)` computed in log space.
///
/// Returns 0 when the numerator is an impossible configuration.
///
/// # Panics
///
/// Panics if the denominator is an impossible configuration (`k2 > n2`).
pub fn choose_ratio(n1: u64, k1: u64, n2: u64, k2: u64) -> f64 {
    let denom = ln_choose(n2, k2);
    assert!(
        denom.is_finite(),
        "choose_ratio denominator C({n2}, {k2}) is zero"
    );
    let num = ln_choose(n1, k1);
    if num.is_finite() {
        (num - denom).exp()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            assert!(
                close(ln_gamma(n as f64 + 1.0), f.ln(), 1e-12),
                "Γ({}) mismatch",
                n + 1
            );
        }
    }

    #[test]
    fn gamma_half() {
        // Γ(1/2) = √π.
        assert!(close(
            ln_gamma(0.5),
            (std::f64::consts::PI.sqrt()).ln(),
            1e-12
        ));
    }

    #[test]
    fn gamma_large_argument_stirling_regime() {
        // ln Γ(171) = ln 170! ≈ ln(7.2574 × 10^306); Stirling with
        // correction terms gives 706.5725 to 4 decimal places.
        let reference = 706.5725;
        assert!(close(ln_gamma(171.0), reference, 1e-6));
        // And the recurrence Γ(z + 1) = z Γ(z) must hold across the range.
        for z in [1.5f64, 10.0, 100.0, 170.0, 512.0, 2000.0] {
            let lhs = ln_gamma(z + 1.0);
            let rhs = ln_gamma(z) + z.ln();
            assert!(close(lhs, rhs, 1e-12), "recurrence fails at z = {z}");
        }
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn choose_small_values() {
        assert_eq!(ln_choose(5, 0), 0.0);
        assert_eq!(ln_choose(5, 5), 0.0);
        assert!(close(ln_choose(5, 2), 10f64.ln(), 1e-12));
        assert!(close(ln_choose(10, 3), 120f64.ln(), 1e-12));
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn choose_symmetry_and_pascal() {
        for n in [10u64, 50, 500] {
            for k in [1u64, 3, n / 2] {
                assert!(close(ln_choose(n, k), ln_choose(n, n - k), 1e-10));
                // Pascal: C(n,k) = C(n-1,k-1) + C(n-1,k) — verify in linear
                // space for moderate n.
                if n <= 50 {
                    let lhs = ln_choose(n, k).exp();
                    let rhs = ln_choose(n - 1, k - 1).exp() + ln_choose(n - 1, k).exp();
                    assert!(close(lhs, rhs, 1e-9));
                }
            }
        }
    }

    #[test]
    fn ratio_handles_impossible_numerator() {
        assert_eq!(choose_ratio(3, 5, 10, 2), 0.0);
        assert!(close(choose_ratio(10, 2, 10, 2), 1.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn ratio_rejects_impossible_denominator() {
        choose_ratio(10, 2, 3, 5);
    }

    #[test]
    fn large_ratio_is_stable() {
        // C(512, 256)/C(512, 255) = (512-255)/256 — a huge-coefficient
        // ratio that must come out exactly.
        let expect = 257.0 / 256.0;
        assert!(close(choose_ratio(512, 256, 512, 255), expect, 1e-9));
    }
}
