//! Idealized-equilibrium rates: Lemmas 1–2, Table I, Corollary 1.
//!
//! All quantities assume equilibrium with perfect piece availability and no
//! free-riders. Rates are in the same units as the capacity vector.

use crate::analysis::capacity::CapacityVector;
use crate::metrics::{efficiency_from_rates, fairness_stat};
use crate::MechanismKind;

/// Parameters of the equilibrium model (Table I's `α_BT`, `n_BT`, `α_R`
/// and the seeder rate `u_S`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EquilibriumParams {
    /// BitTorrent's optimistic-unchoke bandwidth fraction `α_BT`.
    pub alpha_bt: f64,
    /// BitTorrent's number of reciprocal unchoke slots `n_BT`.
    pub n_bt: usize,
    /// The reputation algorithm's altruistic fraction `α_R`.
    pub alpha_r: f64,
    /// Total seeder upload rate `u_S` (each user receives `u_S / N`).
    pub seeder_rate: f64,
    /// Epoch length in rounds for the epoch-settled extension.
    pub epoch_rounds: f64,
    /// The contribution horizon in rounds a user's equilibrium behavior
    /// averages over — the characteristic time its settled balances
    /// steer allocations before the next epoch reopens. The open-epoch
    /// fraction `λ = epoch_rounds / (epoch_rounds + epoch_horizon)` is
    /// served altruistically; the settled fraction `1 − λ`
    /// contribution-proportionally.
    pub epoch_horizon: f64,
}

impl Default for EquilibriumParams {
    fn default() -> Self {
        EquilibriumParams {
            alpha_bt: 0.2,
            n_bt: 4,
            alpha_r: 0.1,
            seeder_rate: 0.0,
            epoch_rounds: 16.0,
            epoch_horizon: 16.0,
        }
    }
}

impl EquilibriumParams {
    /// The open-epoch fraction `λ ∈ [0, 1)` of the epoch-settled row:
    /// the share of a user's received bandwidth arriving through the
    /// unsettled (altruistic) channel. `λ → 0` as the epoch shrinks
    /// (everything settles, FairTorrent-shaped) and `λ → 1` as it grows
    /// past the horizon (nothing settles, altruism-shaped).
    pub fn epoch_open_fraction(&self) -> f64 {
        self.epoch_rounds / (self.epoch_rounds + self.epoch_horizon)
    }
}

/// Lemma 2: equilibrium upload rates. Every algorithm saturates `u_i = U_i`
/// except pure reciprocity, whose users can never initiate an exchange and
/// therefore upload nothing.
pub fn upload_rates(kind: MechanismKind, caps: &CapacityVector) -> Vec<f64> {
    match kind {
        MechanismKind::Reciprocity => vec![0.0; caps.len()],
        _ => caps.as_slice().to_vec(),
    }
}

/// Table I: the download *utilization* `d_i − u_S/N` of user `i` (0-based
/// rank in the descending capacity order) in equilibrium with perfect piece
/// availability and no free-riders.
///
/// The BitTorrent row follows the tit-for-tat clustering model of Fan et
/// al. \[10\]: user `i` exchanges with the `n_BT` users in its own
/// capacity-rank window, so its reciprocal download rate is the window
/// average; the remaining `α_BT` share arrives through uniformly random
/// optimistic unchokes.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn download_utilization(
    kind: MechanismKind,
    i: usize,
    caps: &CapacityVector,
    params: &EquilibriumParams,
) -> f64 {
    let u = caps.as_slice();
    let n = u.len();
    assert!(i < n, "user index {i} out of range 0..{n}");
    let altruistic_share = caps.total_excluding(i) / (n as f64 - 1.0);
    match kind {
        MechanismKind::Reciprocity => 0.0,
        MechanismKind::TChain | MechanismKind::FairTorrent => u[i],
        MechanismKind::Altruism => altruistic_share,
        MechanismKind::BitTorrent => {
            // Average capacity over user i's tit-for-tat window of n_BT
            // similarly-ranked users.
            let w = params.n_bt.min(n);
            let start = (i / w) * w;
            let end = (start + w).min(n);
            let window_avg: f64 = u[start..end].iter().sum::<f64>() / (end - start) as f64;
            (1.0 - params.alpha_bt) * window_avg + params.alpha_bt * altruistic_share
        }
        // ConsensusReputation shares the reputation row: in equilibrium
        // every transfer is confirmed by its counterpart, so consensus
        // scores equal claimed upload totals and the allocation law is
        // identical (score-proportional plus the α_R bootstrap share).
        MechanismKind::Reputation | MechanismKind::ConsensusReputation => {
            // d_i − u_S/N = U_i Σ_{j≠i} (1−α_R) U_j / Σ_{k≠j} U_k
            //             + α_R Σ_{k≠i} U_k / (N−1).
            let rep_term: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| (1.0 - params.alpha_r) * u[j] / caps.total_excluding(j))
                .sum();
            u[i] * rep_term + params.alpha_r * altruistic_share
        }
        // Beyond the paper, in Table I's style: the settled share of a
        // user's bandwidth is paid back contribution-proportionally
        // (`u_i`, the T-Chain/FairTorrent row) and the open-epoch share
        // arrives altruistically (the Altruism row). Both rows conserve
        // bandwidth exactly, so any λ-blend does too.
        MechanismKind::EpochSettlement => {
            let lambda = params.epoch_open_fraction();
            (1.0 - lambda) * u[i] + lambda * altruistic_share
        }
    }
}

/// Table I applied to every user: full equilibrium download rates
/// `d_i = utilization + u_S/N`.
pub fn download_rates(
    kind: MechanismKind,
    caps: &CapacityVector,
    params: &EquilibriumParams,
) -> Vec<f64> {
    let seeder_each = params.seeder_rate / caps.len() as f64;
    (0..caps.len())
        .map(|i| download_utilization(kind, i, caps, params) + seeder_each)
        .collect()
}

/// Lemma 1: the efficiency-optimal download allocation — every user
/// downloads at the same rate `d* = (Σ U_i + u_S)/N`. No algorithm in
/// Table I achieves it (Corollary 1).
pub fn optimal_download_rates(caps: &CapacityVector, seeder_rate: f64) -> Vec<f64> {
    let d = (caps.total() + seeder_rate) / caps.len() as f64;
    vec![d; caps.len()]
}

/// A (fairness `F`, efficiency `E`) summary of one algorithm at
/// equilibrium, used to reproduce Fig. 2's ranking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EquilibriumSummary {
    /// The paper's `F` statistic (Eq. 3); 0 is perfectly fair,
    /// infinity when no user uploads (reciprocity).
    pub fairness: f64,
    /// The paper's `E` statistic (Eq. 2, average unit-file download time);
    /// lower is better, infinity when no user finishes.
    pub efficiency: f64,
}

/// Computes the Fig. 2 fairness/efficiency point for one algorithm.
pub fn equilibrium_summary(
    kind: MechanismKind,
    caps: &CapacityVector,
    params: &EquilibriumParams,
) -> EquilibriumSummary {
    let u = upload_rates(kind, caps);
    let d = download_rates(kind, caps, params);
    let pairs: Vec<(f64, f64)> = u.iter().copied().zip(d.iter().copied()).collect();
    let (fairness, skipped) = fairness_stat(&pairs);
    let fairness = if skipped == caps.len() {
        f64::INFINITY
    } else {
        fairness
    };
    EquilibriumSummary {
        fairness,
        efficiency: efficiency_from_rates(&d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> CapacityVector {
        // 12 users across three capacity levels, no dominant user.
        CapacityVector::new(vec![
            8.0, 8.0, 8.0, 8.0, 4.0, 4.0, 4.0, 4.0, 2.0, 2.0, 2.0, 2.0,
        ])
        .unwrap()
    }

    fn params() -> EquilibriumParams {
        EquilibriumParams {
            seeder_rate: 0.0,
            ..EquilibriumParams::default()
        }
    }

    #[test]
    fn lemma2_upload_rates() {
        let c = caps();
        assert!(upload_rates(MechanismKind::Reciprocity, &c)
            .iter()
            .all(|&u| u == 0.0));
        for kind in [
            MechanismKind::TChain,
            MechanismKind::BitTorrent,
            MechanismKind::FairTorrent,
            MechanismKind::Reputation,
            MechanismKind::Altruism,
        ] {
            assert_eq!(upload_rates(kind, &c), c.as_slice().to_vec(), "{kind}");
        }
    }

    #[test]
    fn tchain_fairtorrent_download_equals_capacity() {
        let c = caps();
        let p = params();
        for kind in [MechanismKind::TChain, MechanismKind::FairTorrent] {
            for i in 0..c.len() {
                assert_eq!(
                    download_utilization(kind, i, &c, &p),
                    c.as_slice()[i],
                    "{kind} user {i}"
                );
            }
        }
    }

    #[test]
    fn altruism_download_is_capacity_independent_mean() {
        let c = caps();
        let p = params();
        // Every altruism user gets ~ the mean of everyone else's capacity.
        let d0 = download_utilization(MechanismKind::Altruism, 0, &c, &p);
        let expected = c.total_excluding(0) / (c.len() as f64 - 1.0);
        assert!((d0 - expected).abs() < 1e-12);
    }

    #[test]
    fn conservation_of_bandwidth_per_algorithm() {
        // Σ d_i == Σ u_i (+ seeder) for every algorithm (Eq. 1): total
        // download equals total upload.
        let c = caps();
        let p = params();
        for kind in MechanismKind::ALL {
            let d: f64 = download_rates(kind, &c, &p).iter().sum();
            let u: f64 = upload_rates(kind, &c).iter().sum();
            // Altruism/T-Chain/FairTorrent conserve exactly; BitTorrent's
            // window model and reputation's Σ_{j≠i} approximation are
            // conservative to within a few percent (the paper itself uses
            // "≈" for the reputation row).
            if matches!(
                kind,
                MechanismKind::Reciprocity
                    | MechanismKind::TChain
                    | MechanismKind::FairTorrent
                    | MechanismKind::Altruism
                    | MechanismKind::BitTorrent
            ) {
                assert!(
                    (d - u).abs() < 1e-9,
                    "{kind}: Σd = {d}, Σu = {u}"
                );
            } else {
                assert!((d - u).abs() / u < 0.05, "{kind}: Σd = {d}, Σu = {u}");
            }
        }
    }

    #[test]
    fn corollary1_tchain_fairtorrent_perfectly_fair() {
        let c = caps();
        let p = params();
        for kind in [MechanismKind::TChain, MechanismKind::FairTorrent] {
            let s = equilibrium_summary(kind, &c, &p);
            assert_eq!(s.fairness, 0.0, "{kind}");
        }
        for kind in [
            MechanismKind::BitTorrent,
            MechanismKind::Reputation,
            MechanismKind::Altruism,
        ] {
            let s = equilibrium_summary(kind, &c, &p);
            assert!(s.fairness > 0.0, "{kind} should be imperfectly fair");
        }
    }

    #[test]
    fn corollary1_efficiency_ordering() {
        // Altruism most efficient; BitTorrent and reputation more efficient
        // than T-Chain/FairTorrent; nothing beats the Lemma 1 optimum.
        let c = caps();
        let p = params();
        let e = |kind| equilibrium_summary(kind, &c, &p).efficiency;
        let e_opt = efficiency_from_rates(&optimal_download_rates(&c, 0.0));
        let e_alt = e(MechanismKind::Altruism);
        let e_bt = e(MechanismKind::BitTorrent);
        let e_rep = e(MechanismKind::Reputation);
        let e_tc = e(MechanismKind::TChain);
        let e_ft = e(MechanismKind::FairTorrent);
        assert!(e_opt < e_alt, "optimum beats altruism: {e_opt} < {e_alt}");
        assert!(e_alt < e_bt, "altruism beats BitTorrent");
        assert!(e_alt < e_rep, "altruism beats reputation");
        assert!(e_bt < e_tc, "BitTorrent beats T-Chain in the ideal case");
        assert!(e_rep < e_tc, "reputation beats T-Chain in the ideal case");
        assert_eq!(e_tc, e_ft, "T-Chain and FairTorrent tie");
        assert!(e(MechanismKind::Reciprocity).is_infinite());
    }

    #[test]
    fn reciprocity_fairness_undefined() {
        let s = equilibrium_summary(MechanismKind::Reciprocity, &caps(), &params());
        assert!(s.fairness.is_infinite());
        assert!(s.efficiency.is_infinite());
    }

    #[test]
    fn seeder_rate_lifts_all_download_rates() {
        let c = caps();
        let mut p = params();
        let before = download_rates(MechanismKind::Altruism, &c, &p);
        p.seeder_rate = 12.0;
        let after = download_rates(MechanismKind::Altruism, &c, &p);
        for (b, a) in before.iter().zip(&after) {
            assert!((a - b - 1.0).abs() < 1e-12); // u_S/N = 12/12 = 1
        }
    }

    #[test]
    fn lemma1_optimum_is_equal_split() {
        let c = caps();
        let opt = optimal_download_rates(&c, 12.0);
        let expected = (c.total() + 12.0) / c.len() as f64;
        assert!(opt.iter().all(|&d| (d - expected).abs() < 1e-12));
        // And it is the unique minimizer of E over allocations with the
        // same total: any perturbation increases E.
        let e_opt = efficiency_from_rates(&opt);
        let mut perturbed = opt.clone();
        perturbed[0] += 0.5;
        perturbed[1] -= 0.5;
        assert!(efficiency_from_rates(&perturbed) > e_opt);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn download_utilization_bounds_checked() {
        download_utilization(MechanismKind::Altruism, 99, &caps(), &params());
    }

    #[test]
    fn epoch_settlement_conserves_bandwidth_exactly() {
        let c = caps();
        let p = params();
        let d: f64 = download_rates(MechanismKind::EpochSettlement, &c, &p)
            .iter()
            .sum();
        let u: f64 = upload_rates(MechanismKind::EpochSettlement, &c).iter().sum();
        assert!((d - u).abs() < 1e-9, "Σd = {d}, Σu = {u}");
    }

    #[test]
    fn epoch_settlement_limits_recover_fairtorrent_and_altruism() {
        let c = caps();
        let mut p = params();
        for i in 0..c.len() {
            // epoch → 0: every contribution settles immediately, the
            // FairTorrent/T-Chain row.
            p.epoch_rounds = 0.0;
            assert_eq!(
                download_utilization(MechanismKind::EpochSettlement, i, &c, &p),
                download_utilization(MechanismKind::FairTorrent, i, &c, &p),
                "user {i}"
            );
            // epoch → ∞: nothing ever settles, the Altruism row.
            p.epoch_rounds = 1e15;
            let d = download_utilization(MechanismKind::EpochSettlement, i, &c, &p);
            let alt = download_utilization(MechanismKind::Altruism, i, &c, &p);
            assert!((d - alt).abs() < 1e-9 * alt.max(1.0), "user {i}: {d} vs {alt}");
        }
    }

    #[test]
    fn epoch_settlement_interpolates_between_the_extremes() {
        let c = caps();
        let p = params(); // default λ = 0.5
        // The strongest user downloads less than under FairTorrent (some
        // of its earned bandwidth leaks altruistically), the weakest
        // downloads more.
        let ft = |i| download_utilization(MechanismKind::FairTorrent, i, &c, &p);
        let alt = |i| download_utilization(MechanismKind::Altruism, i, &c, &p);
        let ep = |i| download_utilization(MechanismKind::EpochSettlement, i, &c, &p);
        assert!(ep(0) < ft(0) && ep(0) > alt(0));
        let last = c.len() - 1;
        assert!(ep(last) > ft(last) && ep(last) < alt(last));
    }
}
