//! Upload-capacity vectors and the paper's capacity assumptions.
//!
//! Section IV assumes `N` users with upload capacities
//! `U_1 ≥ U_2 ≥ … ≥ U_N` and `U_i ≤ Σ_{j≠i} U_j` for every `i` (no single
//! user owns a disproportionate share of total capacity). [`CapacityVector`]
//! enforces the ordering on construction and can check the
//! no-dominant-user condition; [`CapacityClassMix`] samples heterogeneous
//! capacities from a BitTorrent-measurement-style class mix.

use rand::Rng;
use rand::RngCore;

/// A sorted (descending) vector of per-user upload capacities.
///
/// # Example
///
/// ```
/// use coop_incentives::analysis::capacity::CapacityVector;
/// let caps = CapacityVector::new(vec![1.0, 3.0, 2.0]).unwrap();
/// assert_eq!(caps.as_slice(), &[3.0, 2.0, 1.0]);
/// assert!(caps.no_dominant_user());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CapacityVector {
    caps: Vec<f64>,
    total: f64,
}

impl CapacityVector {
    /// Creates a capacity vector, sorting descending.
    ///
    /// # Errors
    ///
    /// Returns an error if the vector is empty or any capacity is
    /// non-positive or non-finite.
    pub fn new(mut caps: Vec<f64>) -> Result<Self, String> {
        if caps.is_empty() {
            return Err("capacity vector must be nonempty".to_string());
        }
        for &c in &caps {
            if !c.is_finite() || c <= 0.0 {
                return Err(format!("capacities must be positive and finite, got {c}"));
            }
        }
        caps.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let total = caps.iter().sum();
        Ok(CapacityVector { caps, total })
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// Returns true if the vector is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// The capacities, sorted descending (`U_1` first).
    pub fn as_slice(&self) -> &[f64] {
        &self.caps
    }

    /// `Σ U_i`.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// `Σ_{j≠i} U_j`.
    pub fn total_excluding(&self, i: usize) -> f64 {
        self.total - self.caps[i]
    }

    /// The paper's no-dominant-user assumption:
    /// `U_i ≤ Σ_{j≠i} U_j` for all `i`. With a descending sort it suffices
    /// to check `i = 0`.
    pub fn no_dominant_user(&self) -> bool {
        self.caps.len() >= 2 && self.caps[0] <= self.total - self.caps[0]
    }

    /// Mean capacity `Σ U_i / N`.
    pub fn mean(&self) -> f64 {
        self.total / self.caps.len() as f64
    }
}

/// One class of users in a heterogeneous capacity mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapacityClass {
    /// Fraction of the population in this class (the fractions of all
    /// classes must sum to 1).
    pub fraction: f64,
    /// Upload capacity of this class in bytes per second.
    pub upload_bps: f64,
}

/// A heterogeneous capacity distribution described as a small set of
/// classes, in the style of BitTorrent measurement studies.
///
/// # Example
///
/// ```
/// use coop_incentives::analysis::capacity::CapacityClassMix;
/// use rand::SeedableRng;
///
/// let mix = CapacityClassMix::paper_default();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let caps = mix.sample(1000, &mut rng);
/// assert_eq!(caps.len(), 1000);
/// assert!(caps.no_dominant_user());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CapacityClassMix {
    classes: Vec<CapacityClass>,
}

impl CapacityClassMix {
    /// Creates a mix from classes.
    ///
    /// # Errors
    ///
    /// Returns an error if the class fractions do not sum to 1 (±1e-9), any
    /// fraction is negative, or any capacity is non-positive.
    pub fn new(classes: Vec<CapacityClass>) -> Result<Self, String> {
        if classes.is_empty() {
            return Err("class mix must be nonempty".to_string());
        }
        let total: f64 = classes.iter().map(|c| c.fraction).sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(format!("class fractions must sum to 1, got {total}"));
        }
        for c in &classes {
            if c.fraction < 0.0 {
                return Err("class fractions must be nonnegative".to_string());
            }
            if c.upload_bps <= 0.0 {
                return Err("class capacities must be positive".to_string());
            }
        }
        Ok(CapacityClassMix { classes })
    }

    /// The five-class mix used by the experiment harness: a spread of
    /// residential-style upload capacities (in bytes/second) whose shape
    /// follows published BitTorrent leecher measurements. The paper does
    /// not publish its capacity distribution; DESIGN.md documents this
    /// substitution.
    pub fn paper_default() -> Self {
        CapacityClassMix::new(vec![
            CapacityClass {
                fraction: 0.1,
                upload_bps: 16_000.0,
            },
            CapacityClass {
                fraction: 0.3,
                upload_bps: 32_000.0,
            },
            CapacityClass {
                fraction: 0.3,
                upload_bps: 64_000.0,
            },
            CapacityClass {
                fraction: 0.2,
                upload_bps: 128_000.0,
            },
            CapacityClass {
                fraction: 0.1,
                upload_bps: 256_000.0,
            },
        ])
        .expect("default mix is valid")
    }

    /// The classes.
    pub fn classes(&self) -> &[CapacityClass] {
        &self.classes
    }

    /// Samples the capacity of a single user.
    pub fn sample_one(&self, rng: &mut dyn RngCore) -> f64 {
        let mut x: f64 = rng.gen_range(0.0..1.0);
        for c in &self.classes {
            if x < c.fraction {
                return c.upload_bps;
            }
            x -= c.fraction;
        }
        self.classes.last().expect("nonempty").upload_bps
    }

    /// Samples `n` users and returns their capacities as a sorted
    /// [`CapacityVector`].
    pub fn sample(&self, n: usize, rng: &mut dyn RngCore) -> CapacityVector {
        assert!(n > 0, "cannot sample an empty population");
        let caps = (0..n).map(|_| self.sample_one(rng)).collect();
        CapacityVector::new(caps).expect("sampled capacities are positive")
    }

    /// The population-mean upload capacity.
    pub fn mean(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.fraction * c.upload_bps)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn vector_sorts_descending() {
        let v = CapacityVector::new(vec![2.0, 5.0, 1.0]).unwrap();
        assert_eq!(v.as_slice(), &[5.0, 2.0, 1.0]);
        assert_eq!(v.total(), 8.0);
        assert_eq!(v.total_excluding(0), 3.0);
        assert!((v.mean() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn vector_rejects_bad_input() {
        assert!(CapacityVector::new(vec![]).is_err());
        assert!(CapacityVector::new(vec![0.0]).is_err());
        assert!(CapacityVector::new(vec![-1.0]).is_err());
        assert!(CapacityVector::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn dominant_user_detection() {
        let ok = CapacityVector::new(vec![3.0, 2.0, 2.0]).unwrap();
        assert!(ok.no_dominant_user());
        let dominant = CapacityVector::new(vec![10.0, 1.0, 1.0]).unwrap();
        assert!(!dominant.no_dominant_user());
        let single = CapacityVector::new(vec![1.0]).unwrap();
        assert!(!single.no_dominant_user());
    }

    #[test]
    fn mix_validates_fractions() {
        assert!(CapacityClassMix::new(vec![CapacityClass {
            fraction: 0.5,
            upload_bps: 1.0
        }])
        .is_err());
        assert!(CapacityClassMix::new(vec![]).is_err());
    }

    #[test]
    fn default_mix_mean_matches_classes() {
        let mix = CapacityClassMix::paper_default();
        let expected = 0.1 * 16_000.0
            + 0.3 * 32_000.0
            + 0.3 * 64_000.0
            + 0.2 * 128_000.0
            + 0.1 * 256_000.0;
        assert!((mix.mean() - expected).abs() < 1e-6);
    }

    #[test]
    fn sampling_matches_class_proportions() {
        let mix = CapacityClassMix::paper_default();
        let mut rng = SmallRng::seed_from_u64(123);
        let caps = mix.sample(20_000, &mut rng);
        let frac_top = caps
            .as_slice()
            .iter()
            .filter(|&&c| c == 256_000.0)
            .count() as f64
            / 20_000.0;
        assert!((frac_top - 0.1).abs() < 0.01, "frac_top = {frac_top}");
        let empirical_mean = caps.mean();
        assert!((empirical_mean - mix.mean()).abs() / mix.mean() < 0.02);
    }

    #[test]
    fn sampled_vector_satisfies_paper_assumption() {
        let mix = CapacityClassMix::paper_default();
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(mix.sample(100, &mut rng).no_dominant_user());
    }
}
