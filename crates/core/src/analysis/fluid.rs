//! A Qiu–Srikant-style fluid model of swarm evolution.
//!
//! The paper's piece-availability model is "inspired by the quantification
//! of file sharing effectiveness in \[27\]" (footnote 3) — Qiu & Srikant's
//! fluid model of BitTorrent-like networks. This module closes the loop:
//! the *effectiveness* parameter `η` of that model is exactly the expected
//! piece-exchange probability of Proposition 2, so each of the six
//! algorithms induces its own fluid dynamics.
//!
//! State: `x(t)` downloaders (leechers), `y(t)` seeds. Dynamics:
//!
//! ```text
//! dx/dt = λ − θ·x − min(c·x, μ·(η·x + y))
//! dy/dt =          min(c·x, μ·(η·x + y)) − γ·y
//! ```
//!
//! with `λ` the arrival rate, `μ` per-peer upload capacity (files/second),
//! `c` per-peer download capacity, `θ` the abort rate and `γ` the seed
//! departure rate. Little's law then gives the steady-state mean download
//! time `T = x̄ / (λ − θ·x̄)`.

use crate::analysis::exchange::{expected_exchange_probability, PieceCountDistribution};
use crate::MechanismKind;

/// Parameters of the fluid model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidParams {
    /// Leecher arrival rate (peers/second). Zero models a pure flash
    /// crowd given through the initial condition.
    pub lambda: f64,
    /// Per-peer upload capacity in files/second (e.g. capacity / file
    /// size).
    pub mu: f64,
    /// Per-peer download capacity in files/second.
    pub c: f64,
    /// File-sharing effectiveness `η ∈ [0, 1]` — the probability that a
    /// leecher's capacity can actually be used, i.e. the expected
    /// piece-exchange probability of the mechanism.
    pub eta: f64,
    /// Leecher abort rate (1/second).
    pub theta: f64,
    /// Seed departure rate (1/second). The paper's experiments have seeds
    /// leave immediately (large `γ`), keeping one persistent seeder via
    /// `y0`.
    pub gamma: f64,
}

impl FluidParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("lambda", self.lambda),
            ("mu", self.mu),
            ("theta", self.theta),
            ("gamma", self.gamma),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and nonnegative, got {v}"));
            }
        }
        // Download capacity may be infinite (unconstrained, as in the
        // paper's bandwidth model).
        if self.c.is_nan() || self.c < 0.0 {
            return Err(format!("c must be nonnegative, got {}", self.c));
        }
        if !(0.0..=1.0).contains(&self.eta) {
            return Err(format!("eta must be in [0,1], got {}", self.eta));
        }
        if self.mu == 0.0 && self.c == 0.0 {
            return Err("mu and c cannot both be zero".to_string());
        }
        Ok(())
    }
}

/// One trajectory sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidState {
    /// Time in seconds.
    pub t: f64,
    /// Leecher population.
    pub x: f64,
    /// Seed population (including any persistent seeder mass).
    pub y: f64,
}

/// The fluid model with initial conditions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidModel {
    /// Dynamics parameters.
    pub params: FluidParams,
    /// Initial leecher population (`N` for a flash crowd).
    pub x0: f64,
    /// Initial seed population (the persistent seeder's capacity in
    /// peer-equivalents).
    pub y0: f64,
}

impl FluidModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid or the initial conditions are
    /// negative.
    pub fn new(params: FluidParams, x0: f64, y0: f64) -> Self {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid fluid parameters: {e}"));
        assert!(x0 >= 0.0 && y0 >= 0.0, "initial populations must be ≥ 0");
        FluidModel { params, x0, y0 }
    }

    /// The instantaneous download completion flux at state `(x, y)`:
    /// `min(c·x, μ·(η·x + y))` files/second.
    pub fn completion_flux(&self, x: f64, y: f64) -> f64 {
        let p = &self.params;
        (p.c * x).min(p.mu * (p.eta * x + y))
    }

    /// Integrates the dynamics with forward Euler at step `dt`, sampling
    /// every step, until `t_end`. Populations are clamped at zero.
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `t_end` is nonpositive.
    pub fn integrate(&self, t_end: f64, dt: f64) -> Vec<FluidState> {
        assert!(dt > 0.0 && t_end > 0.0, "dt and t_end must be positive");
        let p = self.params;
        let mut x = self.x0;
        let mut y = self.y0;
        let mut t = 0.0;
        let mut out = vec![FluidState { t, x, y }];
        while t < t_end {
            let flux = self.completion_flux(x, y);
            let dx = p.lambda - p.theta * x - flux;
            let dy = flux - p.gamma * (y - self.y0).max(0.0);
            // The persistent seeder mass y0 never departs; only surplus
            // seeds (completed leechers that linger) decay at rate γ.
            x = (x + dx * dt).max(0.0);
            y = (y + dy * dt).max(self.y0.min(y + dy * dt).max(0.0)).max(0.0);
            if y < self.y0 {
                y = self.y0;
            }
            t += dt;
            out.push(FluidState { t, x, y });
        }
        out
    }

    /// Integrates until the state stops changing (steady state) or
    /// `max_t` is reached; returns the final state.
    pub fn steady_state(&self, max_t: f64, dt: f64) -> FluidState {
        let traj = self.integrate(max_t, dt);
        *traj.last().expect("trajectory nonempty")
    }

    /// Steady-state mean download time via Little's law,
    /// `T = x̄ / throughput` (throughput = completion flux at steady
    /// state). Returns infinity when nothing completes.
    pub fn mean_download_time(&self, max_t: f64, dt: f64) -> f64 {
        let s = self.steady_state(max_t, dt);
        let flux = self.completion_flux(s.x, s.y);
        if flux <= 0.0 {
            f64::INFINITY
        } else {
            s.x / flux
        }
    }

    /// Time for a flash crowd (`x0` leechers, `λ = 0`) to drain below
    /// `fraction` of its initial size, or `None` within `max_t`.
    pub fn drain_time(&self, fraction: f64, max_t: f64, dt: f64) -> Option<f64> {
        let threshold = self.x0 * fraction.clamp(0.0, 1.0);
        self.integrate(max_t, dt)
            .iter()
            .find(|s| s.x <= threshold)
            .map(|s| s.t)
    }
}

/// Maps a mechanism to its fluid-model effectiveness `η`: the expected
/// piece-exchange probability of Proposition 2 under the given piece-count
/// distribution and swarm size (reciprocity gets exactly 0 — no exchange
/// can be initiated).
pub fn effectiveness(
    kind: MechanismKind,
    dist: &PieceCountDistribution,
    n: usize,
    alpha_bt: f64,
) -> f64 {
    expected_exchange_probability(kind, dist, n, alpha_bt)
}

/// Builds the flash-crowd fluid model the paper's experiments correspond
/// to: `n` leechers at `t = 0`, no further arrivals, one persistent seeder
/// of `seeder_peer_equivalents` upload mass, completed peers leaving
/// immediately (large `γ`).
pub fn flash_crowd_model(
    kind: MechanismKind,
    n: usize,
    dist: &PieceCountDistribution,
    mu_files_per_sec: f64,
    seeder_peer_equivalents: f64,
) -> FluidModel {
    let eta = effectiveness(kind, dist, n, 0.2);
    FluidModel::new(
        FluidParams {
            lambda: 0.0,
            mu: mu_files_per_sec,
            c: f64::INFINITY,
            eta,
            theta: 0.0,
            gamma: 10.0, // completed peers leave almost immediately
        },
        n as f64,
        seeder_peer_equivalents,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(eta: f64) -> FluidParams {
        FluidParams {
            lambda: 1.0,
            mu: 0.01,
            c: 0.05,
            eta,
            theta: 0.0,
            gamma: 1.0,
        }
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut p = params(0.5);
        p.eta = 1.5;
        assert!(p.validate().is_err());
        p = params(0.5);
        p.lambda = -1.0;
        assert!(p.validate().is_err());
        p = params(0.5);
        p.mu = 0.0;
        p.c = 0.0;
        assert!(p.validate().is_err());
        assert!(params(0.5).validate().is_ok());
    }

    #[test]
    fn populations_stay_nonnegative() {
        let m = FluidModel::new(params(1.0), 100.0, 1.0);
        for s in m.integrate(500.0, 0.1) {
            assert!(s.x >= 0.0);
            assert!(s.y >= 0.0);
        }
    }

    #[test]
    fn higher_effectiveness_means_faster_downloads() {
        let slow = FluidModel::new(params(0.2), 0.0, 1.0).mean_download_time(5000.0, 0.1);
        let fast = FluidModel::new(params(0.9), 0.0, 1.0).mean_download_time(5000.0, 0.1);
        assert!(
            fast < slow,
            "η = 0.9 should beat η = 0.2: {fast} vs {slow}"
        );
    }

    #[test]
    fn zero_effectiveness_is_seeder_limited() {
        // η = 0 (reciprocity): only the persistent seeder serves, so the
        // steady-state leecher population balloons with arrivals.
        let m0 = FluidModel::new(params(0.0), 0.0, 1.0);
        let m1 = FluidModel::new(params(0.8), 0.0, 1.0);
        let x0 = m0.steady_state(2000.0, 0.1).x;
        let x1 = m1.steady_state(2000.0, 0.1).x;
        assert!(
            x0 > 5.0 * x1,
            "without peer exchange the queue explodes: {x0} vs {x1}"
        );
    }

    #[test]
    fn flash_crowd_drains_monotonically() {
        let dist = PieceCountDistribution::uniform(64);
        let m = flash_crowd_model(MechanismKind::Altruism, 200, &dist, 0.01, 2.0);
        let traj = m.integrate(2000.0, 0.5);
        for w in traj.windows(2) {
            assert!(w[1].x <= w[0].x + 1e-9, "no arrivals, x must not grow");
        }
        assert!(
            traj.last().unwrap().x < 1.0,
            "the crowd eventually finishes"
        );
    }

    #[test]
    fn fluid_ordering_matches_corollary2() {
        // Drain times should order by effectiveness: altruism ≤ T-Chain ≤
        // BitTorrent ≤ reciprocity (which never drains).
        let dist = PieceCountDistribution::uniform(64);
        let drain = |kind| {
            flash_crowd_model(kind, 500, &dist, 0.01, 2.0)
                .drain_time(0.05, 20_000.0, 0.5)
                .unwrap_or(f64::INFINITY)
        };
        let alt = drain(MechanismKind::Altruism);
        let tc = drain(MechanismKind::TChain);
        let bt = drain(MechanismKind::BitTorrent);
        let rec = drain(MechanismKind::Reciprocity);
        assert!(alt <= tc + 1e-9, "altruism ≤ T-Chain ({alt} vs {tc})");
        assert!(tc <= bt + 1e-9, "T-Chain ≤ BitTorrent ({tc} vs {bt})");
        assert!(rec.is_infinite(), "reciprocity never drains via peers");
    }

    #[test]
    fn seeder_mass_never_departs() {
        let m = FluidModel::new(
            FluidParams {
                lambda: 0.0,
                mu: 0.01,
                c: 1.0,
                eta: 0.5,
                theta: 0.0,
                gamma: 10.0,
            },
            50.0,
            3.0,
        );
        for s in m.integrate(1000.0, 0.1) {
            assert!(s.y >= 3.0 - 1e-9, "persistent seeder mass preserved");
        }
    }

    #[test]
    fn little_law_consistency() {
        // With arrivals λ and steady state, throughput ≈ λ (conservation),
        // so T ≈ x̄/λ.
        let m = FluidModel::new(params(0.8), 0.0, 1.0);
        let s = m.steady_state(5000.0, 0.05);
        let flux = m.completion_flux(s.x, s.y);
        assert!(
            (flux - m.params.lambda).abs() < 0.05 * m.params.lambda,
            "steady-state throughput ≈ arrival rate: {flux}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid fluid parameters")]
    fn constructor_panics_on_bad_params() {
        let mut p = params(0.5);
        p.eta = -1.0;
        FluidModel::new(p, 0.0, 1.0);
    }
}
