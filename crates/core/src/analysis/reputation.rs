//! Proposition 3: fairness and efficiency of the reputation algorithm when
//! reputations decouple from capacities (Section IV-A2).
//!
//! With reputations `r_i` and every user allocating upload proportionally
//! to reputations, user `j`'s download rate is `d_j = r_j Σ_k U_k / Σ_k
//! r_k` — independent of `U_j`. A user with low reputation but moderate
//! capacity therefore drags both fairness and efficiency down, which is the
//! paper's explanation of the reputation algorithm's poor empirical
//! showing (Fig. 4b).

use crate::metrics::{efficiency_from_rates, fairness_stat};

/// Per-user download rates under reputation-proportional allocation:
/// `d_j = r_j · Σ U / Σ r` (the proof of Proposition 3).
///
/// # Panics
///
/// Panics if the slices have different lengths, are empty, or all
/// reputations are zero.
pub fn reputation_download_rates(reputations: &[f64], capacities: &[f64]) -> Vec<f64> {
    assert_eq!(
        reputations.len(),
        capacities.len(),
        "reputation and capacity vectors must have equal length"
    );
    assert!(!reputations.is_empty(), "need at least one user");
    let total_r: f64 = reputations.iter().sum();
    assert!(total_r > 0.0, "at least one user must have reputation");
    let total_u: f64 = capacities.iter().sum();
    reputations
        .iter()
        .map(|&r| r * total_u / total_r)
        .collect()
}

/// Proposition 3's fairness statistic: `F = (1/N) Σ |log(d_i/U_i)|` with
/// the reputation-driven download rates.
pub fn prop3_fairness(reputations: &[f64], capacities: &[f64]) -> f64 {
    let d = reputation_download_rates(reputations, capacities);
    let pairs: Vec<(f64, f64)> = capacities.iter().copied().zip(d).collect();
    fairness_stat(&pairs).0
}

/// Proposition 3's efficiency: `E = Σ_i 1/(N·d_i)` with the
/// reputation-driven download rates (for a unit-size file; equals
/// `Σ_i Σr/(N · r_i · ΣU)`).
pub fn prop3_efficiency(reputations: &[f64], capacities: &[f64]) -> f64 {
    efficiency_from_rates(&reputation_download_rates(reputations, capacities))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_proportional_to_reputation() {
        let d = reputation_download_rates(&[1.0, 3.0], &[10.0, 10.0]);
        assert!((d[0] - 5.0).abs() < 1e-12); // 1/4 of ΣU = 20
        assert!((d[1] - 15.0).abs() < 1e-12);
        // Conservation: Σd = ΣU.
        assert!((d.iter().sum::<f64>() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn aligned_reputations_are_fair() {
        // r_i ∝ U_i ⇒ d_i = U_i ⇒ F = 0.
        let caps = [8.0, 4.0, 2.0];
        let reps = [16.0, 8.0, 4.0];
        let f = prop3_fairness(&reps, &caps);
        assert!(f.abs() < 1e-12, "aligned reputations must be fair, F = {f}");
    }

    #[test]
    fn misaligned_reputations_hurt_fairness_and_efficiency() {
        let caps = [8.0, 4.0, 2.0];
        let aligned = [8.0, 4.0, 2.0];
        // One moderate-capacity user stuck with a tiny reputation (the
        // paper's motivating case).
        let skewed = [8.0, 0.1, 2.0];
        assert!(prop3_fairness(&skewed, &caps) > prop3_fairness(&aligned, &caps));
        assert!(prop3_efficiency(&skewed, &caps) > prop3_efficiency(&aligned, &caps));
    }

    #[test]
    fn efficiency_matches_paper_closed_form() {
        // E = Σ_i Σr / (N r_i ΣU) for a unit file.
        let caps = [5.0, 5.0];
        let reps = [2.0, 8.0];
        let e = prop3_efficiency(&reps, &caps);
        let total_r: f64 = reps.iter().sum();
        let total_u: f64 = caps.iter().sum();
        let expected: f64 = reps
            .iter()
            .map(|&r| total_r / (2.0 * r * total_u))
            .sum();
        assert!((e - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_reputation_user_never_finishes() {
        let e = prop3_efficiency(&[1.0, 0.0], &[5.0, 5.0]);
        assert!(e.is_infinite());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        reputation_download_rates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "reputation")]
    fn all_zero_reputations_panic() {
        reputation_download_rates(&[0.0, 0.0], &[1.0, 1.0]);
    }
}
