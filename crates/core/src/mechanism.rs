//! The common allocation interface implemented by all six algorithms.

use rand::RngCore;

use crate::view::SwarmView;
use crate::{MechanismKind, PeerId};

/// Why an upload grant was made — used by the simulator's accounting and by
/// the experiments to attribute bandwidth to mechanism components.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GrantReason {
    /// Pure direct reciprocity against outstanding credit.
    Reciprocity,
    /// T-Chain indirect reciprocity (reciprocating a received piece to a
    /// third peer, or opportunistically initiating a chain).
    IndirectReciprocity,
    /// Fulfilling a T-Chain obligation (forwarding to unlock a piece).
    Obligation,
    /// BitTorrent tit-for-tat toward a top contributor.
    TitForTat,
    /// BitTorrent optimistic unchoke / altruistic share.
    OptimisticUnchoke,
    /// Pure altruism to a random interested peer.
    Altruism,
    /// Reputation-weighted upload.
    Reputation,
    /// FairTorrent lowest-deficit upload.
    Deficit,
    /// Seeder upload.
    Seeding,
}

impl GrantReason {
    /// All reasons, for iteration/accounting.
    pub const ALL: [GrantReason; 9] = [
        GrantReason::Reciprocity,
        GrantReason::IndirectReciprocity,
        GrantReason::Obligation,
        GrantReason::TitForTat,
        GrantReason::OptimisticUnchoke,
        GrantReason::Altruism,
        GrantReason::Reputation,
        GrantReason::Deficit,
        GrantReason::Seeding,
    ];

    /// Dense index of this reason within [`GrantReason::ALL`].
    pub fn index(self) -> usize {
        GrantReason::ALL
            .iter()
            .position(|&r| r == self)
            .expect("reason listed in ALL")
    }

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            GrantReason::Reciprocity => "reciprocity",
            GrantReason::IndirectReciprocity => "indirect-reciprocity",
            GrantReason::Obligation => "obligation",
            GrantReason::TitForTat => "tit-for-tat",
            GrantReason::OptimisticUnchoke => "optimistic-unchoke",
            GrantReason::Altruism => "altruism",
            GrantReason::Reputation => "reputation",
            GrantReason::Deficit => "deficit",
            GrantReason::Seeding => "seeding",
        }
    }
}

/// Requires the receiver of a conditional (encrypted) upload to reciprocate
/// before the piece is usable — T-Chain's enforcement device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReciprocationCondition {
    /// The peer the receiver must upload a piece to. Equal to the uploader
    /// for direct reciprocity; a third peer for indirect reciprocity.
    pub reciprocate_to: PeerId,
}

/// One upload decision: send `bytes` toward `to`.
///
/// Grants are byte-granular; the simulator accumulates them into piece
/// transfers, so capacities below one piece per round still make progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// Receiving peer.
    pub to: PeerId,
    /// Bytes of upload bandwidth committed.
    pub bytes: u64,
    /// Mechanism component responsible for this grant.
    pub reason: GrantReason,
    /// If set, the transferred piece is delivered encrypted and locked
    /// until the receiver reciprocates (T-Chain).
    pub condition: Option<ReciprocationCondition>,
}

impl Grant {
    /// An unconditional grant.
    pub fn new(to: PeerId, bytes: u64, reason: GrantReason) -> Self {
        Grant {
            to,
            bytes,
            reason,
            condition: None,
        }
    }

    /// A conditional (encrypted) grant requiring reciprocation to
    /// `reciprocate_to`.
    pub fn conditional(to: PeerId, bytes: u64, reason: GrantReason, reciprocate_to: PeerId) -> Self {
        Grant {
            to,
            bytes,
            reason,
            condition: Some(ReciprocationCondition { reciprocate_to }),
        }
    }
}

/// Tunable parameters shared by the mechanism implementations, with the
/// defaults used by the paper's experiments (Section V-A).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MechanismParams {
    /// Fraction of BitTorrent bandwidth used for optimistic unchoking
    /// (the paper simulates 20%).
    pub alpha_bt: f64,
    /// Number of simultaneous tit-for-tat unchoke slots (`n_BT`, 4 in the
    /// paper's Table II example).
    pub n_bt: usize,
    /// Fraction of reputation-algorithm bandwidth reserved for altruistic
    /// bootstrapping (`α_R`).
    pub alpha_r: f64,
    /// Rounds before an unfulfilled T-Chain obligation expires and the
    /// locked piece is discarded.
    pub tchain_obligation_ttl: u64,
    /// Maximum pending reciprocation backlog (obligations plus conditional
    /// in-flight pieces) a T-Chain receiver may hold; uploaders do not
    /// initiate chains beyond it. Low enough that a slow peer can clear
    /// its backlog within the obligation TTL.
    pub tchain_max_backlog: usize,
    /// Rounds per settlement epoch for [`MechanismKind::EpochSettlement`]:
    /// accrued contributions pay out every this many rounds. Shorter
    /// epochs approach FairTorrent-like fairness; longer ones approach
    /// altruism-like exploitability.
    pub epoch_rounds: u64,
    /// Consensus quorum for [`MechanismKind::ConsensusReputation`]: the
    /// number of matching counterpart reports that corroborate an
    /// uploader's claims in a dispute. Small quorums attribute disputes to
    /// the deviating receiver; oversized quorums starve honest uploaders
    /// of corroboration and mis-strike them instead (friendly fire).
    pub consensus_quorum: usize,
    /// Strike count at which [`MechanismKind::ConsensusReputation`] bans a
    /// peer: the first crossing triggers a temporary ban, a repeat
    /// crossing after the temporary ban a permanent one.
    pub consensus_ban_threshold: u32,
    /// Per-round multiplicative decay applied to consensus strikes *and*
    /// scores before the round's reports are aggregated, in `[0, 1]`.
    /// Near 1 strikes stick and bans fire; low values let strikes
    /// evaporate faster than attackers accrue them.
    pub consensus_decay: f64,
    /// Length of a temporary consensus ban in rounds.
    pub consensus_temp_ban_rounds: u64,
}

impl Default for MechanismParams {
    fn default() -> Self {
        MechanismParams {
            alpha_bt: 0.2,
            n_bt: 4,
            alpha_r: 0.1,
            tchain_obligation_ttl: 16,
            tchain_max_backlog: 4,
            epoch_rounds: 16,
            consensus_quorum: 2,
            consensus_ban_threshold: 4,
            consensus_decay: 0.9,
            consensus_temp_ban_rounds: 16,
        }
    }
}

impl MechanismParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: fractions must be
    /// within `[0, 1]`, `n_bt` and the obligation TTL must be positive.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.alpha_bt) {
            return Err(format!("alpha_bt must be in [0,1], got {}", self.alpha_bt));
        }
        if !(0.0..=1.0).contains(&self.alpha_r) {
            return Err(format!("alpha_r must be in [0,1], got {}", self.alpha_r));
        }
        if self.n_bt == 0 {
            return Err("n_bt must be positive".to_string());
        }
        if self.tchain_obligation_ttl == 0 {
            return Err("tchain_obligation_ttl must be positive".to_string());
        }
        if self.tchain_max_backlog == 0 {
            return Err("tchain_max_backlog must be positive".to_string());
        }
        if self.epoch_rounds == 0 {
            return Err("epoch_rounds must be positive".to_string());
        }
        if self.consensus_quorum == 0 {
            return Err("consensus_quorum must be positive".to_string());
        }
        if self.consensus_ban_threshold == 0 {
            return Err("consensus_ban_threshold must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.consensus_decay) {
            return Err(format!(
                "consensus_decay must be in [0,1], got {}",
                self.consensus_decay
            ));
        }
        if self.consensus_temp_ban_rounds == 0 {
            return Err("consensus_temp_ban_rounds must be positive".to_string());
        }
        Ok(())
    }
}

/// The defense parameters a [`MechanismKind::ConsensusReputation`] peer
/// declares to the swarm. The swarm — not the mechanism — runs the
/// per-round quorum aggregation, strike accounting and ban eviction,
/// because reports span peers; declaring the policy here (like
/// [`SettleCadence`]) lets the round loop drive the consensus pass only
/// when the population actually uses it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConsensusPolicy {
    /// Matching counterpart reports that corroborate an uploader.
    pub quorum: usize,
    /// Strikes that trigger a ban (temporary first, then permanent).
    pub ban_threshold: u32,
    /// Per-round multiplicative decay of strikes and scores, in `[0, 1]`.
    pub decay: f64,
    /// Temporary ban length in rounds.
    pub temp_ban_rounds: u64,
}

impl ConsensusPolicy {
    /// The policy encoded in `params`.
    pub fn from_params(params: &MechanismParams) -> Self {
        ConsensusPolicy {
            quorum: params.consensus_quorum,
            ban_threshold: params.consensus_ban_threshold,
            decay: params.consensus_decay,
            temp_ban_rounds: params.consensus_temp_ban_rounds,
        }
    }
}

/// When a mechanism settles the contributions it observes.
///
/// Settlement is the act of converting observed transfers into the state
/// that steers future allocations (credits, deficits, reward balances).
/// The paper's six mechanisms all settle per-transfer: every received
/// byte updates their ledgers immediately, inside the transfer
/// accounting, and the round loop never has to do anything extra.
/// Production incentive systems instead accrue contributions and settle
/// them in batches at epoch boundaries; declaring that cadence here lets
/// the round loop drive the [`Mechanism::on_epoch_close`] hook (and mark
/// the peer dirty at boundaries) without the mechanism poking at round
/// numbers itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SettleCadence {
    /// Every transfer settles immediately through the shared ledgers —
    /// the paper's model, and the default. The round loop drives no
    /// epoch hook.
    PerTransfer,
    /// Contributions accrue and settle every `.0` rounds; the round loop
    /// calls [`Mechanism::on_epoch_close`] at each boundary and re-marks
    /// the peer dirty there (its allocation inputs changed without any
    /// transfer touching it).
    Epoch(u64),
}

/// An incentive mechanism: the per-round upload-allocation policy of one
/// peer (Section III-A of the paper).
///
/// Each round the simulator calls [`Mechanism::allocate`] with the peer's
/// remaining upload budget in bytes; the mechanism returns grants whose
/// total must not exceed the budget (the simulator clamps regardless).
pub trait Mechanism: std::fmt::Debug + Send + Sync {
    /// Which of the six algorithms this is.
    fn kind(&self) -> MechanismKind;

    /// Decides this round's upload grants.
    fn allocate(&mut self, view: &dyn SwarmView, budget: u64, rng: &mut dyn RngCore) -> Vec<Grant>;

    /// True when [`allocate`](Self::allocate) is a pure function of the
    /// view and budget: no internal counters or sticky targets mutated
    /// across calls, no RNG draws, no dependence on the round number. For
    /// such mechanisms an unproductive call repeats verbatim until one of
    /// its inputs (ledgers, deficits, reputations, interest, neighbor
    /// set, budget) changes, so the dirty-set round loop may drop the
    /// peer from the visit set after a grantless round and rely on the
    /// simulator's mark sites to resurrect it on any input change.
    ///
    /// The default is `false` — the conservative answer that keeps a peer
    /// visited every round while it has an interested neighbor. Only
    /// override to `true` when every call site of mutable state in
    /// `allocate` has been audited away.
    fn allocate_is_memoryless(&self) -> bool {
        false
    }

    /// Hook called at the end of every round (after transfers execute).
    fn on_round_end(&mut self, _view: &dyn SwarmView) {}

    /// The mechanism's settlement cadence. [`SettleCadence::PerTransfer`]
    /// (the default) means every ledger update settles in place and the
    /// round loop never calls [`Mechanism::on_epoch_close`].
    fn settle_cadence(&self) -> SettleCadence {
        SettleCadence::PerTransfer
    }

    /// Hook called by the round loop at each epoch boundary for
    /// mechanisms declaring [`SettleCadence::Epoch`], after
    /// [`Mechanism::on_round_end`] of the boundary round. Must not draw
    /// randomness and may only mutate this mechanism's own state —
    /// the hook runs inside the (possibly sharded) end-of-round pass,
    /// and determinism across `--shards`/`--jobs` depends on it.
    fn on_epoch_close(&mut self, _view: &dyn SwarmView) {}

    /// The consensus-reputation defense policy this mechanism wants the
    /// swarm to enforce, or `None` (the default) for no consensus layer.
    /// Like [`Mechanism::settle_cadence`], this is a declaration: the
    /// swarm runs the report aggregation, strike accounting and bans.
    fn consensus_policy(&self) -> Option<ConsensusPolicy> {
        None
    }

    /// Hook called when a conditional (encrypted) upload this peer made is
    /// resolved: `honored = true` when the receiver reciprocated (key
    /// released), `false` when the obligation expired unfulfilled.
    /// T-Chain's local-reputation component feeds on this signal.
    fn on_chain_outcome(&mut self, _receiver: PeerId, _honored: bool) {}

    /// Deep-clones this mechanism behind a fresh box, preserving all
    /// accumulated per-peer state (credit ledgers, local reputations,
    /// unchoke targets). Mid-run checkpointing needs this to snapshot a
    /// peer's allocation policy; every implementation is
    /// `Box::new(self.clone())`.
    fn clone_box(&self) -> Box<dyn Mechanism>;
}

impl Clone for Box<dyn Mechanism> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Builds a boxed mechanism of the given kind with the given parameters.
///
/// # Panics
///
/// Panics if `params.validate()` fails.
///
/// # Example
///
/// ```
/// use coop_incentives::{build_mechanism, MechanismKind, MechanismParams};
/// let m = build_mechanism(MechanismKind::TChain, MechanismParams::default());
/// assert_eq!(m.kind(), MechanismKind::TChain);
/// ```
pub fn build_mechanism(kind: MechanismKind, params: MechanismParams) -> Box<dyn Mechanism> {
    params
        .validate()
        .unwrap_or_else(|e| panic!("invalid mechanism parameters: {e}"));
    use crate::mechanisms::*;
    match kind {
        MechanismKind::Reciprocity => Box::new(Reciprocity::new()),
        MechanismKind::Altruism => Box::new(Altruism::new()),
        MechanismKind::Reputation => Box::new(Reputation::new(params)),
        MechanismKind::BitTorrent => Box::new(BitTorrent::new(params)),
        MechanismKind::FairTorrent => Box::new(FairTorrent::new()),
        MechanismKind::TChain => Box::new(TChain::new(params)),
        MechanismKind::EpochSettlement => Box::new(EpochSettlement::new(params)),
        MechanismKind::ConsensusReputation => Box::new(ConsensusReputation::new(params)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper() {
        let p = MechanismParams::default();
        assert_eq!(p.alpha_bt, 0.2);
        assert_eq!(p.n_bt, 4);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_fractions() {
        let bad_alpha = MechanismParams {
            alpha_bt: 1.5,
            ..MechanismParams::default()
        };
        assert!(bad_alpha.validate().is_err());
        let bad_r = MechanismParams {
            alpha_r: -0.1,
            ..MechanismParams::default()
        };
        assert!(bad_r.validate().is_err());
        let bad_n = MechanismParams {
            n_bt: 0,
            ..MechanismParams::default()
        };
        assert!(bad_n.validate().is_err());
    }

    #[test]
    fn build_covers_all_kinds() {
        for kind in MechanismKind::EXTENDED {
            let m = build_mechanism(kind, MechanismParams::default());
            assert_eq!(m.kind(), kind);
        }
    }

    #[test]
    fn paper_mechanisms_settle_per_transfer() {
        for kind in MechanismKind::ALL {
            let m = build_mechanism(kind, MechanismParams::default());
            assert_eq!(m.settle_cadence(), SettleCadence::PerTransfer, "{kind}");
        }
        let epoch = build_mechanism(MechanismKind::EpochSettlement, MechanismParams::default());
        assert_eq!(
            epoch.settle_cadence(),
            SettleCadence::Epoch(MechanismParams::default().epoch_rounds)
        );
    }

    #[test]
    fn consensus_policy_declared_only_by_consensus_reputation() {
        for kind in MechanismKind::EXTENDED {
            let m = build_mechanism(kind, MechanismParams::default());
            if kind == MechanismKind::ConsensusReputation {
                let policy = m.consensus_policy().expect("declares a policy");
                assert_eq!(policy, ConsensusPolicy::from_params(&MechanismParams::default()));
            } else {
                assert!(m.consensus_policy().is_none(), "{kind}");
            }
        }
    }

    #[test]
    fn validation_rejects_bad_consensus_params() {
        for bad in [
            MechanismParams {
                consensus_quorum: 0,
                ..MechanismParams::default()
            },
            MechanismParams {
                consensus_ban_threshold: 0,
                ..MechanismParams::default()
            },
            MechanismParams {
                consensus_decay: 1.5,
                ..MechanismParams::default()
            },
            MechanismParams {
                consensus_temp_ban_rounds: 0,
                ..MechanismParams::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn validation_rejects_zero_epoch() {
        let bad = MechanismParams {
            epoch_rounds: 0,
            ..MechanismParams::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid mechanism parameters")]
    fn build_panics_on_invalid_params() {
        let p = MechanismParams {
            alpha_bt: 2.0,
            ..MechanismParams::default()
        };
        build_mechanism(MechanismKind::BitTorrent, p);
    }

    #[test]
    fn grant_reason_index_round_trips() {
        for (i, &r) in GrantReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert!(!r.name().is_empty());
        }
    }

    #[test]
    fn grant_constructors() {
        let a = Grant::new(PeerId::new(1), 100, GrantReason::Altruism);
        assert!(a.condition.is_none());
        let c = Grant::conditional(
            PeerId::new(1),
            100,
            GrantReason::IndirectReciprocity,
            PeerId::new(2),
        );
        assert_eq!(c.condition.unwrap().reciprocate_to, PeerId::new(2));
    }
}
