//! The classification of incentive mechanisms (Fig. 1 of the paper).

use std::fmt;

/// The three fundamental classes of exchange algorithm (Section III-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MechanismClass {
    /// Users reciprocate whenever they receive data, uploading exactly as
    /// much as they download.
    Reciprocity,
    /// Users upload to randomly selected users with no attempt at
    /// reciprocity.
    Altruism,
    /// Users upload preferentially to peers with the highest (global)
    /// reputations, built from past behavior.
    Reputation,
}

impl fmt::Display for MechanismClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MechanismClass::Reciprocity => "reciprocity",
            MechanismClass::Altruism => "altruism",
            MechanismClass::Reputation => "reputation",
        })
    }
}

/// The six algorithms compared by the paper: the three basic classes and
/// the three pairwise hybrids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MechanismKind {
    /// Pure direct reciprocity: upload only to reciprocate received data.
    /// In equilibrium no exchange can even be initiated (Lemma 2).
    Reciprocity,
    /// Pure altruism: upload full capacity to random interested users.
    Altruism,
    /// Pure (global, probabilistic) reputation à la EigenTrust, with a
    /// small altruistic fraction `α_R` for bootstrapping.
    Reputation,
    /// The reciprocity/altruism hybrid: tit-for-tat toward the top `n_BT`
    /// contributors plus an `α_BT` fraction of optimistic unchoking.
    BitTorrent,
    /// The reputation/altruism hybrid: upload to the interested peer with
    /// the lowest piece deficit, falling back to zero-deficit users.
    FairTorrent,
    /// The reciprocity/reputation hybrid: every upload must be reciprocated
    /// directly or *indirectly* (forwarding to a third peer), enforced by
    /// encrypting pieces until reciprocation is confirmed.
    TChain,
    /// Beyond the paper: epoch-settled reward distribution. Contributions
    /// accrue during an epoch and are paid out proportionally at epoch
    /// close via O(1) scalable-reward-distribution accounting. The epoch
    /// length interpolates between FairTorrent-like fairness (epoch → 0)
    /// and altruism-like exploitability (epoch → ∞).
    EpochSettlement,
    /// Beyond the paper: quorum-consensus reputation with bans. Peers
    /// submit per-round transfer reports; a deterministic quorum
    /// aggregation cross-checks claims against counterpart acknowledgments,
    /// non-consensus submitters accrue decaying strikes, and strike
    /// thresholds trigger temporary then permanent bans. Replaces the
    /// trusted pre-seeded EigenTrust root with consensus across reporters.
    ConsensusReputation,
}

impl MechanismKind {
    /// All six mechanisms, in the paper's table order
    /// (reciprocity, T-Chain, BitTorrent, FairTorrent, reputation, altruism).
    pub const ALL: [MechanismKind; 6] = [
        MechanismKind::Reciprocity,
        MechanismKind::TChain,
        MechanismKind::BitTorrent,
        MechanismKind::FairTorrent,
        MechanismKind::Reputation,
        MechanismKind::Altruism,
    ];

    /// The paper's six mechanisms plus the extensions, in grid order.
    /// [`MechanismKind::ALL`] stays the paper grid (golden fingerprints
    /// and scenario specs key off it); figure runners that include the
    /// extensions iterate this instead.
    pub const EXTENDED: [MechanismKind; 8] = [
        MechanismKind::Reciprocity,
        MechanismKind::TChain,
        MechanismKind::BitTorrent,
        MechanismKind::FairTorrent,
        MechanismKind::Reputation,
        MechanismKind::Altruism,
        MechanismKind::EpochSettlement,
        MechanismKind::ConsensusReputation,
    ];

    /// Short human-readable name (as used in the paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            MechanismKind::Reciprocity => "Reciprocity",
            MechanismKind::Altruism => "Altruism",
            MechanismKind::Reputation => "Reputation",
            MechanismKind::BitTorrent => "BitTorrent",
            MechanismKind::FairTorrent => "FairTorrent",
            MechanismKind::TChain => "T-Chain",
            MechanismKind::EpochSettlement => "EpochSettlement",
            MechanismKind::ConsensusReputation => "ConsensusReputation",
        }
    }

    /// The basic classes this algorithm combines (Fig. 1).
    pub fn classes(self) -> &'static [MechanismClass] {
        use MechanismClass::*;
        match self {
            MechanismKind::Reciprocity => &[Reciprocity],
            MechanismKind::Altruism => &[Altruism],
            MechanismKind::Reputation => &[Reputation],
            MechanismKind::BitTorrent => &[Reciprocity, Altruism],
            MechanismKind::FairTorrent => &[Reputation, Altruism],
            MechanismKind::TChain => &[Reciprocity, Reputation],
            // Accrued-contribution payouts are a reputation signal; the
            // open-epoch window (and bootstrap fallback) serves altruistically.
            MechanismKind::EpochSettlement => &[Reputation, Altruism],
            // Consensus scores are a reputation signal; the α_R bootstrap
            // share serves altruistically, exactly like `Reputation`.
            MechanismKind::ConsensusReputation => &[Reputation, Altruism],
        }
    }

    /// Returns true if the algorithm combines two basic classes.
    pub fn is_hybrid(self) -> bool {
        self.classes().len() > 1
    }

    /// The qualitative performance expectations of Fig. 1 / Section III-B.
    pub fn expected(self) -> ExpectedPerformance {
        use Rating::*;
        match self {
            MechanismKind::Reciprocity => ExpectedPerformance {
                fairness: High,
                efficiency: Low,
                bootstrapping: Low,
                freeride_resistance: High,
            },
            MechanismKind::Altruism => ExpectedPerformance {
                fairness: Low,
                efficiency: High,
                bootstrapping: High,
                freeride_resistance: Low,
            },
            MechanismKind::Reputation => ExpectedPerformance {
                fairness: Medium,
                efficiency: Medium,
                bootstrapping: Low,
                freeride_resistance: Low, // collusion inflates reputations
            },
            MechanismKind::BitTorrent => ExpectedPerformance {
                fairness: Medium,
                efficiency: Medium,
                bootstrapping: Medium,
                freeride_resistance: Medium,
            },
            MechanismKind::FairTorrent => ExpectedPerformance {
                fairness: High,
                efficiency: Medium,
                bootstrapping: High,
                freeride_resistance: Medium,
            },
            MechanismKind::TChain => ExpectedPerformance {
                fairness: High,
                efficiency: High,
                bootstrapping: High,
                freeride_resistance: High,
            },
            // Between FairTorrent and Altruism, by construction: fairness
            // and susceptibility depend on the epoch length.
            MechanismKind::EpochSettlement => ExpectedPerformance {
                fairness: Medium,
                efficiency: High,
                bootstrapping: High,
                freeride_resistance: Low, // an open epoch is exploitable
            },
            // Reputation's profile, but bans convert reputation from a
            // preference into an exclusion — free-ride resistance hinges
            // on the defense parameters, not on goodwill.
            MechanismKind::ConsensusReputation => ExpectedPerformance {
                fairness: Medium,
                efficiency: Medium,
                bootstrapping: Low,
                freeride_resistance: High,
            },
        }
    }
}

impl fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A coarse qualitative level used by the Fig. 1 expectations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rating {
    /// Poor on this metric.
    Low,
    /// Intermediate.
    Medium,
    /// Strong on this metric.
    High,
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rating::Low => "low",
            Rating::Medium => "medium",
            Rating::High => "high",
        })
    }
}

/// Qualitative expected performance on the paper's four metrics (Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExpectedPerformance {
    /// How close `d_i/u_i` stays to 1 for every user.
    pub fairness: Rating,
    /// How quickly downloads complete on average.
    pub efficiency: Rating,
    /// How quickly newcomers obtain their first piece.
    pub bootstrapping: Rating,
    /// Resistance to free-riding (higher = fewer exploitable resources).
    pub freeride_resistance: Rating,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_each_kind_once() {
        let mut kinds = MechanismKind::ALL.to_vec();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), 6);
    }

    #[test]
    fn extended_is_all_plus_extensions() {
        assert_eq!(&MechanismKind::EXTENDED[..6], &MechanismKind::ALL[..]);
        assert_eq!(
            MechanismKind::EXTENDED[6],
            MechanismKind::EpochSettlement
        );
        assert_eq!(
            MechanismKind::EXTENDED[7],
            MechanismKind::ConsensusReputation
        );
        let mut kinds = MechanismKind::EXTENDED.to_vec();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), 8);
        assert_eq!(MechanismKind::EpochSettlement.name(), "EpochSettlement");
        assert!(MechanismKind::EpochSettlement.is_hybrid());
        assert_eq!(
            MechanismKind::ConsensusReputation.name(),
            "ConsensusReputation"
        );
        assert!(MechanismKind::ConsensusReputation.is_hybrid());
    }

    #[test]
    fn hybrids_have_two_classes_basics_one() {
        for k in MechanismKind::EXTENDED {
            let n = k.classes().len();
            assert_eq!(k.is_hybrid(), n == 2, "{k}");
            assert!(n == 1 || n == 2);
        }
    }

    #[test]
    fn hybrid_composition_matches_paper() {
        use MechanismClass::*;
        assert_eq!(
            MechanismKind::BitTorrent.classes(),
            &[Reciprocity, Altruism]
        );
        assert_eq!(
            MechanismKind::FairTorrent.classes(),
            &[Reputation, Altruism]
        );
        assert_eq!(MechanismKind::TChain.classes(), &[Reciprocity, Reputation]);
    }

    #[test]
    fn fig1_extremes() {
        // Altruism: most efficient, least fair; reciprocity: the reverse.
        let alt = MechanismKind::Altruism.expected();
        let rec = MechanismKind::Reciprocity.expected();
        assert!(alt.efficiency > rec.efficiency);
        assert!(rec.fairness > alt.fairness);
        assert!(rec.freeride_resistance > alt.freeride_resistance);
        // T-Chain is strong on all four axes (the paper's headline).
        let tc = MechanismKind::TChain.expected();
        assert_eq!(tc.fairness, Rating::High);
        assert_eq!(tc.efficiency, Rating::High);
        assert_eq!(tc.bootstrapping, Rating::High);
        assert_eq!(tc.freeride_resistance, Rating::High);
    }

    #[test]
    fn names_are_unique_and_displayed() {
        let names: Vec<&str> = MechanismKind::ALL.iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(MechanismKind::TChain.to_string(), "T-Chain");
        assert_eq!(MechanismClass::Altruism.to_string(), "altruism");
    }
}
