//! The read-only view of the swarm a mechanism sees when allocating.

use crate::ledger::{ContributionLedger, DeficitLedger};
use crate::PeerId;
use coop_piece::PieceId;

/// A pending T-Chain reciprocation obligation held by a *receiver*.
///
/// The receiver obtained `piece` in encrypted form from `uploader` and must
/// upload one piece to `reciprocate_to` (which equals `uploader` for direct
/// reciprocity) before `uploader` releases the decryption key. Until then
/// the piece is *locked*: forwardable but not usable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Obligation {
    /// Who uploaded the encrypted piece and holds the key.
    pub uploader: PeerId,
    /// Whom the receiver must upload a piece to.
    pub reciprocate_to: PeerId,
    /// The locked piece.
    pub piece: PieceId,
    /// The round in which the obligation was created (for expiry).
    pub created_round: u64,
}

/// What a mechanism may observe about the swarm when deciding whom to
/// upload to.
///
/// The view is scoped to the querying peer: local ledgers plus the
/// neighbor/interest information any real client has, plus the *global*
/// quantities the paper's reputation-class algorithms assume (total bytes
/// uploaded per peer, pairwise interest for choosing indirect-reciprocity
/// targets).
///
/// The `coop-swarm` crate provides the production implementation; tests use
/// lightweight fakes.
pub trait SwarmView {
    /// The querying peer.
    fn me(&self) -> PeerId;

    /// The current timeslot index.
    fn round(&self) -> u64;

    /// Active, connected neighbors of the querying peer.
    ///
    /// Borrowed rather than owned: the production view hands out a slice
    /// of a candidate list precomputed once per round, so a mechanism can
    /// be called many times in a round without the view re-filtering (or
    /// re-allocating) the neighbor set each time.
    fn neighbors(&self) -> &[PeerId];

    /// Does `peer` need at least one piece I can offer? ("interest" in
    /// BitTorrent terms; the event with probability `q(peer, me)`.)
    fn peer_needs_from_me(&self, peer: PeerId) -> bool;

    /// Do I need at least one piece `peer` holds?
    fn i_need_from(&self, peer: PeerId) -> bool;

    /// Does `who` need at least one piece `from` holds? (Global interest
    /// query used by T-Chain uploaders to pick indirect-reciprocity
    /// targets; the paper assumes such a target can be found whenever one
    /// exists.)
    fn peer_needs_from(&self, who: PeerId, from: PeerId) -> bool;

    /// Number of *usable* pieces `peer` currently holds (zero identifies a
    /// newcomer in need of bootstrapping).
    fn piece_count(&self, peer: PeerId) -> u32;

    /// Global reputation of `peer` (total bytes it has uploaded, per the
    /// reputation table — possibly inflated by colluders).
    fn reputation(&self, peer: PeerId) -> f64;

    /// My contribution ledger.
    fn ledger(&self) -> &ContributionLedger;

    /// My FairTorrent deficit ledger.
    fn deficits(&self) -> &DeficitLedger;

    /// My outstanding T-Chain obligations (pieces I hold locked).
    fn obligations(&self) -> &[Obligation];

    /// Do I currently have a partially transferred piece in flight toward
    /// `peer`? Uploaders must be able to finish in-flight pieces even when
    /// the target's backlog is full.
    fn uploading_to(&self, peer: PeerId) -> bool;

    /// Number of outstanding obligations held by `peer`. T-Chain uploaders
    /// use this to avoid initiating chains toward peers whose
    /// reciprocation backlog already exceeds what they can serve (in the
    /// real protocol an uploader observes unresponsive chain partners and
    /// stops feeding them).
    fn obligation_count(&self, peer: PeerId) -> usize;

    /// The nominal piece size in bytes (allocation quantum).
    fn piece_size(&self) -> u64;
}

#[cfg(test)]
pub(crate) mod fake {
    //! A configurable in-memory [`SwarmView`] for unit-testing mechanisms.

    use super::*;
    use std::collections::{HashMap, HashSet};

    /// A hand-built view of a tiny swarm, used by mechanism unit tests.
    #[derive(Debug, Default)]
    pub struct FakeView {
        pub me: PeerId,
        pub round: u64,
        pub neighbors: Vec<PeerId>,
        /// Pairs (who, from) such that `who` needs a piece `from` has.
        pub interest: HashSet<(PeerId, PeerId)>,
        pub piece_counts: HashMap<PeerId, u32>,
        pub reputations: HashMap<PeerId, f64>,
        pub ledger: ContributionLedger,
        pub deficits: DeficitLedger,
        pub obligations: Vec<Obligation>,
        pub piece_size: u64,
    }

    impl FakeView {
        /// A view for peer 0 with the given neighbors, everyone mutually
        /// interested, piece size 1000.
        pub fn mutual(neighbors: &[u32]) -> Self {
            let me = PeerId::new(0);
            let ids: Vec<PeerId> = neighbors.iter().map(|&i| PeerId::new(i)).collect();
            let mut interest = HashSet::new();
            let mut everyone = ids.clone();
            everyone.push(me);
            for &a in &everyone {
                for &b in &everyone {
                    if a != b {
                        interest.insert((a, b));
                    }
                }
            }
            FakeView {
                me,
                neighbors: ids,
                interest,
                piece_size: 1000,
                ..Default::default()
            }
        }
    }

    impl SwarmView for FakeView {
        fn me(&self) -> PeerId {
            self.me
        }
        fn round(&self) -> u64 {
            self.round
        }
        fn neighbors(&self) -> &[PeerId] {
            &self.neighbors
        }
        fn peer_needs_from_me(&self, peer: PeerId) -> bool {
            self.interest.contains(&(peer, self.me))
        }
        fn i_need_from(&self, peer: PeerId) -> bool {
            self.interest.contains(&(self.me, peer))
        }
        fn peer_needs_from(&self, who: PeerId, from: PeerId) -> bool {
            self.interest.contains(&(who, from))
        }
        fn piece_count(&self, peer: PeerId) -> u32 {
            self.piece_counts.get(&peer).copied().unwrap_or(0)
        }
        fn reputation(&self, peer: PeerId) -> f64 {
            self.reputations.get(&peer).copied().unwrap_or(0.0)
        }
        fn ledger(&self) -> &ContributionLedger {
            &self.ledger
        }
        fn deficits(&self) -> &DeficitLedger {
            &self.deficits
        }
        fn obligations(&self) -> &[Obligation] {
            &self.obligations
        }
        fn uploading_to(&self, _peer: PeerId) -> bool {
            false
        }
        fn obligation_count(&self, peer: PeerId) -> usize {
            if peer == self.me {
                self.obligations.len()
            } else {
                0
            }
        }
        fn piece_size(&self) -> u64 {
            self.piece_size
        }
    }
}
