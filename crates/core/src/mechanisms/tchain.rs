//! The T-Chain-style reciprocity/reputation hybrid.
//!
//! "Users in this hybrid algorithm can reciprocate uploads by uploading a
//! piece to any user. If the receiving user reciprocates to the uploading
//! user, we refer to the exchange as direct reciprocity; reciprocating to
//! another user is called indirect reciprocity. Through indirect
//! reciprocity, newcomers can receive a piece from one user and reciprocate
//! by uploading the received piece to another user. … T-Chain users upload
//! encrypted pieces to others to ensure that uploads are reciprocated, and
//! only release the decryption keys after confirming that the receiving
//! user has reciprocated." (Section III-A.)
//!
//! The allocation policy, per round:
//!
//! 1. **Fulfil obligations first.** Every locked piece this peer holds
//!    carries an obligation to upload one piece to a designated target;
//!    serving those targets unlocks our pieces (the simulator performs the
//!    unlock when the reciprocating transfer completes).
//! 2. **Opportunistic seeding.** Remaining budget initiates new encrypted
//!    uploads to random interested neighbors — "users can opportunistically
//!    initiate as many exchanges as possible until their upload capacity is
//!    saturated" (Lemma 2's proof) — because every initiated upload *must*
//!    be reciprocated, initiating is always in the uploader's interest.
//!
//! For each initiated upload to `j`, the reciprocation target is the
//! uploader itself when it still needs something from `j` (direct
//! reciprocity); otherwise a third peer `k` that needs a piece `j` holds
//! (indirect reciprocity), matching Eq. (6)'s two terms.

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::RngCore;

use crate::mechanism::{Grant, GrantReason, Mechanism, MechanismParams};
use crate::mechanisms::{interested_neighbors, pick_random, StickyTarget};
use crate::view::SwarmView;
use crate::{MechanismKind, PeerId};

/// The T-Chain mechanism (encrypted uploads, direct/indirect reciprocity).
///
/// # Example
///
/// ```
/// use coop_incentives::mechanisms::TChain;
/// use coop_incentives::{Mechanism, MechanismParams};
/// let m = TChain::new(MechanismParams::default());
/// assert_eq!(m.kind(), coop_incentives::MechanismKind::TChain);
/// ```
#[derive(Clone, Debug)]
pub struct TChain {
    params: MechanismParams,
    seeding: StickyTarget,
    /// Per-neighbor chain history: (honored, defaulted) counts. This is
    /// T-Chain's reputation component — uploaders stop initiating chains
    /// toward peers that repeatedly let obligations expire (free-riders),
    /// while honest-but-slow peers keep a positive record.
    history: HashMap<PeerId, (u32, u32)>,
}

impl TChain {
    /// Creates the mechanism.
    pub fn new(params: MechanismParams) -> Self {
        TChain {
            params,
            seeding: StickyTarget::new(),
            history: HashMap::new(),
        }
    }

    /// Is `peer` a known chain defector (defaults dominate honors)?
    fn is_defector(&self, peer: PeerId) -> bool {
        let (honored, defaulted) = self.history.get(&peer).copied().unwrap_or((0, 0));
        defaulted >= 2 && defaulted > 2 * honored
    }

    /// The number of rounds an obligation may stay unfulfilled before the
    /// uploader withholds the key for good.
    pub fn obligation_ttl(&self) -> u64 {
        self.params.tchain_obligation_ttl
    }

    /// Chooses the reciprocation target for an upload to `j`: the uploader
    /// itself if direct reciprocity is possible, otherwise a random third
    /// peer `k` that needs pieces from *the uploader* — `j` will hold the
    /// transferred piece (encrypted) after delivery and can forward exactly
    /// that piece onward, which is how T-Chain bootstraps newcomers that
    /// hold nothing else ("newcomers can receive a piece from one user and
    /// reciprocate by uploading the received piece to another user").
    fn reciprocation_target(
        view: &dyn SwarmView,
        j: PeerId,
        rng: &mut dyn RngCore,
    ) -> Option<PeerId> {
        if view.i_need_from(j) {
            return Some(view.me());
        }
        let mut third: Vec<PeerId> = view
            .neighbors()
            .iter()
            .copied()
            .filter(|&k| {
                k != j
                    && k != view.me()
                    && (view.peer_needs_from(k, view.me()) || view.peer_needs_from(k, j))
            })
            .collect();
        third.shuffle(rng);
        third.first().copied()
    }
}

impl Mechanism for TChain {
    fn clone_box(&self) -> Box<dyn Mechanism> {
        Box::new(self.clone())
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::TChain
    }

    fn on_chain_outcome(&mut self, receiver: PeerId, honored: bool) {
        let entry = self.history.entry(receiver).or_insert((0, 0));
        if honored {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }

    fn allocate(&mut self, view: &dyn SwarmView, budget: u64, rng: &mut dyn RngCore) -> Vec<Grant> {
        let piece = view.piece_size();
        let mut remaining = budget;
        let mut grants = Vec::new();

        // 1. Fulfil outstanding obligations, oldest first: upload one piece
        //    to each designated target that still wants something from us.
        //    These uploads are themselves conditional (the chain continues)
        //    unless they target the original uploader (direct reciprocity
        //    completes the pairwise exchange, no further condition needed).
        let mut obligations: Vec<_> = view.obligations().to_vec();
        obligations.sort_by_key(|o| o.created_round);
        for ob in obligations {
            if remaining == 0 {
                break;
            }
            let target = ob.reciprocate_to;
            if target == view.me() || !view.peer_needs_from_me(target) {
                continue;
            }
            // Partial grants are essential: a peer whose per-round budget
            // is below one piece must still make progress on its
            // reciprocations, or its locked pieces expire unfulfilled.
            let bytes = remaining.min(piece);
            if target == ob.uploader {
                grants.push(Grant::new(target, bytes, GrantReason::Obligation));
            } else {
                // The forwarded piece is itself encrypted; the third peer
                // must reciprocate onward. We (the forwarder) hold the key
                // obligation chain's next link, so reciprocation comes back
                // to us if we still need pieces, else to another peer.
                let next = Self::reciprocation_target(view, target, rng).unwrap_or(view.me());
                grants.push(Grant::conditional(
                    target,
                    bytes,
                    GrantReason::Obligation,
                    next,
                ));
            }
            remaining -= bytes;
        }

        // 2. Opportunistic seeding with the rest of the budget. Skip
        //    targets whose reciprocation backlog is already deep: feeding
        //    them further only produces expired (wasted) encrypted pieces.
        let candidates: Vec<PeerId> = interested_neighbors(view)
            .into_iter()
            .filter(|&p| {
                (view.obligation_count(p) < self.params.tchain_max_backlog
                    || view.uploading_to(p))
                    && !self.is_defector(p)
            })
            .collect();
        if candidates.is_empty() {
            return grants;
        }
        for (to, bytes) in self
            .seeding
            .allocate(remaining, piece, &candidates, rng, |c, rng| pick_random(c, rng))
        {
            match Self::reciprocation_target(view, to, rng) {
                Some(target) => {
                    let reason = if target == view.me() {
                        GrantReason::Reciprocity
                    } else {
                        GrantReason::IndirectReciprocity
                    };
                    grants.push(Grant::conditional(to, bytes, reason, target));
                }
                // Nobody in the swarm needs anything `to` has (including
                // us): an exchange with `to` cannot be reciprocated, so we
                // skip it — this is the π_TC < 1 case of Proposition 2.
                None => continue,
            }
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::fake::FakeView;
    use crate::Obligation;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(9)
    }

    fn tchain() -> TChain {
        TChain::new(MechanismParams::default())
    }

    #[test]
    fn initiates_conditional_uploads() {
        let view = FakeView::mutual(&[1, 2]);
        let mut m = tchain();
        let grants = m.allocate(&view, 3000, &mut rng());
        assert!(!grants.is_empty());
        for g in &grants {
            assert!(g.condition.is_some(), "T-Chain uploads are encrypted");
        }
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert_eq!(total, 3000);
    }

    #[test]
    fn direct_reciprocity_when_uploader_is_interested() {
        // Mutual interest: we need from everyone, so reciprocation target
        // is ourselves (direct reciprocity).
        let view = FakeView::mutual(&[1]);
        let mut m = tchain();
        let grants = m.allocate(&view, 1000, &mut rng());
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].reason, GrantReason::Reciprocity);
        assert_eq!(grants[0].condition.unwrap().reciprocate_to, PeerId::new(0));
    }

    #[test]
    fn indirect_reciprocity_when_uploader_not_interested() {
        let mut view = FakeView::mutual(&[1, 2]);
        // We don't need anything from peer 1, but peer 2 does.
        view.interest.remove(&(PeerId::new(0), PeerId::new(1)));
        let mut m = tchain();
        let grants = m.allocate(&view, 1000, &mut rng());
        assert_eq!(grants.len(), 1);
        if grants[0].to == PeerId::new(1) {
            assert_eq!(grants[0].reason, GrantReason::IndirectReciprocity);
            assert_eq!(
                grants[0].condition.unwrap().reciprocate_to,
                PeerId::new(2),
                "peer 2 needs pieces from peer 1, so it is the redirect target"
            );
        }
    }

    #[test]
    fn skips_unreciprocatable_exchanges() {
        let mut view = FakeView::mutual(&[1]);
        // Peer 1 needs from us, but nobody (including us) needs from peer 1.
        view.interest.remove(&(PeerId::new(0), PeerId::new(1)));
        let mut m = tchain();
        let grants = m.allocate(&view, 5000, &mut rng());
        assert!(
            grants.is_empty(),
            "an exchange that cannot be reciprocated must not be initiated"
        );
    }

    #[test]
    fn obligations_served_first() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.obligations.push(Obligation {
            uploader: PeerId::new(1),
            reciprocate_to: PeerId::new(2),
            piece: 0,
            created_round: 0,
        });
        let mut m = tchain();
        let grants = m.allocate(&view, 1000, &mut rng());
        assert_eq!(grants[0].to, PeerId::new(2));
        assert_eq!(grants[0].reason, GrantReason::Obligation);
    }

    #[test]
    fn direct_obligation_to_uploader_is_unconditional() {
        let mut view = FakeView::mutual(&[1]);
        view.obligations.push(Obligation {
            uploader: PeerId::new(1),
            reciprocate_to: PeerId::new(1),
            piece: 0,
            created_round: 0,
        });
        let mut m = tchain();
        let grants = m.allocate(&view, 1000, &mut rng());
        assert_eq!(grants[0].to, PeerId::new(1));
        assert!(grants[0].condition.is_none());
    }

    #[test]
    fn oldest_obligations_first_and_budget_respected() {
        let mut view = FakeView::mutual(&[1, 2, 3]);
        for (r, target) in [(5u64, 2u32), (1, 3)] {
            view.obligations.push(Obligation {
                uploader: PeerId::new(1),
                reciprocate_to: PeerId::new(target),
                piece: 0,
                created_round: r,
            });
        }
        let mut m = tchain();
        // Budget for exactly one piece: the round-1 obligation (→ peer 3)
        // must win over the round-5 one.
        let grants = m.allocate(&view, 1000, &mut rng());
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].to, PeerId::new(3));
    }
}
