//! Epoch-settled reward distribution (beyond the paper).
//!
//! The paper's six mechanisms settle per-transfer: every received byte
//! immediately moves the ledger that steers the next allocation.
//! Production incentive systems settle per-epoch instead — contributions
//! accrue during an epoch, then a distributor pays recipients
//! proportionally at epoch close. This module implements that as a
//! seventh mechanism class: contributors to a peer earn *shares*
//! (cumulative bytes uploaded to it), and at every epoch boundary the
//! bytes the peer received during the epoch are distributed across the
//! share table as spendable reward balances. The peer's upload bandwidth
//! then services the highest outstanding balances first, falling back to
//! random altruism (the bootstrap channel) when no creditor is
//! interested.
//!
//! The epoch length interpolates between the paper's extremes: one-round
//! epochs make every contribution spendable almost immediately
//! (FairTorrent-shaped fairness), while an epoch longer than the run
//! never settles at all — no balances ever exist and the mechanism
//! degenerates into pure altruism (altruism-shaped exploitability, since
//! free-riders inside an open epoch are indistinguishable from peers
//! that have not settled yet).
//!
//! Settlement uses the O(1) *scalable reward distribution* scheme: a
//! single cumulative reward-per-share counter plus a per-participant
//! entry snapshot, so an epoch close is O(1) regardless of the number of
//! participants, and the per-participant cost is O(share changes), not
//! O(N · epochs). All arithmetic is u128 fixed-point with flooring only
//! at the balance boundary, which makes the fast accounting *exactly*
//! equal to a naive per-epoch reference ledger (pinned by a proptest).

use std::collections::BTreeMap;

use rand::RngCore;

use crate::mechanism::{Grant, GrantReason, Mechanism, MechanismParams, SettleCadence};
use crate::mechanisms::{interested_neighbors, pick_random, StickyTarget};
use crate::view::SwarmView;
use crate::{MechanismKind, PeerId};

/// Fixed-point scale for the cumulative reward-per-share counter. Large
/// enough that a one-byte pool over the largest realistic share total
/// still moves the counter; small enough that `shares * acc` for a whole
/// run's bytes stays far below `u128::MAX`.
const SCALE: u128 = 1 << 32;

/// One participant's snapshot in the [`RewardPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct PoolEntry {
    /// Shares held (cumulative contributed bytes).
    shares: u64,
    /// `shares * acc` at the last share change — the standard
    /// reward-per-share debt snapshot. Rewards earned since are
    /// `shares * acc - debt`.
    debt: u128,
    /// Fixed-point rewards realized on earlier share changes.
    realized_fp: u128,
    /// Bytes already spent out of the floored balance.
    spent: u64,
}

impl PoolEntry {
    /// Total earned rewards in fixed point under the current counter.
    fn earned_fp(&self, acc: u128) -> u128 {
        self.realized_fp + self.shares as u128 * acc - self.debt
    }
}

/// O(1) scalable reward distribution: the cumulative-counter accounting
/// behind production reward distributors. `accrue` adjusts one
/// participant's shares, `close_epoch` distributes a reward pool across
/// *all* current shares in O(1), and `balance` floors a participant's
/// earned rewards to spendable bytes.
///
/// Every operation is exact in u128 fixed point; the only rounding is
/// the single floor division per epoch (`pool * SCALE / total_shares`)
/// and the final floor to bytes in [`RewardPool::balance`]. A naive
/// ledger that walks every participant at every epoch close with the
/// same per-epoch increment produces bit-identical balances — see the
/// proptest at the bottom of this module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RewardPool {
    /// Cumulative fixed-point reward per share across all closed epochs.
    acc: u128,
    /// Sum of all live participants' shares.
    total_shares: u64,
    /// Participant snapshots, keyed by peer for deterministic iteration.
    entries: BTreeMap<PeerId, PoolEntry>,
}

impl RewardPool {
    /// An empty pool.
    pub fn new() -> Self {
        RewardPool::default()
    }

    /// Adds `bytes` shares for `peer` (a contribution accrual), first
    /// realizing any rewards the old share count earned.
    pub fn accrue(&mut self, peer: PeerId, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let entry = self.entries.entry(peer).or_default();
        entry.realized_fp = entry.earned_fp(self.acc);
        entry.shares += bytes;
        entry.debt = entry.shares as u128 * self.acc;
        self.total_shares += bytes;
    }

    /// Closes an epoch: distributes `pool_bytes` across all current
    /// shares by advancing the cumulative counter once. Returns `true`
    /// when a distribution happened (a pool and at least one share).
    pub fn close_epoch(&mut self, pool_bytes: u64) -> bool {
        if pool_bytes == 0 || self.total_shares == 0 {
            return false;
        }
        self.acc += pool_bytes as u128 * SCALE / self.total_shares as u128;
        true
    }

    /// The spendable byte balance of `peer`: floored earned rewards
    /// minus what has already been spent.
    pub fn balance(&self, peer: PeerId) -> u64 {
        self.entries.get(&peer).map_or(0, |e| {
            ((e.earned_fp(self.acc) / SCALE) as u64).saturating_sub(e.spent)
        })
    }

    /// Records `bytes` spent out of `peer`'s balance.
    pub fn spend(&mut self, peer: PeerId, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let entry = self.entries.entry(peer).or_default();
        debug_assert!(
            entry.spent + bytes <= (entry.earned_fp(self.acc) / SCALE) as u64,
            "spend exceeds balance"
        );
        entry.spent += bytes;
    }

    /// Removes `peer` from the pool (a departure), forfeiting its
    /// unspent balance and withdrawing its shares from future epochs.
    /// Returns the forfeited byte balance.
    pub fn remove(&mut self, peer: PeerId) -> u64 {
        let Some(entry) = self.entries.remove(&peer) else {
            return 0;
        };
        self.total_shares -= entry.shares;
        ((entry.earned_fp(self.acc) / SCALE) as u64).saturating_sub(entry.spent)
    }

    /// Current shares of `peer`.
    pub fn shares(&self, peer: PeerId) -> u64 {
        self.entries.get(&peer).map_or(0, |e| e.shares)
    }

    /// Sum of all live shares.
    pub fn total_shares(&self) -> u64 {
        self.total_shares
    }

    /// Participants holding a positive spendable balance, largest balance
    /// first (ties broken by peer id) — the service order for
    /// reward-backed uploads.
    pub fn creditors(&self) -> Vec<(PeerId, u64)> {
        let mut out: Vec<(PeerId, u64)> = self
            .entries
            .keys()
            .map(|&p| (p, self.balance(p)))
            .filter(|&(_, b)| b > 0)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// The epoch-settled reward-distribution mechanism.
///
/// # Example
///
/// ```
/// use coop_incentives::mechanisms::EpochSettlement;
/// use coop_incentives::{Mechanism, MechanismParams, SettleCadence};
/// let m = EpochSettlement::new(MechanismParams::default());
/// assert_eq!(m.kind(), coop_incentives::MechanismKind::EpochSettlement);
/// assert_eq!(m.settle_cadence(), SettleCadence::Epoch(16));
/// ```
#[derive(Clone, Debug)]
pub struct EpochSettlement {
    epoch_rounds: u64,
    pool: RewardPool,
    /// `ledger.total_received()` at the last epoch close; the next
    /// epoch's reward pool is the delta since.
    settled_through: u64,
    sticky: StickyTarget,
}

impl EpochSettlement {
    /// Creates the mechanism with `params.epoch_rounds` as the cadence.
    pub fn new(params: MechanismParams) -> Self {
        EpochSettlement {
            epoch_rounds: params.epoch_rounds.max(1),
            pool: RewardPool::new(),
            settled_through: 0,
            sticky: StickyTarget::new(),
        }
    }

    /// Read access to the reward pool, for tests and diagnostics.
    pub fn pool(&self) -> &RewardPool {
        &self.pool
    }

    /// Accrues shares for every neighbor whose cumulative contribution
    /// grew since the last sync. The ledger is the source of truth; the
    /// pool only ever catches up to it, so sync order is irrelevant and
    /// a departed contributor (whose ledger row was forgotten) simply
    /// stops accruing while keeping its earned shares.
    fn sync_shares(&mut self, view: &dyn SwarmView) {
        let ledger = view.ledger();
        for &p in view.neighbors() {
            let contributed = ledger.received_from(p);
            let held = self.pool.shares(p);
            if contributed > held {
                self.pool.accrue(p, contributed - held);
            }
        }
    }
}

impl Mechanism for EpochSettlement {
    fn clone_box(&self) -> Box<dyn Mechanism> {
        Box::new(self.clone())
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::EpochSettlement
    }

    fn settle_cadence(&self) -> SettleCadence {
        SettleCadence::Epoch(self.epoch_rounds)
    }

    fn allocate(&mut self, view: &dyn SwarmView, budget: u64, rng: &mut dyn RngCore) -> Vec<Grant> {
        self.sync_shares(view);
        let candidates = interested_neighbors(view);
        if candidates.is_empty() {
            return Vec::new();
        }
        let mut grants: Vec<Grant> = Vec::new();
        let mut remaining = budget;
        // Reward-backed uploads: service settled balances, largest first.
        // Balances only move at epoch boundaries (and by spending here),
        // so the order is stable within an epoch — effectively sticky.
        for (to, balance) in self.pool.creditors() {
            if remaining == 0 {
                break;
            }
            if !candidates.contains(&to) {
                continue;
            }
            let bytes = remaining.min(balance);
            self.pool.spend(to, bytes);
            remaining -= bytes;
            grants.push(Grant::new(to, bytes, GrantReason::Reputation));
        }
        // Altruistic fallback: inside an open epoch (or before anyone has
        // settled a balance) spare capacity serves random interested
        // neighbors — the bootstrap channel, and the exploitable surface.
        if remaining > 0 {
            grants.extend(
                self.sticky
                    .allocate(remaining, view.piece_size(), &candidates, rng, |c, rng| {
                        pick_random(c, rng)
                    })
                    .into_iter()
                    .map(|(to, bytes)| Grant::new(to, bytes, GrantReason::Altruism)),
            );
        }
        grants
    }

    fn on_round_end(&mut self, view: &dyn SwarmView) {
        // Shares must accrue on the round cadence, not the visit cadence.
        // The dirty-set round loop legitimately skips quiet uploaders,
        // and a contributor can depart or whitewash while this peer is
        // skipped — its neighbor/ledger rows vanish, so any contribution
        // not yet synced would be lost on the skipping loop only,
        // breaking naive/indexed/dirty equivalence. This hook runs for
        // every active peer every round in all loop modes, which makes
        // the pool a function of the round, never of the visit schedule.
        self.sync_shares(view);
    }

    fn on_epoch_close(&mut self, view: &dyn SwarmView) {
        // Catch up shares for contributions that landed after this
        // round's allocate pass, then distribute the epoch's receipts.
        // No RNG and no shared state: safe inside the sharded hook pass.
        self.sync_shares(view);
        let received = view.ledger().total_received();
        let pool = received.saturating_sub(self.settled_through);
        if self.pool.close_epoch(pool) {
            self.settled_through = received;
        }
        // With no shareholders yet the pool carries into the next epoch
        // (settled_through stays put) instead of evaporating.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::fake::FakeView;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn pid(n: u32) -> PeerId {
        PeerId::new(n)
    }

    // -- RewardPool unit behavior ---------------------------------------

    #[test]
    fn single_contributor_gets_whole_pool() {
        let mut pool = RewardPool::new();
        pool.accrue(pid(1), 1024);
        assert!(pool.close_epoch(4096));
        assert_eq!(pool.balance(pid(1)), 4096);
        // When pool * SCALE does not divide evenly by the shares, the
        // floor division leaves sub-byte dust in the counter — strictly
        // less than one byte per participant per close.
        let mut dusty = RewardPool::new();
        dusty.accrue(pid(1), 1000);
        dusty.close_epoch(4096);
        assert_eq!(dusty.balance(pid(1)), 4095);
    }

    #[test]
    fn pool_splits_proportionally_to_shares() {
        let mut pool = RewardPool::new();
        pool.accrue(pid(1), 300);
        pool.accrue(pid(2), 100);
        pool.close_epoch(4000);
        assert_eq!(pool.balance(pid(1)), 3000);
        assert_eq!(pool.balance(pid(2)), 1000);
    }

    #[test]
    fn late_joiner_earns_only_later_epochs() {
        let mut pool = RewardPool::new();
        pool.accrue(pid(1), 100);
        pool.close_epoch(1000);
        pool.accrue(pid(2), 100);
        pool.close_epoch(1000);
        assert_eq!(pool.balance(pid(1)), 1500);
        assert_eq!(pool.balance(pid(2)), 500);
    }

    #[test]
    fn spending_reduces_balance_without_touching_shares() {
        let mut pool = RewardPool::new();
        pool.accrue(pid(1), 100);
        pool.close_epoch(1000);
        pool.spend(pid(1), 400);
        assert_eq!(pool.balance(pid(1)), 600);
        assert_eq!(pool.shares(pid(1)), 100);
        pool.close_epoch(500);
        assert_eq!(pool.balance(pid(1)), 1100);
    }

    #[test]
    fn removal_forfeits_balance_and_withdraws_shares() {
        let mut pool = RewardPool::new();
        pool.accrue(pid(1), 100);
        pool.accrue(pid(2), 100);
        pool.close_epoch(1000);
        let forfeited = pool.remove(pid(1));
        assert_eq!(forfeited, 500);
        assert_eq!(pool.total_shares(), 100);
        // The survivor now earns the whole next pool.
        pool.close_epoch(700);
        assert_eq!(pool.balance(pid(2)), 1200);
        assert_eq!(pool.balance(pid(1)), 0);
    }

    #[test]
    fn empty_pool_or_zero_rewards_do_not_settle() {
        let mut pool = RewardPool::new();
        assert!(!pool.close_epoch(1000), "no shares, nothing to settle");
        pool.accrue(pid(1), 10);
        assert!(!pool.close_epoch(0), "no pool, nothing to settle");
        assert_eq!(pool.balance(pid(1)), 0);
    }

    #[test]
    fn creditors_sorted_by_balance_then_id() {
        let mut pool = RewardPool::new();
        pool.accrue(pid(3), 100);
        pool.accrue(pid(1), 100);
        pool.accrue(pid(2), 200);
        pool.close_epoch(4000);
        let creditors = pool.creditors();
        assert_eq!(creditors[0], (pid(2), 2000));
        assert_eq!(creditors[1], (pid(1), 1000));
        assert_eq!(creditors[2], (pid(3), 1000));
    }

    // -- The O(1) scheme versus a naive O(N·epochs) reference ledger ----

    /// The obvious per-epoch ledger: walk every participant at every
    /// close and hand each its floored proportional cut, using the same
    /// single rounding point (the per-epoch fixed-point increment) the
    /// pool uses. The scalable pool must match this bit for bit.
    #[derive(Default)]
    struct NaiveLedger {
        shares: BTreeMap<PeerId, u64>,
        earned_fp: BTreeMap<PeerId, u128>,
        spent: BTreeMap<PeerId, u64>,
    }

    impl NaiveLedger {
        fn accrue(&mut self, peer: PeerId, bytes: u64) {
            *self.shares.entry(peer).or_default() += bytes;
        }

        fn close_epoch(&mut self, pool_bytes: u64) {
            let total: u64 = self.shares.values().sum();
            if pool_bytes == 0 || total == 0 {
                return;
            }
            let delta_acc = pool_bytes as u128 * SCALE / total as u128;
            for (&peer, &shares) in &self.shares {
                *self.earned_fp.entry(peer).or_default() += shares as u128 * delta_acc;
            }
        }

        fn spend(&mut self, peer: PeerId, bytes: u64) {
            *self.spent.entry(peer).or_default() += bytes;
        }

        fn remove(&mut self, peer: PeerId) {
            self.shares.remove(&peer);
            self.earned_fp.remove(&peer);
            self.spent.remove(&peer);
        }

        fn balance(&self, peer: PeerId) -> u64 {
            let earned = self.earned_fp.get(&peer).copied().unwrap_or(0);
            let spent = self.spent.get(&peer).copied().unwrap_or(0);
            ((earned / SCALE) as u64).saturating_sub(spent)
        }
    }

    /// One step of an arbitrary pool history.
    #[derive(Clone, Debug)]
    enum Op {
        Accrue { peer: u32, bytes: u64 },
        Close { pool: u64 },
        Spend { peer: u32, fraction_pct: u8 },
        Leave { peer: u32 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // The vendored prop_oneof! is unweighted; bias toward accruals and
        // closes by listing them more than once.
        prop_oneof![
            (0u32..8, 1u64..1_000_000).prop_map(|(peer, bytes)| Op::Accrue { peer, bytes }),
            (0u32..8, 1u64..1_000_000).prop_map(|(peer, bytes)| Op::Accrue { peer, bytes }),
            (0u64..5_000_000u64).prop_map(|pool| Op::Close { pool }),
            (0u64..5_000_000u64).prop_map(|pool| Op::Close { pool }),
            (0u32..8, 0u8..100).prop_map(|(peer, fraction_pct)| Op::Spend {
                peer,
                fraction_pct
            }),
            (0u32..8).prop_map(|peer| Op::Leave { peer }),
        ]
    }

    proptest! {
        /// The tentpole accounting guarantee: for arbitrary
        /// accrual/settlement/spend/departure sequences, the O(1)
        /// cumulative-counter pool reports exactly the balances of the
        /// naive walk-everyone-every-epoch ledger.
        #[test]
        fn scalable_pool_equals_naive_reference(ops in proptest::collection::vec(op_strategy(), 0..120)) {
            let mut pool = RewardPool::new();
            let mut naive = NaiveLedger::default();
            let peers: Vec<PeerId> = (0..8).map(pid).collect();
            for op in ops {
                match op {
                    Op::Accrue { peer, bytes } => {
                        pool.accrue(pid(peer), bytes);
                        naive.accrue(pid(peer), bytes);
                    }
                    Op::Close { pool: pool_bytes } => {
                        pool.close_epoch(pool_bytes);
                        naive.close_epoch(pool_bytes);
                    }
                    Op::Spend { peer, fraction_pct } => {
                        // Spend a balance-derived amount so both sides
                        // stay within budget by construction.
                        let bytes = pool.balance(pid(peer)) * fraction_pct as u64 / 100;
                        pool.spend(pid(peer), bytes);
                        naive.spend(pid(peer), bytes);
                    }
                    Op::Leave { peer } => {
                        pool.remove(pid(peer));
                        naive.remove(pid(peer));
                    }
                }
                for &p in &peers {
                    prop_assert_eq!(
                        pool.balance(p),
                        naive.balance(p),
                        "peer {:?} diverged", p
                    );
                }
            }
        }
    }

    // -- Mechanism behavior ---------------------------------------------

    fn mechanism(epoch_rounds: u64) -> EpochSettlement {
        EpochSettlement::new(MechanismParams {
            epoch_rounds,
            ..MechanismParams::default()
        })
    }

    #[test]
    fn cadence_reflects_params() {
        assert_eq!(mechanism(4).settle_cadence(), SettleCadence::Epoch(4));
        assert!(!mechanism(4).allocate_is_memoryless());
    }

    #[test]
    fn before_any_settlement_all_grants_are_altruistic() {
        let view = FakeView::mutual(&[1, 2, 3]);
        let mut m = mechanism(8);
        let grants = m.allocate(&view, 3000, &mut rng());
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert_eq!(total, 3000);
        assert!(grants.iter().all(|g| g.reason == GrantReason::Altruism));
    }

    #[test]
    fn settled_contributors_are_paid_first() {
        let mut view = FakeView::mutual(&[1, 2]);
        // Peer 1 contributed 10 KiB; peer 2 nothing.
        view.ledger.record_received(pid(1), 10_240);
        let mut m = mechanism(1);
        m.on_epoch_close(&view);
        let grants = m.allocate(&view, 4_096, &mut rng());
        assert_eq!(grants[0].to, pid(1));
        assert_eq!(grants[0].reason, GrantReason::Reputation);
        // The whole epoch pool (10_240 received) belongs to peer 1; a
        // 4_096 budget is entirely reward-backed.
        assert_eq!(grants[0].bytes, 4_096);
        assert_eq!(m.pool().balance(pid(1)), 10_240 - 4_096);
    }

    #[test]
    fn balances_cap_reward_grants_and_surplus_is_altruistic() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.ledger.record_received(pid(1), 1_000);
        let mut m = mechanism(1);
        m.on_epoch_close(&view);
        let grants = m.allocate(&view, 5_000, &mut rng());
        let rewarded: u64 = grants
            .iter()
            .filter(|g| g.reason == GrantReason::Reputation)
            .map(|g| g.bytes)
            .sum();
        let altruistic: u64 = grants
            .iter()
            .filter(|g| g.reason == GrantReason::Altruism)
            .map(|g| g.bytes)
            .sum();
        assert_eq!(rewarded, 1_000, "reward grants stop at the balance");
        assert_eq!(altruistic, 4_000, "the surplus serves the open epoch");
        assert_eq!(m.pool().balance(pid(1)), 0);
    }

    #[test]
    fn unsettled_epoch_never_creates_balances() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.ledger.record_received(pid(1), 50_000);
        let mut m = mechanism(1_000_000);
        // The round loop would never call on_epoch_close within the run;
        // allocate alone must behave exactly like altruism.
        let grants = m.allocate(&view, 2_000, &mut rng());
        assert!(grants.iter().all(|g| g.reason == GrantReason::Altruism));
        assert_eq!(m.pool().balance(pid(1)), 0);
    }

    #[test]
    fn epoch_close_distributes_receipts_once() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.ledger.record_received(pid(1), 3_000);
        view.ledger.record_received(pid(2), 1_000);
        let mut m = mechanism(2);
        m.on_epoch_close(&view);
        assert_eq!(m.pool().balance(pid(1)), 3_000);
        assert_eq!(m.pool().balance(pid(2)), 1_000);
        // A second close with no new receipts is a no-op, not a
        // double-pay.
        m.on_epoch_close(&view);
        assert_eq!(m.pool().balance(pid(1)), 3_000);
        assert_eq!(m.pool().balance(pid(2)), 1_000);
    }

    #[test]
    fn epoch_close_draws_no_rng_and_is_deterministic() {
        let mut view = FakeView::mutual(&[1, 2, 3]);
        view.ledger.record_received(pid(1), 2_048);
        view.ledger.record_received(pid(3), 6_144);
        let run = || {
            let mut m = mechanism(4);
            m.on_epoch_close(&view);
            (m.pool().balance(pid(1)), m.pool().balance(pid(3)))
        };
        assert_eq!(run(), run());
    }
}
