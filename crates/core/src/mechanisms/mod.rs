//! The six incentive mechanisms compared by the paper (Section III-A),
//! plus the epoch-settled extension.
//!
//! | Algorithm       | Classes combined          | Module |
//! |-----------------|---------------------------|--------|
//! | Reciprocity     | reciprocity               | [`reciprocity`] |
//! | Altruism        | altruism                  | [`altruism`] |
//! | Reputation      | reputation (+ α_R altruism for bootstrap) | [`reputation`] |
//! | BitTorrent      | reciprocity / altruism    | [`bittorrent`] |
//! | FairTorrent     | reputation / altruism     | [`fairtorrent`] |
//! | T-Chain         | reciprocity / reputation  | [`tchain`] |
//! | EpochSettlement | reputation / altruism, settled per epoch | [`epoch`] |
//! | ConsensusReputation | reputation / altruism, quorum consensus + bans | [`consensus`] |

pub mod altruism;
pub mod bittorrent;
pub mod consensus;
pub mod epoch;
pub mod extensions;
pub mod fairtorrent;
pub mod reciprocity;
pub mod reputation;
pub mod tchain;

pub use altruism::Altruism;
pub use bittorrent::BitTorrent;
pub use consensus::ConsensusReputation;
pub use epoch::EpochSettlement;
pub use fairtorrent::FairTorrent;
pub use reciprocity::Reciprocity;
pub use reputation::Reputation;
pub use tchain::TChain;

use crate::{PeerId, SwarmView};
use rand::seq::SliceRandom;
use rand::RngCore;

/// Returns the neighbors of `view.me()` that currently need at least one
/// piece the caller can offer, i.e. the candidates any upload could target.
pub(crate) fn interested_neighbors(view: &dyn SwarmView) -> Vec<PeerId> {
    view.neighbors()
        .iter()
        .copied()
        .filter(|&p| view.peer_needs_from_me(p))
        .collect()
}

/// Picks a uniformly random element, or `None` on an empty slice.
pub(crate) fn pick_random(candidates: &[PeerId], rng: &mut dyn RngCore) -> Option<PeerId> {
    candidates.choose(rng).copied()
}

/// Keeps uploading to one chosen target until a full piece worth of bytes
/// has been granted, then picks the next target.
///
/// Without this, a peer whose per-round budget is below the piece size
/// would scatter partial transfers across a new random target every round,
/// parking most of its bandwidth in never-completing transfers — real
/// clients pipeline one piece at a time per connection.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StickyTarget {
    target: Option<PeerId>,
    remaining: u64,
}

impl StickyTarget {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Splits `budget` into `(target, bytes)` chunks, selecting a fresh
    /// target with `pick` whenever the current piece is fully granted or
    /// the current target left the candidate set.
    pub(crate) fn allocate(
        &mut self,
        mut budget: u64,
        piece_size: u64,
        candidates: &[PeerId],
        rng: &mut dyn RngCore,
        mut pick: impl FnMut(&[PeerId], &mut dyn RngCore) -> Option<PeerId>,
    ) -> Vec<(PeerId, u64)> {
        let mut out: Vec<(PeerId, u64)> = Vec::new();
        while budget > 0 {
            let stale = match self.target {
                Some(t) => !candidates.contains(&t) || self.remaining == 0,
                None => true,
            };
            if stale {
                match pick(candidates, rng) {
                    Some(t) => {
                        self.target = Some(t);
                        self.remaining = piece_size;
                    }
                    None => break,
                }
            }
            let t = self.target.expect("just set");
            let bytes = budget.min(self.remaining);
            self.remaining -= bytes;
            budget -= bytes;
            match out.last_mut() {
                Some((last, acc)) if *last == t => *acc += bytes,
                _ => out.push((t, bytes)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sticky_target_stays_until_piece_done() {
        let mut st = StickyTarget::new();
        let candidates = [PeerId::new(1), PeerId::new(2)];
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        // Budget of 300 against piece 1000: three rounds stay on one peer.
        let mut targets = Vec::new();
        for _ in 0..3 {
            for (t, b) in st.allocate(300, 1000, &candidates, &mut rng, |c, _| Some(c[0])) {
                assert_eq!(b, 300);
                targets.push(t);
            }
        }
        assert!(targets.iter().all(|&t| t == targets[0]));
        // 900 of 1000 granted; the next 300 splits 100 + 200 onto a fresh
        // piece for the (re-picked) target.
        let chunks = st.allocate(300, 1000, &candidates, &mut rng, |c, _| Some(c[0]));
        let total: u64 = chunks.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn sticky_target_spans_multiple_pieces_in_one_round() {
        let mut st = StickyTarget::new();
        let candidates = [PeerId::new(5)];
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let chunks = st.allocate(2500, 1000, &candidates, &mut rng, |c, _| Some(c[0]));
        let total: u64 = chunks.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, 2500);
    }

    #[test]
    fn sticky_target_repicks_when_target_leaves() {
        let mut st = StickyTarget::new();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let first = st.allocate(100, 1000, &[PeerId::new(1)], &mut rng, |c, _| Some(c[0]));
        assert_eq!(first[0].0, PeerId::new(1));
        // Peer 1 departs; only peer 2 remains.
        let second = st.allocate(100, 1000, &[PeerId::new(2)], &mut rng, |c, _| Some(c[0]));
        assert_eq!(second[0].0, PeerId::new(2));
    }

    #[test]
    fn sticky_target_empty_candidates_yields_nothing() {
        let mut st = StickyTarget::new();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        assert!(st
            .allocate(100, 1000, &[], &mut rng, |c, _| c.first().copied())
            .is_empty());
    }
}
