//! The global-reputation mechanism.
//!
//! "Reputation algorithms indirectly enforce reciprocity by requiring users
//! to upload to those with the highest reputations … we interpret this
//! preference probabilistically: the probability of uploading to another
//! user is proportional to the total number of pieces uploaded by that user
//! to any other user. Bootstrapping … is accomplished by reserving a small
//! fraction of bandwidth for altruism." (Section III-A, following
//! EigenTrust.)
//!
//! A fraction `1 − α_R` of the budget is allocated by reputation-weighted
//! sampling among interested neighbors; the remaining `α_R` goes to
//! uniformly random interested neighbors (including zero-reputation
//! newcomers). Because reputation is a *global* table fed by claimed
//! uploads, collusive free-riders can inflate each other's scores — the
//! vulnerability quantified in Table III.

use rand::RngCore;

use crate::mechanism::{Grant, GrantReason, Mechanism, MechanismParams};
use crate::mechanisms::{interested_neighbors, pick_random, StickyTarget};
use crate::view::SwarmView;
use crate::{MechanismKind, PeerId};

/// The reputation mechanism (EigenTrust-style, probabilistic).
///
/// # Example
///
/// ```
/// use coop_incentives::mechanisms::Reputation;
/// use coop_incentives::{Mechanism, MechanismParams};
/// let m = Reputation::new(MechanismParams::default());
/// assert_eq!(m.kind(), coop_incentives::MechanismKind::Reputation);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Reputation {
    params: MechanismParams,
    weighted: StickyTarget,
    altruistic: StickyTarget,
}

impl Reputation {
    /// Creates the mechanism with the given `α_R`.
    pub fn new(params: MechanismParams) -> Self {
        Reputation {
            params,
            weighted: StickyTarget::new(),
            altruistic: StickyTarget::new(),
        }
    }

    fn sample_by_reputation(
        view: &dyn SwarmView,
        candidates: &[PeerId],
        rng: &mut dyn RngCore,
    ) -> Option<PeerId> {
        let weights: Vec<f64> = candidates.iter().map(|&p| view.reputation(p)).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = rand::Rng::gen_range(rng, 0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return Some(candidates[i]);
            }
            x -= w;
        }
        candidates
            .iter()
            .zip(&weights)
            .rev()
            .find(|(_, &w)| w > 0.0)
            .map(|(&p, _)| p)
    }
}

impl Mechanism for Reputation {
    fn clone_box(&self) -> Box<dyn Mechanism> {
        Box::new(*self)
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::Reputation
    }

    fn allocate(&mut self, view: &dyn SwarmView, budget: u64, rng: &mut dyn RngCore) -> Vec<Grant> {
        let candidates = interested_neighbors(view);
        if candidates.is_empty() {
            return Vec::new();
        }
        let altruism_budget = (budget as f64 * self.params.alpha_r).round() as u64;
        let reputation_budget = budget - altruism_budget.min(budget);

        let mut grants = Vec::new();
        // Reputation-weighted share. When nobody has any reputation yet
        // (system start) this share of bandwidth idles, matching the
        // bootstrapping weakness the paper attributes to reputation
        // systems.
        grants.extend(
            self.weighted
                .allocate(reputation_budget, view.piece_size(), &candidates, rng, |c, rng| {
                    Self::sample_by_reputation(view, c, rng)
                })
                .into_iter()
                .map(|(to, bytes)| Grant::new(to, bytes, GrantReason::Reputation)),
        );
        // Altruistic bootstrap share: uniformly random interested neighbor,
        // newcomers included.
        grants.extend(
            self.altruistic
                .allocate(altruism_budget, view.piece_size(), &candidates, rng, |c, rng| {
                    pick_random(c, rng)
                })
                .into_iter()
                .map(|(to, bytes)| Grant::new(to, bytes, GrantReason::Altruism)),
        );
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::fake::FakeView;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    fn params(alpha_r: f64) -> MechanismParams {
        MechanismParams {
            alpha_r,
            ..MechanismParams::default()
        }
    }

    #[test]
    fn splits_budget_between_reputation_and_altruism() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.reputations.insert(PeerId::new(1), 100.0);
        view.reputations.insert(PeerId::new(2), 100.0);
        let mut m = Reputation::new(params(0.2));
        let grants = m.allocate(&view, 10_000, &mut rng());
        let rep_bytes: u64 = grants
            .iter()
            .filter(|g| g.reason == GrantReason::Reputation)
            .map(|g| g.bytes)
            .sum();
        let alt_bytes: u64 = grants
            .iter()
            .filter(|g| g.reason == GrantReason::Altruism)
            .map(|g| g.bytes)
            .sum();
        assert_eq!(rep_bytes, 8000);
        assert_eq!(alt_bytes, 2000);
    }

    #[test]
    fn reputation_share_idles_when_nobody_has_reputation() {
        let view = FakeView::mutual(&[1, 2]);
        let mut m = Reputation::new(params(0.1));
        let grants = m.allocate(&view, 10_000, &mut rng());
        // Only the altruistic 10% is granted.
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert_eq!(total, 1000);
        assert!(grants
            .iter()
            .all(|g| g.reason == GrantReason::Altruism));
    }

    #[test]
    fn high_reputation_peers_receive_more() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.reputations.insert(PeerId::new(1), 900.0);
        view.reputations.insert(PeerId::new(2), 100.0);
        let mut m = Reputation::new(params(0.0));
        let mut r = rng();
        let mut received: HashMap<PeerId, u64> = HashMap::new();
        for _ in 0..200 {
            for g in m.allocate(&view, 1000, &mut r) {
                *received.entry(g.to).or_insert(0) += g.bytes;
            }
        }
        let hi = received.get(&PeerId::new(1)).copied().unwrap_or(0) as f64;
        let lo = received.get(&PeerId::new(2)).copied().unwrap_or(0) as f64;
        let share = hi / (hi + lo);
        assert!((share - 0.9).abs() < 0.08, "share = {share}");
    }

    #[test]
    fn altruism_share_reaches_zero_reputation_newcomers() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.reputations.insert(PeerId::new(1), 1000.0);
        // Peer 2 is a newcomer with zero reputation.
        let mut m = Reputation::new(params(0.5));
        let mut r = rng();
        let mut newcomer_bytes = 0u64;
        for _ in 0..100 {
            for g in m.allocate(&view, 1000, &mut r) {
                if g.to == PeerId::new(2) {
                    newcomer_bytes += g.bytes;
                }
            }
        }
        assert!(newcomer_bytes > 0, "newcomer must be bootstrappable");
    }

    #[test]
    fn empty_neighborhood_yields_nothing() {
        let mut view = FakeView::mutual(&[]);
        view.interest.clear();
        let mut m = Reputation::new(params(0.1));
        assert!(m.allocate(&view, 1000, &mut rng()).is_empty());
    }
}
