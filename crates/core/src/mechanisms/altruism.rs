//! Pure altruism.
//!
//! "With altruism, users instead upload to random neighbors at their full
//! upload capacity" (Section V-A). No reciprocity is attempted; the entire
//! budget is handed out in piece-size quanta to uniformly random interested
//! neighbors. This makes altruism the most efficient and fastest-
//! bootstrapping algorithm, and also the one whose entire capacity is
//! exploitable by free-riders (Table III).

use rand::RngCore;

use crate::mechanism::{Grant, GrantReason, Mechanism};
use crate::mechanisms::{interested_neighbors, pick_random, StickyTarget};
use crate::view::SwarmView;
use crate::MechanismKind;

/// The pure-altruism mechanism.
///
/// # Example
///
/// ```
/// use coop_incentives::mechanisms::Altruism;
/// use coop_incentives::Mechanism;
/// let m = Altruism::new();
/// assert_eq!(m.kind(), coop_incentives::MechanismKind::Altruism);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Altruism {
    sticky: StickyTarget,
}

impl Altruism {
    /// Creates the mechanism.
    pub fn new() -> Self {
        Altruism::default()
    }
}

impl Mechanism for Altruism {
    fn clone_box(&self) -> Box<dyn Mechanism> {
        Box::new(*self)
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::Altruism
    }

    fn allocate(&mut self, view: &dyn SwarmView, budget: u64, rng: &mut dyn RngCore) -> Vec<Grant> {
        let candidates = interested_neighbors(view);
        if candidates.is_empty() {
            return Vec::new();
        }
        self.sticky
            .allocate(budget, view.piece_size(), &candidates, rng, |c, rng| {
                pick_random(c, rng)
            })
            .into_iter()
            .map(|(to, bytes)| Grant::new(to, bytes, GrantReason::Altruism))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::fake::FakeView;
    use crate::PeerId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn spends_full_budget_in_piece_quanta() {
        let view = FakeView::mutual(&[1, 2, 3]);
        let mut m = Altruism::new();
        let grants = m.allocate(&view, 3500, &mut rng());
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert_eq!(total, 3500);
        assert!(grants.iter().all(|g| g.reason == GrantReason::Altruism));
        assert!(grants.iter().all(|g| g.condition.is_none()));
    }

    #[test]
    fn targets_only_interested_neighbors() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.interest.remove(&(PeerId::new(2), PeerId::new(0)));
        let mut m = Altruism::new();
        let grants = m.allocate(&view, 5000, &mut rng());
        assert!(grants.iter().all(|g| g.to == PeerId::new(1)));
    }

    #[test]
    fn no_interested_neighbors_means_no_grants() {
        let mut view = FakeView::mutual(&[1]);
        view.interest.clear();
        let mut m = Altruism::new();
        assert!(m.allocate(&view, 5000, &mut rng()).is_empty());
    }

    #[test]
    fn spreads_across_neighbors_over_time() {
        let view = FakeView::mutual(&[1, 2, 3, 4]);
        let mut m = Altruism::new();
        let mut r = rng();
        let mut seen = HashSet::new();
        for _ in 0..30 {
            for g in m.allocate(&view, 1000, &mut r) {
                seen.insert(g.to);
            }
        }
        assert_eq!(seen.len(), 4, "all neighbors should eventually receive");
    }

    #[test]
    fn zero_budget_yields_nothing() {
        let view = FakeView::mutual(&[1]);
        let mut m = Altruism::new();
        assert!(m.allocate(&view, 0, &mut rng()).is_empty());
    }
}
