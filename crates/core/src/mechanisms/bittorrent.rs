//! The BitTorrent-style reciprocity/altruism hybrid.
//!
//! "A fixed amount (e.g., 80%) of users' upload bandwidth is reserved for
//! reciprocity, which is enforced in a series of discrete timeslots. In
//! each timeslot, this bandwidth is used to upload data to a given number
//! of users from which the user has received the most data in the previous
//! timeslot. The remaining bandwidth is used for altruism, allowing
//! existing users to bootstrap newcomers." (Section III-A.)
//!
//! Concretely: the `1 − α_BT` tit-for-tat share is divided evenly among up
//! to `n_BT` top last-round contributors that are still interested; the
//! `α_BT` share goes to one uniformly random interested neighbor per round
//! (the optimistic unchoke). Tit-for-tat bandwidth with no eligible
//! contributor idles — which is exactly why BitTorrent bootstraps a flash
//! crowd slowly (Table II).

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::RngCore;

use crate::mechanism::{Grant, GrantReason, Mechanism, MechanismParams};
use crate::mechanisms::{interested_neighbors, pick_random, StickyTarget};
use crate::view::SwarmView;
use crate::MechanismKind;

/// The BitTorrent mechanism (tit-for-tat + optimistic unchoking).
///
/// # Example
///
/// ```
/// use coop_incentives::mechanisms::BitTorrent;
/// use coop_incentives::{Mechanism, MechanismParams};
/// let m = BitTorrent::new(MechanismParams::default());
/// assert_eq!(m.kind(), coop_incentives::MechanismKind::BitTorrent);
/// ```
#[derive(Clone, Debug)]
pub struct BitTorrent {
    params: MechanismParams,
    optimistic: StickyTarget,
    /// Exponentially smoothed per-neighbor download rates (bytes/round),
    /// the quantity real tit-for-tat ranks by.
    rates: HashMap<crate::PeerId, f64>,
    /// The current unchoke set, re-evaluated every [`UNCHOKE_PERIOD`]
    /// rounds as in real clients (10-second unchoke intervals).
    unchoked: Vec<crate::PeerId>,
    last_eval: Option<u64>,
}

/// Rounds between unchoke-set re-evaluations.
const UNCHOKE_PERIOD: u64 = 5;

/// EWMA smoothing factor for per-neighbor rates.
const RATE_ALPHA: f64 = 0.3;

impl BitTorrent {
    /// Creates the mechanism with the given `α_BT` and `n_BT`.
    pub fn new(params: MechanismParams) -> Self {
        BitTorrent {
            params,
            optimistic: StickyTarget::new(),
            rates: HashMap::new(),
            unchoked: Vec::new(),
            last_eval: None,
        }
    }

    fn reevaluate(&mut self, view: &dyn SwarmView, candidates: &[crate::PeerId], rng: &mut dyn RngCore) {
        let mut ranked: Vec<(crate::PeerId, f64)> = candidates
            .iter()
            .map(|&p| (p, self.rates.get(&p).copied().unwrap_or(0.0)))
            .filter(|&(_, r)| r > 0.0)
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("rates are finite")
                .then(a.0.cmp(&b.0))
        });
        self.unchoked = ranked
            .into_iter()
            .map(|(p, _)| p)
            .take(self.params.n_bt)
            .collect();
        // Free slots (ties all at zero — e.g. right after a flash crowd)
        // are filled with random interested neighbors, as a real client's
        // unchoke algorithm does when rates cannot break ties.
        if self.unchoked.len() < self.params.n_bt {
            let mut fill: Vec<crate::PeerId> = candidates
                .iter()
                .copied()
                .filter(|p| !self.unchoked.contains(p))
                .collect();
            fill.shuffle(rng);
            fill.truncate(self.params.n_bt - self.unchoked.len());
            self.unchoked.extend(fill);
        }
        self.last_eval = Some(view.round());
    }
}

impl Mechanism for BitTorrent {
    fn clone_box(&self) -> Box<dyn Mechanism> {
        Box::new(self.clone())
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::BitTorrent
    }

    fn on_round_end(&mut self, view: &dyn SwarmView) {
        for &p in view.neighbors() {
            let recv = view.ledger().received_this_round(p) as f64;
            let rate = self.rates.entry(p).or_insert(0.0);
            *rate = (1.0 - RATE_ALPHA) * *rate + RATE_ALPHA * recv;
        }
    }

    fn allocate(&mut self, view: &dyn SwarmView, budget: u64, rng: &mut dyn RngCore) -> Vec<Grant> {
        let candidates = interested_neighbors(view);
        if candidates.is_empty() {
            return Vec::new();
        }
        let altruism_budget = (budget as f64 * self.params.alpha_bt).round() as u64;
        let tft_budget = budget - altruism_budget.min(budget);

        let mut grants = Vec::new();

        // Tit-for-tat: up to n_BT top contributors by smoothed download
        // rate that still need something from us, each receiving an equal
        // share. The set is re-evaluated every UNCHOKE_PERIOD rounds.
        let due = match self.last_eval {
            None => true,
            Some(t) => view.round() >= t + UNCHOKE_PERIOD,
        };
        if due {
            self.reevaluate(view, &candidates, rng);
        }
        let unchoked: Vec<crate::PeerId> = self
            .unchoked
            .iter()
            .copied()
            .filter(|p| candidates.contains(p))
            .collect();
        if !unchoked.is_empty() && tft_budget > 0 {
            let share = tft_budget / unchoked.len() as u64;
            let mut leftover = tft_budget - share * unchoked.len() as u64;
            for p in unchoked {
                let extra = if leftover > 0 {
                    leftover -= 1;
                    1
                } else {
                    0
                };
                if share + extra > 0 {
                    grants.push(Grant::new(p, share + extra, GrantReason::TitForTat));
                }
            }
        }

        // Optimistic unchoke: the altruistic share to a random interested
        // neighbor ("users upload to random neighbors with a 20%
        // probability"), sticking with the target until a full piece has
        // been granted so sub-piece budgets do not scatter.
        if altruism_budget > 0 {
            grants.extend(
                self.optimistic
                    .allocate(altruism_budget, view.piece_size(), &candidates, rng, |c, rng| {
                        pick_random(c, rng)
                    })
                    .into_iter()
                    .map(|(to, bytes)| Grant::new(to, bytes, GrantReason::OptimisticUnchoke)),
            );
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::fake::FakeView;
    use crate::PeerId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    fn bt(alpha: f64, n: usize) -> BitTorrent {
        BitTorrent::new(MechanismParams {
            alpha_bt: alpha,
            n_bt: n,
            ..MechanismParams::default()
        })
    }

    #[test]
    fn no_contributors_fills_slots_randomly() {
        // No last-round contributors: all ties at zero, so the tit-for-tat
        // slots are filled with random interested neighbors and the budget
        // is fully spent.
        let view = FakeView::mutual(&[1, 2, 3]);
        let mut m = bt(0.2, 4);
        let grants = m.allocate(&view, 10_000, &mut rng());
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert_eq!(total, 10_000);
        let opt: u64 = grants
            .iter()
            .filter(|g| g.reason == GrantReason::OptimisticUnchoke)
            .map(|g| g.bytes)
            .sum();
        assert_eq!(opt, 2000);
    }

    #[test]
    fn tft_splits_evenly_among_top_contributors() {
        let mut view = FakeView::mutual(&[1, 2, 3, 4, 5]);
        for (i, bytes) in [(1u32, 500u64), (2, 400), (3, 300), (4, 200), (5, 100)] {
            view.ledger.record_received(PeerId::new(i), bytes);
        }
        let mut m = bt(0.2, 4);
        m.on_round_end(&view); // feed the rate tracker
        let grants = m.allocate(&view, 10_000, &mut rng());
        let tft: Vec<&Grant> = grants
            .iter()
            .filter(|g| g.reason == GrantReason::TitForTat)
            .collect();
        assert_eq!(tft.len(), 4);
        // Top 4 contributors are peers 1–4; peer 5 is choked.
        let targets: Vec<PeerId> = tft.iter().map(|g| g.to).collect();
        assert!(targets.contains(&PeerId::new(1)));
        assert!(!targets.contains(&PeerId::new(5)));
        assert!(tft.iter().all(|g| g.bytes == 2000));
    }

    #[test]
    fn uninterested_contributors_are_skipped() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.ledger.record_received(PeerId::new(1), 500);
        view.ledger.record_received(PeerId::new(2), 400);
        let mut m = bt(0.0, 4);
        m.on_round_end(&view);
        // Peer 1 completed its download: no longer interested in us.
        view.interest.remove(&(PeerId::new(1), PeerId::new(0)));
        let grants = m.allocate(&view, 1000, &mut rng());
        assert!(grants.iter().all(|g| g.to == PeerId::new(2)));
    }

    #[test]
    fn budget_fully_accounted_when_contributors_exist() {
        let mut view = FakeView::mutual(&[1, 2, 3]);
        for i in 1..=3u32 {
            view.ledger.record_received(PeerId::new(i), 100 * i as u64);
        }
        let mut m = bt(0.2, 4);
        m.on_round_end(&view);
        let grants = m.allocate(&view, 9_999, &mut rng());
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert_eq!(total, 9_999);
    }

    #[test]
    fn zero_alpha_means_no_optimistic_unchoke() {
        let view = FakeView::mutual(&[1]);
        let mut m = bt(0.0, 4);
        let grants = m.allocate(&view, 1000, &mut rng());
        assert!(grants
            .iter()
            .all(|g| g.reason != GrantReason::OptimisticUnchoke));
    }

    #[test]
    fn all_grants_unconditional() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.ledger.record_received(PeerId::new(1), 10);
        let mut m = bt(0.5, 2);
        m.on_round_end(&view);
        for g in m.allocate(&view, 1000, &mut rng()) {
            assert!(g.condition.is_none());
        }
    }
}
