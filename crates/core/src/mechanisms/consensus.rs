//! Quorum-consensus reputation with bans — beyond the paper.
//!
//! The paper's `Reputation` mechanism trusts a pre-seeded EigenTrust root
//! set: whoever the operator anoints stays load-bearing forever, and
//! "Building Better Incentives for Robustness in BitTorrent" (PAPERS.md)
//! shows such static defenses fall to strategic under-reporting and
//! collusion. `ConsensusReputation` removes the trusted root: every round
//! each peer submits transfer reports (upload claims and receipt
//! acknowledgments), and a deterministic quorum aggregation — run by the
//! swarm, sharded over peer ranges — cross-checks each claim against its
//! counterpart report. Matching pairs credit the uploader's consensus
//! score; mismatches are disputes whose strike lands on the uncorroborated
//! side (a claim backed by at least `quorum` matching counterpart reports
//! is believed). Strikes decay multiplicatively per round; crossing the
//! ban threshold triggers a temporary ban, and a second crossing a
//! permanent one. Banned peers are evicted from every candidate set.
//!
//! The mechanism object itself stays small: allocation is
//! reputation-weighted sampling over consensus scores with an `α_R`
//! altruistic bootstrap share (the same probabilistic interpretation as
//! [`Reputation`](crate::mechanisms::Reputation)), while the cross-peer
//! machinery — report collection, aggregation, strikes, bans — lives in
//! the swarm and is switched on by [`Mechanism::consensus_policy`].

use rand::RngCore;

use crate::mechanism::{ConsensusPolicy, Grant, GrantReason, Mechanism, MechanismParams};
use crate::mechanisms::{interested_neighbors, pick_random, StickyTarget};
use crate::view::SwarmView;
use crate::{MechanismKind, PeerId};

/// The consensus-reputation mechanism.
///
/// # Example
///
/// ```
/// use coop_incentives::mechanisms::ConsensusReputation;
/// use coop_incentives::{Mechanism, MechanismParams};
/// let m = ConsensusReputation::new(MechanismParams::default());
/// assert_eq!(m.kind(), coop_incentives::MechanismKind::ConsensusReputation);
/// assert!(m.consensus_policy().is_some());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ConsensusReputation {
    params: MechanismParams,
    weighted: StickyTarget,
    altruistic: StickyTarget,
}

impl ConsensusReputation {
    /// Creates the mechanism with the given parameters (`α_R` plus the
    /// `consensus_*` defense knobs).
    pub fn new(params: MechanismParams) -> Self {
        ConsensusReputation {
            params,
            weighted: StickyTarget::new(),
            altruistic: StickyTarget::new(),
        }
    }

    fn sample_by_score(
        view: &dyn SwarmView,
        candidates: &[PeerId],
        rng: &mut dyn RngCore,
    ) -> Option<PeerId> {
        let weights: Vec<f64> = candidates.iter().map(|&p| view.reputation(p)).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = rand::Rng::gen_range(rng, 0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return Some(candidates[i]);
            }
            x -= w;
        }
        candidates
            .iter()
            .zip(&weights)
            .rev()
            .find(|(_, &w)| w > 0.0)
            .map(|(&p, _)| p)
    }
}

impl Mechanism for ConsensusReputation {
    fn clone_box(&self) -> Box<dyn Mechanism> {
        Box::new(*self)
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::ConsensusReputation
    }

    fn consensus_policy(&self) -> Option<ConsensusPolicy> {
        Some(ConsensusPolicy::from_params(&self.params))
    }

    fn allocate(&mut self, view: &dyn SwarmView, budget: u64, rng: &mut dyn RngCore) -> Vec<Grant> {
        // Banned peers never appear among the candidates: the swarm evicts
        // them from the adjacency before allocation runs.
        let candidates = interested_neighbors(view);
        if candidates.is_empty() {
            return Vec::new();
        }
        let altruism_budget = (budget as f64 * self.params.alpha_r).round() as u64;
        let score_budget = budget - altruism_budget.min(budget);

        let mut grants = Vec::new();
        // Consensus-score-weighted share. Scores start at zero for
        // everyone (no pre-trusted root), so this share idles at system
        // start until confirmed transfers seed the table.
        grants.extend(
            self.weighted
                .allocate(score_budget, view.piece_size(), &candidates, rng, |c, rng| {
                    Self::sample_by_score(view, c, rng)
                })
                .into_iter()
                .map(|(to, bytes)| Grant::new(to, bytes, GrantReason::Reputation)),
        );
        // Altruistic bootstrap share: uniformly random interested
        // neighbor, zero-score newcomers included.
        grants.extend(
            self.altruistic
                .allocate(altruism_budget, view.piece_size(), &candidates, rng, |c, rng| {
                    pick_random(c, rng)
                })
                .into_iter()
                .map(|(to, bytes)| Grant::new(to, bytes, GrantReason::Altruism)),
        );
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::fake::FakeView;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(23)
    }

    #[test]
    fn splits_budget_between_score_and_altruism() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.reputations.insert(PeerId::new(1), 500.0);
        view.reputations.insert(PeerId::new(2), 500.0);
        let params = MechanismParams {
            alpha_r: 0.25,
            ..MechanismParams::default()
        };
        let mut m = ConsensusReputation::new(params);
        let grants = m.allocate(&view, 8_000, &mut rng());
        let score_bytes: u64 = grants
            .iter()
            .filter(|g| g.reason == GrantReason::Reputation)
            .map(|g| g.bytes)
            .sum();
        let alt_bytes: u64 = grants
            .iter()
            .filter(|g| g.reason == GrantReason::Altruism)
            .map(|g| g.bytes)
            .sum();
        assert_eq!(score_bytes, 6000);
        assert_eq!(alt_bytes, 2000);
    }

    #[test]
    fn score_share_idles_without_any_consensus_credit() {
        let view = FakeView::mutual(&[1, 2]);
        let params = MechanismParams {
            alpha_r: 0.1,
            ..MechanismParams::default()
        };
        let mut m = ConsensusReputation::new(params);
        let grants = m.allocate(&view, 10_000, &mut rng());
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert_eq!(total, 1000);
        assert!(grants.iter().all(|g| g.reason == GrantReason::Altruism));
    }

    #[test]
    fn policy_reflects_params() {
        let params = MechanismParams {
            consensus_quorum: 5,
            consensus_ban_threshold: 7,
            consensus_decay: 0.75,
            consensus_temp_ban_rounds: 32,
            ..MechanismParams::default()
        };
        let m = ConsensusReputation::new(params);
        let p = m.consensus_policy().unwrap();
        assert_eq!(p.quorum, 5);
        assert_eq!(p.ban_threshold, 7);
        assert_eq!(p.decay, 0.75);
        assert_eq!(p.temp_ban_rounds, 32);
    }

    #[test]
    fn empty_neighborhood_yields_nothing() {
        let mut view = FakeView::mutual(&[]);
        view.interest.clear();
        let mut m = ConsensusReputation::new(MechanismParams::default());
        assert!(m.allocate(&view, 1000, &mut rng()).is_empty());
    }
}
