//! Pure direct reciprocity.
//!
//! Users "upload only to the neighbor that has contributed the most to
//! them" (Section V-A) and never initiate exchanges: every upload must be
//! covered by outstanding credit (bytes received minus bytes returned).
//! Since no peer can make the first move, the analysis (Lemma 2) shows that
//! no peer-to-peer uploads ever occur — the algorithm is maximally fair and
//! maximally inefficient, and the simulator reproduces exactly that.

use rand::RngCore;

use crate::mechanism::{Grant, GrantReason, Mechanism};
use crate::view::SwarmView;
use crate::MechanismKind;

/// The pure-reciprocity mechanism.
///
/// # Example
///
/// ```
/// use coop_incentives::mechanisms::Reciprocity;
/// use coop_incentives::Mechanism;
/// let m = Reciprocity::new();
/// assert_eq!(m.kind(), coop_incentives::MechanismKind::Reciprocity);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Reciprocity {
    _private: (),
}

impl Reciprocity {
    /// Creates the mechanism.
    pub fn new() -> Self {
        Reciprocity { _private: () }
    }
}

impl Mechanism for Reciprocity {
    fn clone_box(&self) -> Box<dyn Mechanism> {
        Box::new(*self)
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::Reciprocity
    }

    // Settlement cadence: the default `SettleCadence::PerTransfer`. The
    // credit ledger this mechanism reads is mutated only by the driver's
    // single settlement entry point (`settle_transfer` /
    // `settle_round_boundary` in the simulator) — mechanisms must not
    // mutate ledgers directly; epoch-settled inputs go through the
    // `on_epoch_close` cadence hook instead.

    // `allocate` reads only the ledger and interest bits and never draws
    // RNG or mutates `self` (the struct has no fields) — in the paper's
    // regime it returns nothing forever, so skipping grantless peers
    // until their credit or interest changes is what lets the dirty-set
    // round loop collapse pure-reciprocity cells.
    fn allocate_is_memoryless(&self) -> bool {
        true
    }

    fn allocate(
        &mut self,
        view: &dyn SwarmView,
        budget: u64,
        _rng: &mut dyn RngCore,
    ) -> Vec<Grant> {
        // Upload only against positive credit, preferring the neighbor with
        // the most unreturned contribution. With nobody willing to initiate,
        // credit stays zero forever and this returns nothing — the paper's
        // "no upload can be initiated because a reciprocal download is not
        // guaranteed".
        let ledger = view.ledger();
        let mut creditors: Vec<(u64, crate::PeerId)> = view
            .neighbors()
            .iter()
            .copied()
            .filter(|&p| view.peer_needs_from_me(p))
            .map(|p| (ledger.credit(p), p))
            .filter(|&(c, _)| c > 0)
            .collect();
        // Most generous creditor first; deterministic tie-break by id.
        creditors.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut grants = Vec::new();
        let mut remaining = budget;
        for (credit, peer) in creditors {
            if remaining == 0 {
                break;
            }
            let bytes = credit.min(remaining);
            if bytes == 0 {
                continue;
            }
            remaining -= bytes;
            grants.push(Grant::new(peer, bytes, GrantReason::Reciprocity));
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::fake::FakeView;
    use crate::PeerId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    #[test]
    fn uploads_nothing_without_credit() {
        let view = FakeView::mutual(&[1, 2, 3]);
        let mut m = Reciprocity::new();
        assert!(m.allocate(&view, 10_000, &mut rng()).is_empty());
    }

    #[test]
    fn reciprocates_up_to_credit() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.ledger.record_received(PeerId::new(1), 1500);
        let mut m = Reciprocity::new();
        let grants = m.allocate(&view, 10_000, &mut rng());
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].to, PeerId::new(1));
        assert_eq!(grants[0].bytes, 1500);
        assert_eq!(grants[0].reason, GrantReason::Reciprocity);
    }

    #[test]
    fn budget_caps_reciprocation() {
        let mut view = FakeView::mutual(&[1]);
        view.ledger.record_received(PeerId::new(1), 5000);
        let mut m = Reciprocity::new();
        let grants = m.allocate(&view, 2000, &mut rng());
        assert_eq!(grants[0].bytes, 2000);
    }

    #[test]
    fn prefers_largest_creditor() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.ledger.record_received(PeerId::new(1), 100);
        view.ledger.record_received(PeerId::new(2), 900);
        let mut m = Reciprocity::new();
        let grants = m.allocate(&view, 500, &mut rng());
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].to, PeerId::new(2));
        assert_eq!(grants[0].bytes, 500);
    }

    #[test]
    fn skips_uninterested_creditors() {
        let mut view = FakeView::mutual(&[1]);
        view.ledger.record_received(PeerId::new(1), 100);
        // Peer 1 no longer needs anything from us.
        view.interest.remove(&(PeerId::new(1), PeerId::new(0)));
        let mut m = Reciprocity::new();
        assert!(m.allocate(&view, 1000, &mut rng()).is_empty());
    }

    #[test]
    fn total_never_exceeds_budget() {
        let mut view = FakeView::mutual(&[1, 2, 3]);
        for i in 1..=3 {
            view.ledger.record_received(PeerId::new(i), 700);
        }
        let mut m = Reciprocity::new();
        let grants = m.allocate(&view, 1000, &mut rng());
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert!(total <= 1000);
    }
}
