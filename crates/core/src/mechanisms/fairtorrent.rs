//! The FairTorrent-style reputation/altruism hybrid.
//!
//! "Each user maintains a deficit counter of the total number of pieces
//! uploaded to, less those received from, each other user. These counters
//! function as local reputation scores: users always upload to the client
//! with the smallest deficit counter, i.e., from whom they have received
//! the most pieces without reciprocation. However, if all deficit counters
//! are nonnegative, users upload to randomly chosen users with zero
//! reputations, including newcomers." (Section III-A.)
//!
//! Each piece-size quantum goes to the interested neighbor with the lowest
//! deficit; ties (typically many zero-deficit neighbors, e.g. right after a
//! flash crowd) are broken uniformly at random, which is what makes
//! FairTorrent bootstrap almost as fast as altruism (Table II) — and also
//! what free-riders with fresh identities exploit (whitewashing).

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::RngCore;

use crate::mechanism::{Grant, GrantReason, Mechanism};
use crate::mechanisms::{interested_neighbors, StickyTarget};
use crate::view::SwarmView;
use crate::{MechanismKind, PeerId};

/// The FairTorrent mechanism (lowest-deficit-first uploads).
///
/// # Example
///
/// ```
/// use coop_incentives::mechanisms::FairTorrent;
/// use coop_incentives::Mechanism;
/// let m = FairTorrent::new();
/// assert_eq!(m.kind(), coop_incentives::MechanismKind::FairTorrent);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FairTorrent {
    sticky: StickyTarget,
}

impl FairTorrent {
    /// Creates the mechanism.
    pub fn new() -> Self {
        FairTorrent::default()
    }
}

impl Mechanism for FairTorrent {
    fn clone_box(&self) -> Box<dyn Mechanism> {
        Box::new(*self)
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::FairTorrent
    }

    // Settlement cadence: the default `SettleCadence::PerTransfer`. The
    // deficit counters this mechanism ranks by are mutated only by the
    // driver's single settlement entry point (`settle_transfer` in the
    // simulator), never here; epoch-settled inputs go through the
    // `on_epoch_close` cadence hook instead.

    fn allocate(&mut self, view: &dyn SwarmView, budget: u64, rng: &mut dyn RngCore) -> Vec<Grant> {
        let candidates = interested_neighbors(view);
        if candidates.is_empty() {
            return Vec::new();
        }
        // Each piece goes to the interested neighbor with the lowest
        // deficit at the moment the piece is chosen; the target then stays
        // fixed until the full piece has been granted (deficits move
        // byte-by-byte, and re-deciding every round would scatter partial
        // transfers). A local shadow makes pieces granted earlier in the
        // same call shift later choices.
        let mut planned: HashMap<PeerId, i64> = HashMap::new();
        let deficits = view.deficits();
        let piece = view.piece_size();
        let chunks = self.sticky.allocate(budget, piece, &candidates, rng, |c, rng| {
            let min = c
                .iter()
                .map(|&p| deficits.deficit(p) + planned.get(&p).copied().unwrap_or(0))
                .min()?;
            let lowest: Vec<PeerId> = c
                .iter()
                .copied()
                .filter(|&p| deficits.deficit(p) + planned.get(&p).copied().unwrap_or(0) == min)
                .collect();
            let to = *lowest.choose(rng)?;
            *planned.entry(to).or_insert(0) += piece as i64;
            Some(to)
        });
        chunks
            .into_iter()
            .map(|(to, bytes)| Grant::new(to, bytes, GrantReason::Deficit))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::fake::FakeView;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    #[test]
    fn repays_debts_first() {
        let mut view = FakeView::mutual(&[1, 2]);
        // We owe peer 2 (they sent us 3000 bytes unreciprocated).
        view.deficits.on_received(PeerId::new(2), 3000);
        let mut m = FairTorrent::new();
        let grants = m.allocate(&view, 2000, &mut rng());
        assert!(grants.iter().all(|g| g.to == PeerId::new(2)));
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert_eq!(total, 2000);
    }

    #[test]
    fn within_round_shadowing_rotates_targets() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.deficits.on_received(PeerId::new(1), 1000);
        view.deficits.on_received(PeerId::new(2), 1000);
        let mut m = FairTorrent::new();
        // Budget of two pieces: after repaying one peer, its shadowed
        // deficit reaches 0 while the other is still −1000, so the second
        // quantum must go to the other peer.
        let grants = m.allocate(&view, 2000, &mut rng());
        let targets: HashSet<PeerId> = grants.iter().map(|g| g.to).collect();
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn zero_deficit_newcomers_are_served() {
        let view = FakeView::mutual(&[1, 2, 3]);
        let mut m = FairTorrent::new();
        let grants = m.allocate(&view, 1000, &mut rng());
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].reason, GrantReason::Deficit);
    }

    #[test]
    fn positive_deficit_peers_served_last() {
        let mut view = FakeView::mutual(&[1, 2]);
        // We already over-served peer 1.
        view.deficits.on_sent(PeerId::new(1), 5000);
        let mut m = FairTorrent::new();
        let grants = m.allocate(&view, 1000, &mut rng());
        assert_eq!(grants[0].to, PeerId::new(2));
    }

    #[test]
    fn budget_spent_exactly() {
        let view = FakeView::mutual(&[1, 2, 3]);
        let mut m = FairTorrent::new();
        let grants = m.allocate(&view, 4_750, &mut rng());
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert_eq!(total, 4_750);
    }

    #[test]
    fn no_candidates_no_grants() {
        let mut view = FakeView::mutual(&[1]);
        view.interest.clear();
        let mut m = FairTorrent::new();
        assert!(m.allocate(&view, 1000, &mut rng()).is_empty());
    }
}
