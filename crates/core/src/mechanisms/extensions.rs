//! BitTorrent variants from the paper's related work: **PropShare**
//! (Levin et al. \[5\] — "BitTorrent is an auction") and **BitTyrant**
//! (Piatek et al. \[6\] — "Do incentives build robustness in BitTorrent").
//!
//! The paper cites both as attempts to reduce BitTorrent's free-riding by
//! changing how the reciprocal bandwidth share is divided:
//!
//! * **PropShare** splits the reciprocal share *proportionally* to each
//!   neighbor's recent contribution instead of equally among the top
//!   `n_BT` — an auction where bids are last-period contributions. A
//!   free-rider's bid is zero, so it can win only the optimistic share.
//! * **BitTyrant** is the *strategic* client: it estimates, per neighbor,
//!   the expected return rate and the minimum upload needed to stay
//!   unchoked, then funds neighbors greedily by return-on-investment. It
//!   contributes no deliberate altruism at all — which is why a swarm of
//!   BitTyrants bootstraps poorly (the behavior the original paper
//!   reported as "BitTyrant improves individual download times but can
//!   degrade the swarm").
//!
//! Both report [`MechanismKind::BitTorrent`] (they speak the same
//! protocol); the experiment harness compares them against stock
//! BitTorrent in `ablations`.

use std::collections::HashMap;

use rand::RngCore;

use crate::mechanism::{Grant, GrantReason, Mechanism, MechanismParams};
use crate::mechanisms::{interested_neighbors, pick_random, StickyTarget};
use crate::view::SwarmView;
use crate::{MechanismKind, PeerId};

/// EWMA smoothing factor for contribution estimates.
const RATE_ALPHA: f64 = 0.3;

/// The PropShare client: reciprocal bandwidth divided proportionally to
/// smoothed contributions; the `α_BT` share stays optimistic.
///
/// # Example
///
/// ```
/// use coop_incentives::mechanisms::extensions::PropShare;
/// use coop_incentives::{Mechanism, MechanismParams};
/// let m = PropShare::new(MechanismParams::default());
/// assert_eq!(m.kind(), coop_incentives::MechanismKind::BitTorrent);
/// ```
#[derive(Clone, Debug)]
pub struct PropShare {
    params: MechanismParams,
    rates: HashMap<PeerId, f64>,
    optimistic: StickyTarget,
}

impl PropShare {
    /// Creates the mechanism.
    pub fn new(params: MechanismParams) -> Self {
        PropShare {
            params,
            rates: HashMap::new(),
            optimistic: StickyTarget::new(),
        }
    }
}

impl Mechanism for PropShare {
    fn clone_box(&self) -> Box<dyn Mechanism> {
        Box::new(self.clone())
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::BitTorrent
    }

    fn on_round_end(&mut self, view: &dyn SwarmView) {
        for &p in view.neighbors() {
            let recv = view.ledger().received_this_round(p) as f64;
            let rate = self.rates.entry(p).or_insert(0.0);
            *rate = (1.0 - RATE_ALPHA) * *rate + RATE_ALPHA * recv;
        }
    }

    fn allocate(&mut self, view: &dyn SwarmView, budget: u64, rng: &mut dyn RngCore) -> Vec<Grant> {
        let candidates = interested_neighbors(view);
        if candidates.is_empty() {
            return Vec::new();
        }
        let altruism_budget = (budget as f64 * self.params.alpha_bt).round() as u64;
        let prop_budget = budget - altruism_budget.min(budget);

        let mut grants = Vec::new();
        // Proportional division among contributing, interested neighbors.
        let contributors: Vec<(PeerId, f64)> = candidates
            .iter()
            .filter_map(|&p| {
                let r = self.rates.get(&p).copied().unwrap_or(0.0);
                (r > 0.0).then_some((p, r))
            })
            .collect();
        let total_rate: f64 = contributors.iter().map(|&(_, r)| r).sum();
        if total_rate > 0.0 && prop_budget > 0 {
            let mut assigned = 0u64;
            for (i, &(p, r)) in contributors.iter().enumerate() {
                let bytes = if i + 1 == contributors.len() {
                    prop_budget - assigned
                } else {
                    (prop_budget as f64 * r / total_rate).floor() as u64
                };
                assigned += bytes;
                if bytes > 0 {
                    grants.push(Grant::new(p, bytes, GrantReason::TitForTat));
                }
            }
        }
        // The optimistic share discovers new contributors.
        if altruism_budget > 0 {
            grants.extend(
                self.optimistic
                    .allocate(altruism_budget, view.piece_size(), &candidates, rng, |c, rng| {
                        pick_random(c, rng)
                    })
                    .into_iter()
                    .map(|(to, bytes)| Grant::new(to, bytes, GrantReason::OptimisticUnchoke)),
            );
        }
        grants
    }
}

/// Per-neighbor BitTyrant estimates.
#[derive(Clone, Copy, Debug)]
struct TyrantEstimate {
    /// Expected return rate (bytes/round, EWMA of what they send us).
    expected_return: f64,
    /// Our current estimate of the minimum upload (bytes/round) that keeps
    /// them reciprocating.
    required_upload: f64,
    /// Consecutive rounds they kept reciprocating while funded.
    streak: u32,
}

/// The BitTyrant strategic client: greedy return-on-investment unchoking
/// with adaptive per-neighbor funding levels and **no** altruistic share.
///
/// # Example
///
/// ```
/// use coop_incentives::mechanisms::extensions::BitTyrant;
/// use coop_incentives::{Mechanism, MechanismParams};
/// let m = BitTyrant::new(MechanismParams::default());
/// assert_eq!(m.kind(), coop_incentives::MechanismKind::BitTorrent);
/// ```
#[derive(Clone, Debug)]
pub struct BitTyrant {
    estimates: HashMap<PeerId, TyrantEstimate>,
    /// What we funded each neighbor last round (to judge reciprocation).
    funded_last_round: HashMap<PeerId, u64>,
    default_required: f64,
}

impl BitTyrant {
    /// Creates the mechanism. `params` is accepted for interface symmetry;
    /// BitTyrant ignores `α_BT` (it runs no optimistic unchoking).
    pub fn new(_params: MechanismParams) -> Self {
        BitTyrant {
            estimates: HashMap::new(),
            funded_last_round: HashMap::new(),
            default_required: 0.0,
        }
    }
}

impl Mechanism for BitTyrant {
    fn clone_box(&self) -> Box<dyn Mechanism> {
        Box::new(self.clone())
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::BitTorrent
    }

    fn on_round_end(&mut self, view: &dyn SwarmView) {
        let piece = view.piece_size() as f64;
        if self.default_required == 0.0 {
            self.default_required = piece;
        }
        for &p in view.neighbors() {
            let recv = view.ledger().received_this_round(p) as f64;
            let funded = self.funded_last_round.get(&p).copied().unwrap_or(0);
            let e = self.estimates.entry(p).or_insert(TyrantEstimate {
                expected_return: 0.0,
                required_upload: piece,
                streak: 0,
            });
            e.expected_return = (1.0 - RATE_ALPHA) * e.expected_return + RATE_ALPHA * recv;
            if funded > 0 {
                if recv > 0.0 {
                    // They reciprocated: try paying less next time (the
                    // tyrant's signature move).
                    e.streak += 1;
                    if e.streak >= 3 {
                        e.required_upload = (e.required_upload * 0.9).max(piece * 0.1);
                        e.streak = 0;
                    }
                } else {
                    // Funded but no return: raise the estimate.
                    e.required_upload *= 1.2;
                    e.streak = 0;
                }
            }
        }
        self.funded_last_round.clear();
    }

    fn allocate(&mut self, view: &dyn SwarmView, budget: u64, rng: &mut dyn RngCore) -> Vec<Grant> {
        let candidates = interested_neighbors(view);
        if candidates.is_empty() {
            return Vec::new();
        }
        let piece = view.piece_size() as f64;
        // Rank by return-on-investment; unknown neighbors get an
        // exploratory default (otherwise nobody would ever be funded).
        let mut ranked: Vec<(PeerId, f64, f64)> = candidates
            .iter()
            .map(|&p| {
                let e = self.estimates.get(&p);
                let ret = e.map_or(piece * 0.5, |e| e.expected_return.max(piece * 0.05));
                let req = e.map_or(piece, |e| e.required_upload).max(1.0);
                (p, ret / req, req)
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite ROI")
                .then(a.0.cmp(&b.0))
        });
        // Fund proven reciprocators greedily; peers whose ROI has sunk
        // below the cutoff (serial non-reciprocators) get at most one
        // capped exploration grant per round — the tyrant does not keep
        // paying bad investments, and never pays them more than a piece.
        let _ = rng;
        const ROI_CUTOFF: f64 = 0.25;
        let mut grants = Vec::new();
        let mut remaining = budget;
        let mut explored = false;
        for (p, roi, req) in ranked {
            if remaining == 0 {
                break;
            }
            let bytes = if roi >= ROI_CUTOFF {
                (req.ceil() as u64).min(remaining)
            } else if !explored {
                explored = true;
                (piece.ceil() as u64).min(remaining)
            } else {
                continue;
            };
            if bytes == 0 {
                continue;
            }
            remaining -= bytes;
            self.funded_last_round.insert(p, bytes);
            grants.push(Grant::new(p, bytes, GrantReason::TitForTat));
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::fake::FakeView;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(17)
    }

    #[test]
    fn propshare_divides_proportionally() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.ledger.record_received(PeerId::new(1), 300);
        view.ledger.record_received(PeerId::new(2), 100);
        let mut m = PropShare::new(MechanismParams {
            alpha_bt: 0.0,
            ..MechanismParams::default()
        });
        m.on_round_end(&view);
        let grants = m.allocate(&view, 4000, &mut rng());
        let to = |i: u32| -> u64 {
            grants
                .iter()
                .filter(|g| g.to == PeerId::new(i))
                .map(|g| g.bytes)
                .sum()
        };
        assert_eq!(to(1) + to(2), 4000);
        assert_eq!(to(1), 3000, "3:1 contribution ratio → 3:1 bandwidth");
        assert_eq!(to(2), 1000);
    }

    #[test]
    fn propshare_gives_freeriders_only_the_optimistic_share() {
        let mut view = FakeView::mutual(&[1, 2]);
        // Only peer 1 contributes; peer 2 is a free-rider.
        view.ledger.record_received(PeerId::new(1), 500);
        let mut m = PropShare::new(MechanismParams {
            alpha_bt: 0.2,
            ..MechanismParams::default()
        });
        m.on_round_end(&view);
        let mut freerider_tft = 0u64;
        let mut r = rng();
        for _ in 0..50 {
            for g in m.allocate(&view, 1000, &mut r) {
                if g.to == PeerId::new(2) && g.reason == GrantReason::TitForTat {
                    freerider_tft += g.bytes;
                }
            }
        }
        assert_eq!(freerider_tft, 0, "zero bid wins zero auction bandwidth");
    }

    #[test]
    fn propshare_idles_reciprocal_share_without_contributors() {
        let view = FakeView::mutual(&[1]);
        let mut m = PropShare::new(MechanismParams {
            alpha_bt: 0.2,
            ..MechanismParams::default()
        });
        let grants = m.allocate(&view, 1000, &mut rng());
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert_eq!(total, 200, "only the optimistic 20% moves");
    }

    #[test]
    fn bittyrant_funds_best_roi_first() {
        let mut view = FakeView::mutual(&[1, 2]);
        view.piece_size = 1000;
        let mut m = BitTyrant::new(MechanismParams::default());
        // Peer 1 returns a lot; peer 2 returns nothing while funded.
        view.ledger.record_received(PeerId::new(1), 2000);
        m.allocate(&view, 2000, &mut rng()); // fund both once
        m.on_round_end(&view);
        let grants = m.allocate(&view, 1000, &mut rng());
        assert_eq!(grants[0].to, PeerId::new(1), "best ROI funded first");
    }

    #[test]
    fn bittyrant_lowers_payment_to_reliable_reciprocators() {
        let mut view = FakeView::mutual(&[1]);
        view.piece_size = 1000;
        let mut m = BitTyrant::new(MechanismParams::default());
        for _ in 0..12 {
            let grants = m.allocate(&view, 1000, &mut rng());
            assert!(!grants.is_empty());
            view.ledger.record_received(PeerId::new(1), 800);
            m.on_round_end(&view);
            // Roll the fake ledger window like the simulator does.
            view.ledger.end_round();
        }
        let e = m.estimates[&PeerId::new(1)];
        assert!(
            e.required_upload < 1000.0,
            "payment should have been squeezed below one piece: {}",
            e.required_upload
        );
    }

    #[test]
    fn bittyrant_raises_payment_when_snubbed() {
        let mut view = FakeView::mutual(&[1]);
        view.piece_size = 1000;
        let mut m = BitTyrant::new(MechanismParams::default());
        m.allocate(&view, 1000, &mut rng());
        m.on_round_end(&view); // funded, no return
        let e = m.estimates[&PeerId::new(1)];
        assert!(e.required_upload > 1000.0);
    }

    #[test]
    fn bittyrant_never_overspends() {
        let view = FakeView::mutual(&[1, 2, 3]);
        let mut m = BitTyrant::new(MechanismParams::default());
        let grants = m.allocate(&view, 1500, &mut rng());
        let total: u64 = grants.iter().map(|g| g.bytes).sum();
        assert!(total <= 1500);
    }
}
