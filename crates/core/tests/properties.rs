//! Property-based tests for the analytical model and metrics: the paper's
//! inequalities must hold over randomized inputs, not just hand-picked
//! examples.

use coop_incentives::analysis::bootstrap::{bootstrap_probability, BootstrapParams};
use coop_incentives::analysis::capacity::CapacityVector;
use coop_incentives::analysis::combin::{ln_choose, ln_gamma};
use coop_incentives::analysis::equilibrium::{
    download_rates, equilibrium_summary, optimal_download_rates, EquilibriumParams,
};
use coop_incentives::analysis::exchange::{pi_bt, pi_dr, pi_tc, q, PieceCountDistribution};
use coop_incentives::metrics::{
    avg_fairness_ratio, efficiency_from_rates, fairness_stat, jain_index, Cdf,
};
use coop_incentives::MechanismKind;
use proptest::prelude::*;

fn capacity_strategy() -> impl Strategy<Value = CapacityVector> {
    proptest::collection::vec(1.0f64..1000.0, 3..40)
        .prop_map(|v| CapacityVector::new(v).expect("positive"))
}

proptest! {
    /// Lemma 1: the equal-split allocation minimizes E among all the
    /// algorithms' equilibria.
    #[test]
    fn lemma1_optimum_dominates(caps in capacity_strategy()) {
        let params = EquilibriumParams::default();
        let e_opt = efficiency_from_rates(&optimal_download_rates(&caps, 0.0));
        for kind in MechanismKind::ALL {
            let s = equilibrium_summary(kind, &caps, &params);
            prop_assert!(s.efficiency >= e_opt - 1e-9, "{kind}");
        }
    }

    /// Eq. (1): the Table I rates conserve bandwidth for every
    /// transferring algorithm.
    #[test]
    fn table1_conserves_bandwidth(caps in capacity_strategy()) {
        let params = EquilibriumParams::default();
        for kind in MechanismKind::ALL {
            if kind == MechanismKind::Reciprocity {
                continue;
            }
            let d: f64 = download_rates(kind, &caps, &params).iter().sum();
            prop_assert!(
                (d - caps.total()).abs() <= 1e-6 * caps.total(),
                "{kind}: Σd = {d} vs ΣU = {}",
                caps.total()
            );
        }
    }

    /// Corollary 1: T-Chain and FairTorrent are perfectly fair in the
    /// idealized equilibrium; altruism is the most efficient algorithm.
    /// The corollary assumes no dominant user, sufficiently similar
    /// capacities (`Σ U_j ≫ U_i`, `U_i ≈ U_{i+n_BT}`) and `N ≫ n_BT`
    /// (otherwise BitTorrent's tit-for-tat window spans the whole swarm
    /// and degenerates into global averaging), so the generator stays
    /// within one order of magnitude with at least 4 windows of users.
    #[test]
    fn corollary1_over_random_capacities(
        caps in proptest::collection::vec(10.0f64..100.0, 16..48)
            .prop_map(|v| CapacityVector::new(v).expect("positive"))
    ) {
        prop_assume!(caps.no_dominant_user());
        let params = EquilibriumParams::default();
        prop_assert_eq!(
            equilibrium_summary(MechanismKind::TChain, &caps, &params).fairness,
            0.0
        );
        prop_assert_eq!(
            equilibrium_summary(MechanismKind::FairTorrent, &caps, &params).fairness,
            0.0
        );
        let e_alt = equilibrium_summary(MechanismKind::Altruism, &caps, &params).efficiency;
        for kind in [
            MechanismKind::TChain,
            MechanismKind::FairTorrent,
            MechanismKind::BitTorrent,
            MechanismKind::Reputation,
        ] {
            let e = equilibrium_summary(kind, &caps, &params).efficiency;
            prop_assert!(e_alt <= e + 1e-9, "{kind}: {e_alt} vs {e}");
        }
    }

    /// `q` is a probability, monotone in the holder's pieces, and
    /// anti-monotone in the needer's pieces.
    #[test]
    fn q_bounds_and_monotonicity(m in 2u32..200, a in 0u32..200, b in 0u32..200) {
        let m_i = a.min(m);
        let m_j = b.min(m);
        let v = q(m_i, m_j, m);
        prop_assert!((0.0..=1.0).contains(&v));
        if m_j < m {
            prop_assert!(q(m_i, m_j + 1, m) >= v - 1e-12, "monotone in m_j");
        }
        if m_i < m {
            prop_assert!(q(m_i + 1, m_j, m) <= v + 1e-12, "anti-monotone in m_i");
        }
    }

    /// Corollary 2 over random piece counts: π_A ≥ π_TC and π_A ≥ π_BT,
    /// and π_DR ≤ both.
    #[test]
    fn corollary2_over_random_states(
        m in 4u32..128,
        a in 0u32..128,
        b in 0u32..128,
        n in 3usize..500,
        alpha in 0.0f64..1.0,
    ) {
        let m_i = a.min(m);
        let m_j = b.min(m);
        let dist = PieceCountDistribution::uniform(m);
        let pa = q(m_i, m_j, m);
        let tc = pi_tc(m_i, m_j, m, &dist, n);
        let bt = pi_bt(m_i, m_j, m, alpha);
        let dr = pi_dr(m_i, m_j, m);
        prop_assert!(pa >= tc - 1e-12);
        prop_assert!(pa >= bt - 1e-12);
        prop_assert!(tc >= dr - 1e-12, "T-Chain adds indirect reciprocity");
        prop_assert!((0.0..=1.0).contains(&tc));
        prop_assert!((0.0..=1.0).contains(&bt));
    }

    /// Table II bootstrap probabilities are valid and altruism dominates
    /// T-Chain for any π_DR (Prop. 4's first comparison).
    #[test]
    fn table2_bounds(
        n in 10u64..5000,
        z in 1u64..5000,
        k in 1u64..10,
        pi_dr_v in 0.0f64..1.0,
        omega in 0.0f64..1.0,
    ) {
        let params = BootstrapParams {
            n,
            n_s: 1,
            k,
            z: z.min(n),
            pi_dr: pi_dr_v,
            n_bt: 4,
            omega,
            n_ft: (n / 2).max(k + 2),
        };
        prop_assume!(params.validate().is_ok());
        for kind in MechanismKind::ALL {
            let p = bootstrap_probability(kind, &params);
            prop_assert!((0.0..=1.0).contains(&p), "{kind}: {p}");
        }
        let alt = bootstrap_probability(MechanismKind::Altruism, &params);
        let tc = bootstrap_probability(MechanismKind::TChain, &params);
        prop_assert!(alt >= tc - 1e-12, "altruism ≥ T-Chain (Prop. 4)");
    }

    /// Fairness metrics: F = 0 iff u = d (over positive pairs), and the
    /// average ratio is 1 for balanced pairs.
    #[test]
    fn fairness_metrics_properties(pairs in proptest::collection::vec((0.1f64..100.0, 0.1f64..100.0), 1..30)) {
        let (f, skipped) = fairness_stat(&pairs);
        prop_assert_eq!(skipped, 0);
        prop_assert!(f >= 0.0);
        let balanced: Vec<(f64, f64)> = pairs.iter().map(|&(u, _)| (u, u)).collect();
        let (f0, _) = fairness_stat(&balanced);
        prop_assert!(f0.abs() < 1e-12);
        let avg = avg_fairness_ratio(&balanced).unwrap();
        prop_assert!((avg - 1.0).abs() < 1e-12);
    }

    /// Jain's index lies in [1/n, 1].
    #[test]
    fn jain_bounds(values in proptest::collection::vec(0.0f64..100.0, 1..50)) {
        if let Some(j) = jain_index(&values) {
            let n = values.len() as f64;
            prop_assert!(j <= 1.0 + 1e-12);
            prop_assert!(j >= 1.0 / n - 1e-12);
        }
    }

    /// CDF: fraction_at_or_below is monotone and hits 0/1 at the extremes.
    #[test]
    fn cdf_is_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let cdf = Cdf::from_samples(samples.clone());
        let lo = cdf.quantile(0.0).unwrap();
        let hi = cdf.quantile(1.0).unwrap();
        prop_assert_eq!(cdf.fraction_at_or_below(lo - 1.0), 0.0);
        prop_assert_eq!(cdf.fraction_at_or_below(hi), 1.0);
        let mid = (lo + hi) / 2.0;
        prop_assert!(cdf.fraction_at_or_below(mid) <= cdf.fraction_at_or_below(hi));
        prop_assert!(cdf.fraction_at_or_below(lo) <= cdf.fraction_at_or_below(mid) + 1e-12);
    }

    /// ln Γ satisfies the recurrence and ln C(n,k) the symmetry, over wide
    /// ranges.
    #[test]
    fn combinatorics_identities(z in 0.5f64..5000.0, n in 1u64..5000, k in 0u64..5000) {
        let lhs = ln_gamma(z + 1.0);
        let rhs = ln_gamma(z) + z.ln();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.abs().max(1.0));
        let k = k.min(n);
        let a = ln_choose(n, k);
        let b = ln_choose(n, n - k);
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }
}
