//! Minimal JSON writing and parsing.
//!
//! The recorder renders every trace event and manifest itself (this crate
//! is dependency-free by design), and the parser exists so tests and the
//! `coop-trace-lint` binary can validate emitted artifacts without pulling
//! a real JSON crate into the workspace.
//!
//! Writing conventions match the vendored `serde_json` shim where output
//! overlaps (two-space pretty indentation, `"key": value` spacing,
//! non-finite floats as `null`) so all workspace JSON looks alike.

use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; integers survive to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Why a document failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is not.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first invalid byte.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not emitted by this crate;
                            // lone surrogates decode to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar (input came in as a &str,
                    // so sequences are well-formed; width from the lead
                    // byte).
                    let width = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escapes `s` into `out` as a quoted JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` the way the workspace's JSON does: integral values with
/// a trailing `.0`, non-finite values as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// An incremental single-line JSON object writer with stable field order.
///
/// # Example
///
/// ```
/// use coop_telemetry::json::ObjWriter;
/// let mut o = ObjWriter::new();
/// o.str("type", "probe").uint("round", 4);
/// assert_eq!(o.finish(), r#"{"type":"probe","round":4}"#);
/// ```
#[derive(Debug)]
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl Default for ObjWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjWriter {
    /// Starts an object.
    pub fn new() -> Self {
        ObjWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) -> &mut String {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
        &mut self.buf
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        let buf = self.key(key);
        write_escaped(buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(&mut self, key: &str, value: u64) -> &mut Self {
        let buf = self.key(key);
        let _ = write!(buf, "{value}");
        self
    }

    /// Adds a float field.
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        let buf = self.key(key);
        write_f64(buf, value);
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an array of unsigned integers.
    pub fn uints(&mut self, key: &str, values: &[u64]) -> &mut Self {
        let buf = self.key(key);
        buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(buf, "{v}");
        }
        buf.push(']');
        self
    }

    /// Adds a raw, already-serialized JSON fragment.
    pub fn raw(&mut self, key: &str, fragment: &str) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(fragment);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse(r#"{"a": 1, "b": [true, null, -2.5], "c": {"d": "x\n"}}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.0));
        let b = doc.get("b").unwrap();
        assert_eq!(
            b,
            &Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-2.5)])
        );
        assert_eq!(
            doc.get("c").unwrap().get("d").and_then(Json::as_str),
            Some("x\n")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "1 2", "nul", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let mut o = ObjWriter::new();
        o.str("name", "a \"quoted\" value")
            .uint("n", 42)
            .f64("pi", 3.25)
            .f64("whole", 4.0)
            .f64("nan", f64::NAN)
            .bool("flag", true)
            .uints("xs", &[1, 2, 3]);
        let text = o.finish();
        let doc = parse(&text).unwrap();
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("a \"quoted\" value"));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(42.0));
        assert_eq!(doc.get("pi").and_then(Json::as_f64), Some(3.25));
        assert_eq!(doc.get("whole").and_then(Json::as_f64), Some(4.0));
        assert_eq!(doc.get("nan"), Some(&Json::Null));
        assert_eq!(doc.get("flag"), Some(&Json::Bool(true)));
        assert!(text.contains("\"whole\":4.0"), "integral floats keep .0: {text}");
    }

    #[test]
    fn unicode_and_escape_round_trip() {
        let doc = parse("\"caf\\u00e9 ☕\"").unwrap();
        assert_eq!(doc.as_str(), Some("café ☕"));
    }
}
