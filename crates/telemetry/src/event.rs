//! The structured trace-event taxonomy.
//!
//! Every instrumented layer emits [`TraceEvent`]s through a
//! [`Recorder`](crate::Recorder); each event renders to one JSONL line
//! with a stable field order, so identical runs produce byte-identical
//! trace streams (the wall-clock-bearing [`TraceEvent::JobSpan`] from the
//! experiment executor is the one documented exception).

use crate::json::ObjWriter;

/// Coarse event categories — the unit of sampling and of sink filtering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Per-round swarm probes (`RoundProbe`).
    Probe,
    /// Grant/choke decisions in the allocation loop (`Grant`).
    Grant,
    /// Transfer lifecycle anomalies (`TransferStalled`).
    Transfer,
    /// End-of-run state dumps (`InflightAtEnd`, `PeerAtEnd`).
    Final,
    /// DES engine statistics (`EngineStats`).
    Engine,
    /// Executor job spans (`JobSpan`).
    Exec,
    /// Fault-injection lifecycle (`Fault`): churn departures, outages,
    /// dropped piece transfers, seeder failure, stall detection.
    Fault,
    /// Consensus-reputation lifecycle (`ConsensusBan`): temporary and
    /// permanent bans issued by quorum aggregation, and unbans.
    Consensus,
}

impl Category {
    /// All categories, in declaration order.
    pub const ALL: [Category; 8] = [
        Category::Probe,
        Category::Grant,
        Category::Transfer,
        Category::Final,
        Category::Engine,
        Category::Exec,
        Category::Fault,
        Category::Consensus,
    ];

    /// Stable index for per-category bookkeeping.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The name used in JSONL output and sampling configuration.
    pub fn name(self) -> &'static str {
        match self {
            Category::Probe => "probe",
            Category::Grant => "grant",
            Category::Transfer => "transfer",
            Category::Final => "final",
            Category::Engine => "engine",
            Category::Exec => "exec",
            Category::Fault => "fault",
            Category::Consensus => "consensus",
        }
    }
}

/// One structured trace event.
///
/// Peer identities are raw `u32` indices (the swarm's seeder sentinel
/// `u32::MAX` included) so this crate stays dependency-free.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A per-round snapshot of swarm state, emitted on the probe cadence.
    RoundProbe {
        /// Round index.
        round: u64,
        /// Simulation time in seconds.
        sim_s: f64,
        /// Active (arrived, not departed) peers.
        active: u64,
        /// Compliant peers that have bootstrapped so far.
        bootstrapped: u64,
        /// Compliant peers that have completed so far.
        completed: u64,
        /// Transfers currently in flight.
        inflight: u64,
        /// Bytes moved per grant reason since the previous probe.
        bytes_by_reason_delta: Vec<u64>,
        /// Log2-bucketed histogram of per-piece replication counts.
        availability_buckets: Vec<u64>,
    },
    /// One executed upload grant (sampled; see
    /// [`Sampling`](crate::Sampling)).
    Grant {
        /// Round index.
        round: u64,
        /// Uploader (`u32::MAX` = seeder).
        from: u32,
        /// Receiver.
        to: u32,
        /// Bytes moved by this grant.
        bytes: u64,
        /// The mechanism component that granted the bandwidth.
        reason: &'static str,
        /// Whether the grant opened a new transfer (a "regrant"/unchoke of
        /// a fresh pair) rather than continuing an existing one.
        new_transfer: bool,
    },
    /// A transfer aborted by the stall timeout.
    TransferStalled {
        /// Round index of the abort.
        round: u64,
        /// Uploader.
        from: u32,
        /// Receiver.
        to: u32,
        /// The piece that was in flight.
        piece: u32,
        /// Bytes completed before the stall.
        bytes_done: u64,
    },
    /// A transfer still in flight when the run ended.
    InflightAtEnd {
        /// Uploader.
        from: u32,
        /// Receiver.
        to: u32,
        /// The piece in flight.
        piece: u32,
        /// Bytes transferred so far.
        bytes_done: u64,
        /// Full piece length.
        piece_len: u64,
        /// Granting reason.
        reason: &'static str,
        /// Whether the transfer was conditional (T-Chain).
        conditional: bool,
        /// Whether the uploader was still active.
        from_active: bool,
    },
    /// One active peer's state when the run ended.
    PeerAtEnd {
        /// The peer.
        peer: u32,
        /// Usable pieces held.
        have: u64,
        /// Locked (undelivered conditional) pieces held.
        locked: u64,
        /// Open reciprocation obligations.
        obligations: u64,
        /// Pieces currently in flight toward this peer.
        inflight: u64,
        /// Active peers that need something this peer offers.
        interested_in_me: u64,
        /// Neighbor-set size.
        neighbors: u64,
    },
    /// DES engine statistics at the end of a run.
    EngineStats {
        /// Events popped by the engine.
        events_processed: u64,
        /// Event-queue depth high-water mark.
        queue_depth_hwm: u64,
    },
    /// One applied fault-schedule action (churn departure, outage start or
    /// end, dropped piece delivery, seeder going offline, stall
    /// detection).
    Fault {
        /// Round index at which the fault applied.
        round: u64,
        /// The affected peer (`u32::MAX` for swarm-level faults: seeder
        /// failure and stall detection).
        peer: u32,
        /// The fault kind (`churn_depart`, `outage_start`, `outage_end`,
        /// `piece_drop`, `seeder_offline`, `stalled`).
        kind: &'static str,
        /// Bytes lost to the fault (nonzero only for `piece_drop`).
        bytes: u64,
    },
    /// A completed executor job (wall-clock bearing; experiments layer).
    JobSpan {
        /// Slot index in the batch.
        slot: u64,
        /// Job label (mechanism name).
        label: String,
        /// The job's seed.
        seed: u64,
        /// Wall-clock milliseconds the job took.
        wall_ms: u64,
        /// Whether the job was flagged slow relative to the batch median.
        slow: bool,
        /// How many times the job was retried after a panic or watchdog
        /// timeout before this (successful) completion. Zero for a
        /// first-attempt success or a journal-cache hit.
        retries: u64,
    },
    /// A consensus-reputation ban transition: a peer crossed the strike
    /// threshold (temporary or permanent ban) or served out a temporary
    /// ban (unban).
    ConsensusBan {
        /// Round index of the transition.
        round: u64,
        /// The affected peer.
        peer: u32,
        /// The transition kind (`ban_temp`, `ban_perm`, `unban`).
        kind: &'static str,
        /// The peer's strike level at the transition.
        strikes: f64,
    },
    /// A mid-run simulation checkpoint was captured (`--checkpoint-every`).
    /// Shares the engine category: like `EngineStats` it describes run
    /// machinery, not swarm behavior, and adding a category would resize
    /// the sampling table.
    Checkpoint {
        /// Round index the checkpoint covers (the next tick to run).
        round: u64,
    },
}

impl TraceEvent {
    /// The event's category.
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::RoundProbe { .. } => Category::Probe,
            TraceEvent::Grant { .. } => Category::Grant,
            TraceEvent::TransferStalled { .. } => Category::Transfer,
            TraceEvent::InflightAtEnd { .. } | TraceEvent::PeerAtEnd { .. } => Category::Final,
            TraceEvent::EngineStats { .. } | TraceEvent::Checkpoint { .. } => Category::Engine,
            TraceEvent::Fault { .. } => Category::Fault,
            TraceEvent::ConsensusBan { .. } => Category::Consensus,
            TraceEvent::JobSpan { .. } => Category::Exec,
        }
    }

    /// Renders the event as one JSONL line (no trailing newline). The
    /// first two fields are always `type` and `cat`.
    pub fn to_jsonl(&self) -> String {
        let mut o = ObjWriter::new();
        match self {
            TraceEvent::RoundProbe {
                round,
                sim_s,
                active,
                bootstrapped,
                completed,
                inflight,
                bytes_by_reason_delta,
                availability_buckets,
            } => {
                o.str("type", "round_probe")
                    .str("cat", Category::Probe.name())
                    .uint("round", *round)
                    .f64("sim_s", *sim_s)
                    .uint("active", *active)
                    .uint("bootstrapped", *bootstrapped)
                    .uint("completed", *completed)
                    .uint("inflight", *inflight)
                    .uints("bytes_by_reason_delta", bytes_by_reason_delta)
                    .uints("availability_buckets", availability_buckets);
            }
            TraceEvent::Grant {
                round,
                from,
                to,
                bytes,
                reason,
                new_transfer,
            } => {
                o.str("type", "grant")
                    .str("cat", Category::Grant.name())
                    .uint("round", *round)
                    .uint("from", u64::from(*from))
                    .uint("to", u64::from(*to))
                    .uint("bytes", *bytes)
                    .str("reason", reason)
                    .bool("new_transfer", *new_transfer);
            }
            TraceEvent::TransferStalled {
                round,
                from,
                to,
                piece,
                bytes_done,
            } => {
                o.str("type", "transfer_stalled")
                    .str("cat", Category::Transfer.name())
                    .uint("round", *round)
                    .uint("from", u64::from(*from))
                    .uint("to", u64::from(*to))
                    .uint("piece", u64::from(*piece))
                    .uint("bytes_done", *bytes_done);
            }
            TraceEvent::InflightAtEnd {
                from,
                to,
                piece,
                bytes_done,
                piece_len,
                reason,
                conditional,
                from_active,
            } => {
                o.str("type", "inflight_at_end")
                    .str("cat", Category::Final.name())
                    .uint("from", u64::from(*from))
                    .uint("to", u64::from(*to))
                    .uint("piece", u64::from(*piece))
                    .uint("bytes_done", *bytes_done)
                    .uint("piece_len", *piece_len)
                    .str("reason", reason)
                    .bool("conditional", *conditional)
                    .bool("from_active", *from_active);
            }
            TraceEvent::PeerAtEnd {
                peer,
                have,
                locked,
                obligations,
                inflight,
                interested_in_me,
                neighbors,
            } => {
                o.str("type", "peer_at_end")
                    .str("cat", Category::Final.name())
                    .uint("peer", u64::from(*peer))
                    .uint("have", *have)
                    .uint("locked", *locked)
                    .uint("obligations", *obligations)
                    .uint("inflight", *inflight)
                    .uint("interested_in_me", *interested_in_me)
                    .uint("neighbors", *neighbors);
            }
            TraceEvent::EngineStats {
                events_processed,
                queue_depth_hwm,
            } => {
                o.str("type", "engine_stats")
                    .str("cat", Category::Engine.name())
                    .uint("events_processed", *events_processed)
                    .uint("queue_depth_hwm", *queue_depth_hwm);
            }
            TraceEvent::Fault {
                round,
                peer,
                kind,
                bytes,
            } => {
                o.str("type", "fault")
                    .str("cat", Category::Fault.name())
                    .uint("round", *round)
                    .uint("peer", u64::from(*peer))
                    .str("kind", kind)
                    .uint("bytes", *bytes);
            }
            TraceEvent::ConsensusBan {
                round,
                peer,
                kind,
                strikes,
            } => {
                o.str("type", "consensus_ban")
                    .str("cat", Category::Consensus.name())
                    .uint("round", *round)
                    .uint("peer", u64::from(*peer))
                    .str("kind", kind)
                    .f64("strikes", *strikes);
            }
            TraceEvent::JobSpan {
                slot,
                label,
                seed,
                wall_ms,
                slow,
                retries,
            } => {
                o.str("type", "job_span")
                    .str("cat", Category::Exec.name())
                    .uint("slot", *slot)
                    .str("label", label)
                    .uint("seed", *seed)
                    .uint("wall_ms", *wall_ms)
                    .bool("slow", *slow)
                    .uint("retries", *retries);
            }
            TraceEvent::Checkpoint { round } => {
                o.str("type", "checkpoint")
                    .str("cat", Category::Engine.name())
                    .uint("round", *round);
            }
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RoundProbe {
                round: 3,
                sim_s: 3.0,
                active: 10,
                bootstrapped: 4,
                completed: 0,
                inflight: 7,
                bytes_by_reason_delta: vec![0; 9],
                availability_buckets: vec![1, 2, 3],
            },
            TraceEvent::Grant {
                round: 3,
                from: u32::MAX,
                to: 2,
                bytes: 4096,
                reason: "seeding",
                new_transfer: true,
            },
            TraceEvent::TransferStalled {
                round: 9,
                from: 1,
                to: 2,
                piece: 5,
                bytes_done: 100,
            },
            TraceEvent::InflightAtEnd {
                from: 1,
                to: 2,
                piece: 5,
                bytes_done: 100,
                piece_len: 4096,
                reason: "tit_for_tat",
                conditional: false,
                from_active: true,
            },
            TraceEvent::PeerAtEnd {
                peer: 2,
                have: 30,
                locked: 1,
                obligations: 2,
                inflight: 0,
                interested_in_me: 4,
                neighbors: 8,
            },
            TraceEvent::EngineStats {
                events_processed: 500,
                queue_depth_hwm: 12,
            },
            TraceEvent::Fault {
                round: 17,
                peer: 4,
                kind: "churn_depart",
                bytes: 0,
            },
            TraceEvent::ConsensusBan {
                round: 21,
                peer: 6,
                kind: "ban_temp",
                strikes: 4.0,
            },
            TraceEvent::JobSpan {
                slot: 0,
                label: "T-Chain".into(),
                seed: 42,
                wall_ms: 120,
                slow: false,
                retries: 1,
            },
            TraceEvent::Checkpoint { round: 64 },
        ]
    }

    #[test]
    fn every_event_renders_parseable_jsonl_with_type_and_cat() {
        for ev in samples() {
            let line = ev.to_jsonl();
            let doc = json::parse(&line).expect(&line);
            assert!(doc.get("type").and_then(json::Json::as_str).is_some());
            assert_eq!(
                doc.get("cat").and_then(json::Json::as_str),
                Some(ev.category().name()),
                "{line}"
            );
            assert!(!line.contains('\n'), "one line per event");
        }
    }

    #[test]
    fn categories_cover_every_event_and_index_is_stable() {
        for (i, cat) in Category::ALL.into_iter().enumerate() {
            assert_eq!(cat.index(), i);
        }
        let seen: std::collections::BTreeSet<_> =
            samples().iter().map(|e| e.category()).collect();
        assert_eq!(seen.len(), Category::ALL.len(), "samples cover all categories");
    }
}
