//! The [`Recorder`] — counters, histograms, sim-time spans, and sampled
//! trace events behind one cheap handle.
//!
//! A disabled recorder (the default everywhere) is a `None` behind one
//! branch: every instrumentation call returns immediately, and closures
//! passed to [`Recorder::emit_with`] are never invoked, so the hot loop
//! pays one predictable branch per probe site and constructs nothing.
//!
//! Determinism guarantee: the recorder *observes* and never *decides*.
//! It holds no RNG, is consulted by no simulation branch, and records
//! only values the simulation already computed — so enabling it, or
//! changing any sampling rate, cannot change a run's results. The
//! workspace pins this with byte-equality tests over fig4 artifacts.

use std::collections::BTreeMap;

use crate::event::{Category, TraceEvent};
use crate::sink::Sink;

/// Power-of-two bucketed histogram of `u64` observations.
///
/// Bucket `i` counts values `v` with `floor(log2(v)) == i - 1` (bucket 0
/// counts zeros): 0, 1, 2–3, 4–7, 8–15, … Compact, allocation-free after
/// the first observation, and stable across platforms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `value` falls into.
    pub fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => 1 + v.ilog2() as usize,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = Self::bucket_of(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The bucket counts, lowest bucket first (trailing empty buckets are
    /// not stored).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

/// Per-category keep-every-Nth sampling rates. `1` keeps everything,
/// `N` keeps the 1st, (N+1)th, … event of that category, `0` drops the
/// category entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sampling {
    rates: [u64; Category::ALL.len()],
}

impl Default for Sampling {
    /// Keep everything.
    fn default() -> Self {
        Sampling {
            rates: [1; Category::ALL.len()],
        }
    }
}

impl Sampling {
    /// Keeps every event of every category.
    pub fn keep_all() -> Self {
        Self::default()
    }

    /// Sets `category` to keep every `n`-th event (0 drops the category).
    #[must_use]
    pub fn every(mut self, category: Category, n: u64) -> Self {
        self.rates[category.index()] = n;
        self
    }

    /// The keep rate for `category`.
    pub fn rate(&self, category: Category) -> u64 {
        self.rates[category.index()]
    }
}

/// Recorder configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Emit a `RoundProbe` every this many rounds (the `--probe-every`
    /// CLI cadence). Must be ≥ 1.
    pub probe_every: u64,
    /// Bounded ring-buffer capacity for recent kept events.
    pub ring_capacity: usize,
    /// Per-category sampling.
    pub sampling: Sampling,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            probe_every: 10,
            ring_capacity: 1024,
            sampling: Sampling::default(),
        }
    }
}

/// Accumulated duration statistics for one named span.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStats {
    /// Completed spans under this name.
    pub count: u64,
    /// Total sim-time seconds across completed spans.
    pub total_s: f64,
    /// Longest single span in seconds.
    pub max_s: f64,
}

/// Everything a recorder gathered over one run, extracted with
/// [`Recorder::into_report`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryReport {
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Named histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
    /// Completed sim-time spans, sorted by name.
    pub spans: Vec<(String, SpanStats)>,
    /// Every kept event, in emission order (the full stream — not the
    /// bounded ring).
    pub events: Vec<TraceEvent>,
    /// Events dropped by sampling, per category index.
    pub sampled_out: [u64; Category::ALL.len()],
}

impl TelemetryReport {
    /// The value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Events of one category, in order.
    pub fn events_in(&self, category: Category) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.category() == category)
    }
}

struct Inner {
    config: TelemetryConfig,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, SpanStats>,
    open_spans: BTreeMap<&'static str, f64>,
    seen: [u64; Category::ALL.len()],
    kept: u64,
    ring: std::collections::VecDeque<TraceEvent>,
    capture: Vec<TraceEvent>,
    capturing: bool,
    sinks: Vec<Box<dyn Sink>>,
}

/// The instrumentation handle threaded through engine, swarm, and
/// executor. See the module docs for the cost and determinism contract.
///
/// # Example
///
/// ```
/// use coop_telemetry::{Recorder, TelemetryConfig, TraceEvent};
/// let mut rec = Recorder::enabled(TelemetryConfig::default());
/// rec.incr("rounds", 1);
/// rec.emit_with(|| TraceEvent::EngineStats {
///     events_processed: 10,
///     queue_depth_hwm: 3,
/// });
/// let report = rec.into_report();
/// assert_eq!(report.counter("rounds"), 1);
/// assert_eq!(report.events.len(), 1);
/// ```
#[derive(Default)]
pub struct Recorder {
    inner: Option<Box<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(i) => f
                .debug_struct("Recorder")
                .field("counters", &i.counters.len())
                .field("kept_events", &i.kept)
                .field("sinks", &i.sinks.len())
                .finish_non_exhaustive(),
        }
    }
}

impl Recorder {
    /// A disabled recorder: every call is a no-op behind one branch.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// An enabled recorder with full-stream in-memory capture on (the
    /// common case: run, then [`Recorder::into_report`]).
    pub fn enabled(config: TelemetryConfig) -> Self {
        Recorder {
            inner: Some(Box::new(Inner {
                config,
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
                spans: BTreeMap::new(),
                open_spans: BTreeMap::new(),
                seen: [0; Category::ALL.len()],
                kept: 0,
                ring: std::collections::VecDeque::new(),
                capture: Vec::new(),
                capturing: true,
                sinks: Vec::new(),
            })),
        }
    }

    /// Whether instrumentation is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The probe cadence (`u64::MAX` when disabled, so `round %
    /// probe_every == 0` checks stay cheap and never fire).
    pub fn probe_every(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(u64::MAX, |i| i.config.probe_every.max(1))
    }

    /// Whether a round probe is due at `round`. Always false when
    /// disabled.
    pub fn probe_due(&self, round: u64) -> bool {
        match &self.inner {
            None => false,
            Some(i) => round.is_multiple_of(i.config.probe_every.max(1)),
        }
    }

    /// Attaches a streaming sink (no-op when disabled).
    pub fn add_sink(&mut self, sink: Box<dyn Sink>) {
        if let Some(i) = &mut self.inner {
            i.sinks.push(sink);
        }
    }

    /// Turns full-stream in-memory capture off (streaming sinks and the
    /// bounded ring still receive events). Useful for very long runs that
    /// only want a trace file.
    pub fn set_capture(&mut self, capture: bool) {
        if let Some(i) = &mut self.inner {
            i.capturing = capture;
        }
    }

    /// Adds `by` to counter `name`.
    pub fn incr(&mut self, name: &'static str, by: u64) {
        if let Some(i) = &mut self.inner {
            *i.counters.entry(name).or_insert(0) += by;
        }
    }

    /// Sets counter `name` to the maximum of its current value and `v`
    /// (high-water marks).
    pub fn record_max(&mut self, name: &'static str, v: u64) {
        if let Some(i) = &mut self.inner {
            let e = i.counters.entry(name).or_insert(0);
            *e = (*e).max(v);
        }
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        if let Some(i) = &mut self.inner {
            i.histograms.entry(name).or_default().observe(value);
        }
    }

    /// Opens a sim-time span. Re-opening an already-open name restarts it.
    pub fn span_begin(&mut self, name: &'static str, sim_s: f64) {
        if let Some(i) = &mut self.inner {
            i.open_spans.insert(name, sim_s);
        }
    }

    /// Closes a sim-time span opened with [`Recorder::span_begin`],
    /// accumulating its duration. Unmatched ends are ignored.
    pub fn span_end(&mut self, name: &'static str, sim_s: f64) {
        if let Some(i) = &mut self.inner {
            if let Some(start) = i.open_spans.remove(name) {
                let d = (sim_s - start).max(0.0);
                let s = i.spans.entry(name).or_default();
                s.count += 1;
                s.total_s += d;
                s.max_s = s.max_s.max(d);
            }
        }
    }

    /// Emits an event, constructing it lazily — `make` never runs when
    /// the recorder is disabled or the event is sampled out.
    pub fn emit_with(&mut self, make: impl FnOnce() -> TraceEvent) {
        let Some(i) = &mut self.inner else { return };
        // Sampling is per category; the category is known only after
        // construction, so sampling decisions use a two-step protocol:
        // cheap construction is the caller's job (pass a closure that
        // builds from already-computed values), and the keep decision
        // happens on the constructed event.
        let event = make();
        let cat = event.category();
        let seen = &mut i.seen[cat.index()];
        let rate = i.config.sampling.rate(cat);
        let keep = rate != 0 && *seen % rate == 0;
        *seen += 1;
        if !keep {
            return;
        }
        let seq = i.kept;
        i.kept += 1;
        for sink in &mut i.sinks {
            sink.record(seq, &event);
        }
        if i.config.ring_capacity > 0 {
            if i.ring.len() == i.config.ring_capacity {
                i.ring.pop_front();
            }
            i.ring.push_back(event.clone());
        }
        if i.capturing {
            i.capture.push(event);
        }
    }

    /// Like [`Recorder::emit_with`] but skips construction entirely when
    /// the next event of `category` would be sampled out — use on hot
    /// paths where building the event itself has a cost.
    pub fn emit_sampled(&mut self, category: Category, make: impl FnOnce() -> TraceEvent) {
        let Some(i) = &mut self.inner else { return };
        let rate = i.config.sampling.rate(category);
        let seen = i.seen[category.index()];
        if rate == 0 || seen % rate != 0 {
            i.seen[category.index()] = seen + 1;
            return;
        }
        self.emit_with(make);
    }

    /// The last kept events, oldest first (the bounded ring).
    pub fn recent(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(i) => i.ring.iter().cloned().collect(),
        }
    }

    /// Flushes sinks and extracts everything gathered. The recorder is
    /// consumed; a disabled recorder yields an empty default report.
    pub fn into_report(self) -> TelemetryReport {
        let Some(mut i) = self.inner else {
            return TelemetryReport::default();
        };
        for sink in &mut i.sinks {
            sink.flush();
        }
        let mut sampled_out = [0u64; Category::ALL.len()];
        for (idx, &seen) in i.seen.iter().enumerate() {
            let rate = i.config.sampling.rates[idx];
            let kept = if rate == 0 { 0 } else { seen.div_ceil(rate) };
            sampled_out[idx] = seen - kept;
        }
        TelemetryReport {
            counters: i
                .counters
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            histograms: i
                .histograms
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            spans: i
                .spans
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            events: i.capture,
            sampled_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    fn engine_event(n: u64) -> TraceEvent {
        TraceEvent::EngineStats {
            events_processed: n,
            queue_depth_hwm: 0,
        }
    }

    #[test]
    fn disabled_recorder_does_nothing_and_never_constructs() {
        let mut rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        assert!(!rec.probe_due(0));
        rec.incr("x", 1);
        rec.observe("h", 5);
        rec.emit_with(|| unreachable!("must not construct when disabled"));
        let report = rec.into_report();
        assert_eq!(report, TelemetryReport::default());
    }

    #[test]
    fn counters_histograms_and_spans_accumulate() {
        let mut rec = Recorder::enabled(TelemetryConfig::default());
        rec.incr("rounds", 2);
        rec.incr("rounds", 3);
        rec.record_max("hwm", 4);
        rec.record_max("hwm", 2);
        rec.observe("depth", 0);
        rec.observe("depth", 9);
        rec.span_begin("warmup", 1.0);
        rec.span_end("warmup", 3.5);
        let report = rec.into_report();
        assert_eq!(report.counter("rounds"), 5);
        assert_eq!(report.counter("hwm"), 4);
        let (_, h) = &report.histograms[0];
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 9);
        assert_eq!(h.mean(), Some(4.5));
        let (name, span) = &report.spans[0];
        assert_eq!(name, "warmup");
        assert_eq!(span.count, 1);
        assert!((span.total_s - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4] {
            h.observe(v);
        }
        assert_eq!(h.buckets(), &[1, 1, 2, 1]);
    }

    #[test]
    fn sampling_keeps_every_nth_per_category() {
        let config = TelemetryConfig {
            sampling: Sampling::keep_all().every(Category::Engine, 3),
            ..TelemetryConfig::default()
        };
        let mut rec = Recorder::enabled(config);
        for n in 0..7 {
            rec.emit_with(|| engine_event(n));
        }
        let report = rec.into_report();
        let kept: Vec<u64> = report
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::EngineStats {
                    events_processed, ..
                } => *events_processed,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![0, 3, 6]);
        assert_eq!(report.sampled_out[Category::Engine.index()], 4);
    }

    #[test]
    fn emit_sampled_skips_construction_when_dropped() {
        let config = TelemetryConfig {
            sampling: Sampling::keep_all().every(Category::Engine, 2),
            ..TelemetryConfig::default()
        };
        let mut rec = Recorder::enabled(config);
        rec.emit_sampled(Category::Engine, || engine_event(0)); // kept
        rec.emit_sampled(Category::Engine, || unreachable!("sampled out"));
        rec.emit_sampled(Category::Engine, || engine_event(2)); // kept
        assert_eq!(rec.recent().len(), 2);
    }

    #[test]
    fn rate_zero_drops_category_entirely() {
        let config = TelemetryConfig {
            sampling: Sampling::keep_all().every(Category::Engine, 0),
            ..TelemetryConfig::default()
        };
        let mut rec = Recorder::enabled(config);
        rec.emit_with(|| engine_event(0));
        rec.emit_sampled(Category::Engine, || unreachable!("dropped category"));
        let report = rec.into_report();
        assert!(report.events.is_empty());
        assert_eq!(report.sampled_out[Category::Engine.index()], 2);
    }

    #[test]
    fn ring_buffer_is_bounded_and_keeps_latest() {
        let config = TelemetryConfig {
            ring_capacity: 2,
            ..TelemetryConfig::default()
        };
        let mut rec = Recorder::enabled(config);
        for n in 0..5 {
            rec.emit_with(|| engine_event(n));
        }
        assert_eq!(rec.recent(), vec![engine_event(3), engine_event(4)]);
        // Full capture still has everything.
        assert_eq!(rec.into_report().events.len(), 5);
    }

    #[test]
    fn sinks_receive_kept_events_and_probe_cadence_holds() {
        let sink = MemorySink::new();
        let mut rec = Recorder::enabled(TelemetryConfig {
            probe_every: 4,
            ..TelemetryConfig::default()
        });
        rec.add_sink(Box::new(sink.clone()));
        assert!(rec.probe_due(0));
        assert!(!rec.probe_due(3));
        assert!(rec.probe_due(8));
        rec.emit_with(|| engine_event(1));
        assert_eq!(sink.len(), 1);
        rec.set_capture(false);
        rec.emit_with(|| engine_event(2));
        assert_eq!(sink.len(), 2, "sinks still stream with capture off");
        assert_eq!(rec.into_report().events.len(), 1);
    }
}
