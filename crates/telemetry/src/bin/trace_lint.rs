//! `coop-trace-lint` — validates telemetry artifacts.
//!
//! Usage:
//!
//! ```text
//! coop-trace-lint <trace.jsonl> [manifest.json ...] [profile.json ...]
//! ```
//!
//! Each `.jsonl` argument is checked line by line: every line must parse
//! as a JSON object carrying string `type` and `cat` fields, with `cat`
//! one of the known categories. An argument whose file name ends in
//! `profile.json` must decode as a [`coop_telemetry::RunProfile`] and
//! pass its structural validation (schema version, taxonomy phase names,
//! histogram/duration consistency, `productive <= visited`). Any other
//! argument must decode as a full [`coop_telemetry::RunManifest`]. Exit
//! status is 0 when every file is clean; any problem prints a diagnostic
//! to stderr and exits 1. CI runs this against the smoke runs' outputs.

use std::process::ExitCode;

use coop_telemetry::json::{self, Json};
use coop_telemetry::{Category, RunManifest, RunProfile};

fn lint_jsonl(path: &str, text: &str) -> Result<usize, String> {
    let known: Vec<&str> = Category::ALL.iter().map(|c| c.name()).collect();
    let mut events = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let ty = doc.get("type").and_then(Json::as_str).ok_or_else(|| {
            format!("{path}:{}: event has no string 'type' field", lineno + 1)
        })?;
        let cat = doc.get("cat").and_then(Json::as_str).ok_or_else(|| {
            format!("{path}:{}: event '{ty}' has no string 'cat' field", lineno + 1)
        })?;
        if !known.contains(&cat) {
            return Err(format!(
                "{path}:{}: unknown category '{cat}' (known: {})",
                lineno + 1,
                known.join(", ")
            ));
        }
        events += 1;
    }
    Ok(events)
}

fn lint_file(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    if path.ends_with(".jsonl") {
        let events = lint_jsonl(path, &text)?;
        Ok(format!("{path}: ok ({events} events)"))
    } else if path.ends_with("profile.json") {
        let profile = lint_profile(&text).map_err(|e| format!("{path}: {e}"))?;
        Ok(format!(
            "{path}: ok (artifact {}, {} phases, {}/{} jobs profiled)",
            profile.artifact,
            profile.phases.len(),
            profile.profiled_jobs,
            profile.jobs
        ))
    } else {
        let manifest = RunManifest::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        Ok(format!(
            "{path}: ok (artifact {}, {} phases, {} counters)",
            manifest.artifact,
            manifest.phases.len(),
            manifest.counters.len()
        ))
    }
}

/// Parses and structurally validates one `profile.json`.
fn lint_profile(text: &str) -> Result<RunProfile, String> {
    let profile = RunProfile::parse(text)?;
    profile.validate()?;
    Ok(profile)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: coop-trace-lint <trace.jsonl | manifest.json | profile.json> ...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &args {
        match lint_file(path) {
            Ok(summary) => println!("{summary}"),
            Err(problem) => {
                eprintln!("{problem}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coop_telemetry::TraceEvent;

    #[test]
    fn accepts_recorder_output_and_rejects_garbage() {
        let good = format!(
            "{}\n{}\n",
            TraceEvent::EngineStats {
                events_processed: 1,
                queue_depth_hwm: 1
            }
            .to_jsonl(),
            TraceEvent::PeerAtEnd {
                peer: 0,
                have: 1,
                locked: 0,
                obligations: 0,
                inflight: 0,
                interested_in_me: 0,
                neighbors: 4
            }
            .to_jsonl()
        );
        assert_eq!(lint_jsonl("t.jsonl", &good), Ok(2));
        assert!(lint_jsonl("t.jsonl", "not json\n").is_err());
        assert!(lint_jsonl("t.jsonl", "{\"type\":\"x\"}\n").is_err());
        assert!(lint_jsonl("t.jsonl", "{\"type\":\"x\",\"cat\":\"nope\"}\n").is_err());
    }

    #[test]
    fn profile_lint_round_trips_and_rejects_bad_taxonomy() {
        use coop_telemetry::profile::phase;
        use coop_telemetry::{PhaseStat, RunProfile};
        let mut stat = PhaseStat::default();
        stat.observe_ns(1000);
        let profile = RunProfile {
            artifact: "fig4".into(),
            scale: "quick".into(),
            jobs: 1,
            profiled_jobs: 1,
            phases: vec![(phase::SIM_RUN.to_string(), stat)],
            work: vec![],
            per_job: vec![],
        };
        let text = profile.to_json_pretty();
        assert!(lint_profile(&text).is_ok());
        let bad = text.replace(phase::SIM_RUN, "sim.not_a_phase");
        assert!(lint_profile(&bad).unwrap_err().contains("taxonomy"));
        assert!(lint_profile("{}").is_err());
    }
}
