//! `coop-trace-lint` — validates telemetry artifacts.
//!
//! Usage:
//!
//! ```text
//! coop-trace-lint <trace.jsonl> [manifest.json ...]
//! ```
//!
//! Each `.jsonl` argument is checked line by line: every line must parse
//! as a JSON object carrying string `type` and `cat` fields, with `cat`
//! one of the known categories. Each `manifest.json` argument must
//! decode as a full [`coop_telemetry::RunManifest`]. Exit status is 0
//! when every file is clean; any problem prints a diagnostic to stderr
//! and exits 1. CI runs this against the smoke run's outputs.

use std::process::ExitCode;

use coop_telemetry::json::{self, Json};
use coop_telemetry::{Category, RunManifest};

fn lint_jsonl(path: &str, text: &str) -> Result<usize, String> {
    let known: Vec<&str> = Category::ALL.iter().map(|c| c.name()).collect();
    let mut events = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let ty = doc.get("type").and_then(Json::as_str).ok_or_else(|| {
            format!("{path}:{}: event has no string 'type' field", lineno + 1)
        })?;
        let cat = doc.get("cat").and_then(Json::as_str).ok_or_else(|| {
            format!("{path}:{}: event '{ty}' has no string 'cat' field", lineno + 1)
        })?;
        if !known.contains(&cat) {
            return Err(format!(
                "{path}:{}: unknown category '{cat}' (known: {})",
                lineno + 1,
                known.join(", ")
            ));
        }
        events += 1;
    }
    Ok(events)
}

fn lint_file(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    if path.ends_with(".jsonl") {
        let events = lint_jsonl(path, &text)?;
        Ok(format!("{path}: ok ({events} events)"))
    } else {
        let manifest = RunManifest::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        Ok(format!(
            "{path}: ok (artifact {}, {} phases, {} counters)",
            manifest.artifact,
            manifest.phases.len(),
            manifest.counters.len()
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: coop-trace-lint <trace.jsonl | manifest.json> ...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &args {
        match lint_file(path) {
            Ok(summary) => println!("{summary}"),
            Err(problem) => {
                eprintln!("{problem}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coop_telemetry::TraceEvent;

    #[test]
    fn accepts_recorder_output_and_rejects_garbage() {
        let good = format!(
            "{}\n{}\n",
            TraceEvent::EngineStats {
                events_processed: 1,
                queue_depth_hwm: 1
            }
            .to_jsonl(),
            TraceEvent::PeerAtEnd {
                peer: 0,
                have: 1,
                locked: 0,
                obligations: 0,
                inflight: 0,
                interested_in_me: 0,
                neighbors: 4
            }
            .to_jsonl()
        );
        assert_eq!(lint_jsonl("t.jsonl", &good), Ok(2));
        assert!(lint_jsonl("t.jsonl", "not json\n").is_err());
        assert!(lint_jsonl("t.jsonl", "{\"type\":\"x\"}\n").is_err());
        assert!(lint_jsonl("t.jsonl", "{\"type\":\"x\",\"cat\":\"nope\"}\n").is_err());
    }
}
