//! Crash-safe file writes.
//!
//! Every artifact, manifest and trace file in the workspace goes through
//! [`write_atomic`]: the bytes land in a temporary file in the *same*
//! directory, are fsynced, and are then renamed over the destination.
//! A crash (or SIGKILL) at any point leaves either the old file or the
//! new file — never a truncated hybrid that would silently poison
//! downstream plots. Append-style logs (the run journal) instead fsync
//! after every record; this module only covers whole-file artifacts.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: tmp file in the same directory +
/// fsync + rename (+ best-effort directory fsync on unix, so the rename
/// itself is durable).
///
/// Parent directories are created as needed. The temporary name embeds
/// the process id, so concurrent writers in different processes cannot
/// trample each other's staging files; concurrent same-path writers in
/// one process must synchronize externally (the experiment harness
/// writes artifacts from a single thread).
///
/// # Errors
///
/// Returns any I/O error from directory creation, the write, the fsync,
/// or the rename. The temporary file is removed on failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    fs::create_dir_all(&parent)?;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = parent.join(format!(".{file_name}.{}.tmp", std::process::id()));
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directories cannot be opened
        // for writing on all platforms; treat failure as best-effort.
        if let Ok(dir) = fs::File::open(&parent) {
            let _ = dir.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`write_atomic`] for text content.
///
/// # Errors
///
/// Propagates [`write_atomic`] errors.
pub fn write_atomic_str(path: &Path, text: &str) -> io::Result<()> {
    write_atomic(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("coop-telemetry-atomic-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn writes_and_overwrites() {
        let path = scratch("a.txt");
        write_atomic_str(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic_str(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
    }

    #[test]
    fn creates_missing_parent_dirs() {
        let path = scratch("nested/deep/b.txt");
        let _ = fs::remove_dir_all(scratch("nested"));
        write_atomic(&path, b"data").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"data");
    }

    #[test]
    fn leaves_no_tmp_file_behind() {
        let path = scratch("c.txt");
        write_atomic_str(&path, "payload").unwrap();
        let leftovers: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("c.txt."))
            .collect();
        assert!(leftovers.is_empty(), "staging file leaked: {leftovers:?}");
    }

    #[test]
    fn rejects_bare_directory_path() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}
