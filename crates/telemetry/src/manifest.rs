//! The per-run `manifest.json` — what ran, with what configuration, and
//! how long each phase took.
//!
//! Every experiment run writes one manifest next to its artifacts. The
//! manifest is the *only* artifact allowed to carry wall-clock data; the
//! CSV/JSON figure artifacts stay byte-deterministic, and determinism
//! tests compare those while ignoring the manifest.

use std::fmt::Write as _;

use crate::json::{self, write_escaped, Json};

/// Schema version stamped into every manifest.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// The manifest file name, next to a run's artifacts.
pub const MANIFEST_FILE: &str = "manifest.json";

/// 64-bit FNV-1a hasher used for configuration fingerprints.
///
/// Matches the fingerprint scheme used by the swarm golden tests: feed
/// bytes (or whole debug strings), read the hash out with
/// [`Fnv::finish`].
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds a string (convenience for `Debug`-rendered configs).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprints any `Debug`-printable value with FNV-1a.
pub fn fingerprint_debug<T: std::fmt::Debug>(value: &T) -> u64 {
    let mut h = Fnv::new();
    h.write_str(&format!("{value:?}"));
    h.finish()
}

/// One named wall-clock phase of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase name (e.g. `"simulate"`, `"write_artifacts"`).
    pub name: String,
    /// Wall-clock duration in milliseconds.
    pub wall_ms: u64,
}

/// Everything `manifest.json` records about one run.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RunManifest {
    /// Which artifact ran (e.g. `"fig4"`).
    pub artifact: String,
    /// The scale preset (e.g. `"quick"`, `"paper"`).
    pub scale: String,
    /// FNV-1a fingerprint of the resolved configuration, as produced by
    /// [`fingerprint_debug`].
    pub config_fingerprint: u64,
    /// Base seed of the run.
    pub seed: u64,
    /// Number of replicates per mechanism.
    pub replicates: u64,
    /// Worker threads used.
    pub jobs: u64,
    /// Mechanism names simulated, in slot order.
    pub mechanisms: Vec<String>,
    /// Attack scenario label (`"none"` when the figure has no attack).
    pub attack: String,
    /// Scenario name for scenario-pack sweeps; empty for the plain
    /// figure/table artifacts.
    pub scenario: String,
    /// Fingerprint of the scenario's canonical spec (0 when the run did
    /// not come from a scenario).
    pub spec_fingerprint: u64,
    /// Wall-clock phase timings, in execution order.
    pub phases: Vec<PhaseTiming>,
    /// Telemetry counter totals (name, value), sorted by name. Empty when
    /// telemetry was disabled.
    pub counters: Vec<(String, u64)>,
    /// Trace events kept (post-sampling) across the run.
    pub events_kept: u64,
}

impl RunManifest {
    /// Renders the manifest as pretty-printed JSON (two-space indent,
    /// matching the workspace's other JSON artifacts).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::from("{\n");
        let field = |out: &mut String, key: &str, value: String, last: bool| {
            out.push_str("  ");
            write_escaped(out, key);
            out.push_str(": ");
            out.push_str(&value);
            out.push_str(if last { "\n" } else { ",\n" });
        };
        field(
            &mut out,
            "schema_version",
            MANIFEST_SCHEMA_VERSION.to_string(),
            false,
        );
        field(&mut out, "artifact", quoted(&self.artifact), false);
        field(&mut out, "scale", quoted(&self.scale), false);
        field(
            &mut out,
            "config_fingerprint",
            quoted(&format!("{:016x}", self.config_fingerprint)),
            false,
        );
        field(&mut out, "seed", self.seed.to_string(), false);
        field(&mut out, "replicates", self.replicates.to_string(), false);
        field(&mut out, "jobs", self.jobs.to_string(), false);
        let mechanisms = {
            let mut a = String::from("[");
            for (i, m) in self.mechanisms.iter().enumerate() {
                if i > 0 {
                    a.push_str(", ");
                }
                a.push_str(&quoted(m));
            }
            a.push(']');
            a
        };
        field(&mut out, "mechanisms", mechanisms, false);
        field(&mut out, "attack", quoted(&self.attack), false);
        field(&mut out, "scenario", quoted(&self.scenario), false);
        field(
            &mut out,
            "spec_fingerprint",
            quoted(&format!("{:016x}", self.spec_fingerprint)),
            false,
        );
        let phases = {
            let mut a = String::from("{");
            for (i, p) in self.phases.iter().enumerate() {
                if i > 0 {
                    a.push_str(", ");
                }
                a.push_str(&quoted(&p.name));
                let _ = write!(a, ": {}", p.wall_ms);
            }
            a.push('}');
            a
        };
        field(&mut out, "phase_wall_ms", phases, false);
        let counters = {
            let mut a = String::from("{");
            for (i, (name, value)) in self.counters.iter().enumerate() {
                if i > 0 {
                    a.push_str(", ");
                }
                a.push_str(&quoted(name));
                let _ = write!(a, ": {value}");
            }
            a.push('}');
            a
        };
        field(&mut out, "counters", counters, false);
        field(&mut out, "events_kept", self.events_kept.to_string(), true);
        out.push('}');
        out
    }

    /// Writes `manifest.json` into `dir` via the crash-safe
    /// [`write_atomic`](crate::write_atomic) path: a killed run leaves
    /// either the previous manifest or the new one, never a truncated
    /// file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(MANIFEST_FILE);
        let mut text = self.to_json_pretty();
        text.push('\n');
        crate::atomic::write_atomic_str(&path, &text)?;
        Ok(path)
    }

    /// Parses and validates manifest JSON, returning the decoded manifest.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (parse
    /// failure, missing field, or wrong type).
    pub fn parse(text: &str) -> Result<RunManifest, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let version = require_u64(&doc, "schema_version")?;
        if version != MANIFEST_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (expected {MANIFEST_SCHEMA_VERSION})"
            ));
        }
        let fingerprint_hex = require_str(&doc, "config_fingerprint")?;
        let config_fingerprint = u64::from_str_radix(&fingerprint_hex, 16)
            .map_err(|_| format!("config_fingerprint '{fingerprint_hex}' is not hex"))?;
        let mechanisms = match doc.get("mechanisms") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|m| {
                    m.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "mechanisms entries must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing or non-array field 'mechanisms'".into()),
        };
        // Scenario attribution arrived after the first manifests shipped;
        // both fields stay optional on parse so older manifests validate.
        let scenario = doc
            .get("scenario")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let spec_fingerprint = match doc.get("spec_fingerprint").and_then(Json::as_str) {
            Some(hex) => u64::from_str_radix(hex, 16)
                .map_err(|_| format!("spec_fingerprint '{hex}' is not hex"))?,
            None => 0,
        };
        let phases = obj_u64_entries(&doc, "phase_wall_ms")?
            .into_iter()
            .map(|(name, wall_ms)| PhaseTiming { name, wall_ms })
            .collect();
        let counters = obj_u64_entries(&doc, "counters")?;
        Ok(RunManifest {
            artifact: require_str(&doc, "artifact")?,
            scale: require_str(&doc, "scale")?,
            config_fingerprint,
            seed: require_u64(&doc, "seed")?,
            replicates: require_u64(&doc, "replicates")?,
            jobs: require_u64(&doc, "jobs")?,
            mechanisms,
            attack: require_str(&doc, "attack")?,
            scenario,
            spec_fingerprint,
            phases,
            counters,
            events_kept: require_u64(&doc, "events_kept")?,
        })
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::new();
    write_escaped(&mut out, s);
    out
}

fn require_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn require_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn obj_u64_entries(doc: &Json, key: &str) -> Result<Vec<(String, u64)>, String> {
    match doc.get(key) {
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(name, v)| {
                v.as_f64()
                    .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                    .map(|v| (name.clone(), v as u64))
                    .ok_or_else(|| format!("'{key}.{name}' must be a non-negative integer"))
            })
            .collect(),
        _ => Err(format!("missing or non-object field '{key}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            artifact: "fig4".into(),
            scale: "quick".into(),
            config_fingerprint: 0x1234_abcd_5678_ef00,
            seed: 42,
            replicates: 2,
            jobs: 4,
            mechanisms: vec!["BitTorrent".into(), "T-Chain".into()],
            attack: "none".into(),
            scenario: "flash-crowd-baseline".into(),
            spec_fingerprint: 0x00ab_cdef_0123_4567,
            phases: vec![
                PhaseTiming {
                    name: "simulate".into(),
                    wall_ms: 1200,
                },
                PhaseTiming {
                    name: "write_artifacts".into(),
                    wall_ms: 3,
                },
            ],
            counters: vec![("swarm.rounds".into(), 900), ("swarm.grants".into(), 4521)],
            events_kept: 77,
        }
    }

    #[test]
    fn manifest_round_trips_through_parse() {
        let m = sample();
        let text = m.to_json_pretty();
        let back = RunManifest::parse(&text).expect("round trip");
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_is_valid_json_with_expected_fields() {
        let text = sample().to_json_pretty();
        let doc = json::parse(&text).expect("valid json");
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_f64),
            Some(MANIFEST_SCHEMA_VERSION as f64)
        );
        assert_eq!(doc.get("artifact").and_then(Json::as_str), Some("fig4"));
        assert_eq!(
            doc.get("config_fingerprint").and_then(Json::as_str),
            Some("1234abcd5678ef00")
        );
    }

    #[test]
    fn manifests_without_scenario_fields_still_parse() {
        let mut text = sample().to_json_pretty();
        text = text
            .replace("  \"scenario\": \"flash-crowd-baseline\",\n", "")
            .replace("  \"spec_fingerprint\": \"00abcdef01234567\",\n", "");
        let back = RunManifest::parse(&text).expect("pre-scenario manifests stay valid");
        assert_eq!(back.scenario, "");
        assert_eq!(back.spec_fingerprint, 0);
    }

    #[test]
    fn parse_rejects_missing_and_malformed_fields() {
        assert!(RunManifest::parse("not json").is_err());
        assert!(RunManifest::parse("{}").is_err());
        let mut text = sample().to_json_pretty();
        text = text.replace("\"seed\": 42", "\"seed\": \"oops\"");
        let err = RunManifest::parse(&text).unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let a = fingerprint_debug(&("config", 1));
        let b = fingerprint_debug(&("config", 1));
        let c = fingerprint_debug(&("config", 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn write_to_creates_the_file() {
        let dir = std::env::temp_dir().join(format!(
            "coop-telemetry-manifest-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = sample().write_to(&dir).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(RunManifest::parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
