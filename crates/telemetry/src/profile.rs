//! Wall-clock profiling: scoped phase timers and the per-run
//! `profile.json`.
//!
//! The [`Profiler`] is the wall-clock sibling of the [`Recorder`]
//! (crate::Recorder): a handle that is a single branch when disabled (the
//! default) and accumulates monotonic phase durations when enabled. Each
//! worker thread owns its job's profiler (thread-local by construction —
//! profilers are never shared), and the executor merges the per-job
//! reports in slot order so the merged output is deterministic in
//! everything except the durations themselves.
//!
//! # Determinism contract
//!
//! Profiling observes, never decides: no simulation branch consults a
//! profiler and no phase timer feeds back into scheduling. Enabling
//! profiling — at any sampling cadence — must not change a single figure
//! artifact byte. Wall-clock readings appear only in `profile.json` and
//! the manifest, never in figure artifacts (pinned by the
//! `profile_byte_identity` tests in the workspace root).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use crate::json::{self, write_escaped, write_f64, Json};

/// Schema version stamped into every `profile.json`.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// The profile file name, next to a run's `manifest.json`.
pub const PROFILE_FILE: &str = "profile.json";

/// The phase-name taxonomy.
///
/// `sim.*` phases are recorded inside one simulation run; the
/// [`ATTRIBUTED`](phase::ATTRIBUTED) subset is pairwise disjoint and
/// together covers (almost) all of [`SIM_RUN`](phase::SIM_RUN), so their
/// share of `sim.run` measures how completely the profiler attributes sim
/// wall time. `exec.*` and `batch.*` phases are recorded by the experiment
/// harness around the sims.
pub mod phase {
    /// One whole `Simulation::run` (engine loop + finalize); the
    /// denominator for attribution.
    pub const SIM_RUN: &str = "sim.run";
    /// Peer arrival events (spawn, neighbor wiring).
    pub const SIM_ARRIVALS: &str = "sim.arrivals";
    /// Fault-schedule cursor application (churn, outages, seeder exit).
    pub const SIM_FAULTS: &str = "sim.faults";
    /// Identity churn and reputation upkeep: whitewashing, collusion
    /// praise, trusted-score recomputation.
    pub const SIM_IDENTITY: &str = "sim.identity";
    /// Neighbor replenishment plus candidate-adjacency maintenance.
    pub const SIM_ADJACENCY: &str = "sim.adjacency";
    /// Choke/regrant allocation: seeder allocation plus the per-peer
    /// allocate-and-execute loop (piece selection happens inside).
    pub const SIM_ALLOCATE: &str = "sim.allocate";
    /// Piece selection alone. Nested inside [`SIM_ALLOCATE`] and
    /// [`SIM_SETTLE`], so it is *not* part of [`ATTRIBUTED`].
    pub const SIM_PIECE_PICK: &str = "sim.piece_pick";
    /// Dirty-set drain plus CSR expansion into the round's visit bitmap.
    /// Nested inside [`SIM_ALLOCATE`], so it is *not* part of
    /// [`ATTRIBUTED`].
    pub const SIM_DIRTY_SCAN: &str = "sim.dirty_scan";
    /// Slot-ordered merge of intra-sim shard results (visit-bitmap ORs,
    /// mechanism-box restores). Nested inside [`SIM_ALLOCATE`] /
    /// [`SIM_END_ROUND`], so it is *not* part of [`ATTRIBUTED`].
    pub const SIM_SHARD_MERGE: &str = "sim.shard_merge";
    /// Transfer settlement: stalled-transfer, obligation, and completion
    /// passes.
    pub const SIM_SETTLE: &str = "sim.settle";
    /// End-of-round mechanism hooks.
    pub const SIM_END_ROUND: &str = "sim.end_round";
    /// Epoch-boundary settlement hooks (`Mechanism::on_epoch_close`).
    /// Nested inside [`SIM_END_ROUND`], so it is *not* part of
    /// [`ATTRIBUTED`].
    pub const SIM_EPOCH: &str = "sim.epoch";
    /// Consensus-reputation report aggregation and ban bookkeeping.
    /// Nested inside [`SIM_END_ROUND`], so it is *not* part of
    /// [`ATTRIBUTED`].
    pub const SIM_CONSENSUS: &str = "sim.consensus";
    /// Metric sampling and telemetry round probes.
    pub const SIM_SAMPLE: &str = "sim.sample";
    /// Round close-out: run-open check, stall detection, next-tick
    /// scheduling, checkpoint capture.
    pub const SIM_ROUND_CLOSE: &str = "sim.round_close";
    /// End-of-run result assembly.
    pub const SIM_FINALIZE: &str = "sim.finalize";
    /// Config/population/simulation construction, per job.
    pub const EXEC_BUILD: &str = "exec.build";
    /// The whole simulate phase of a batch (all jobs, wall time).
    pub const BATCH_SIMULATE: &str = "batch.simulate";
    /// Figure-artifact writing for a batch.
    pub const BATCH_WRITE_ARTIFACTS: &str = "batch.write_artifacts";
    /// Journal append + fsync time across a batch.
    pub const BATCH_JOURNAL_FSYNC: &str = "batch.journal_fsync";

    /// The pairwise-disjoint `sim.*` phases whose durations sum to
    /// (almost) all of [`SIM_RUN`] — everything but raw engine heap
    /// operations and event dispatch.
    pub const ATTRIBUTED: &[&str] = &[
        SIM_ARRIVALS,
        SIM_FAULTS,
        SIM_IDENTITY,
        SIM_ADJACENCY,
        SIM_ALLOCATE,
        SIM_SETTLE,
        SIM_END_ROUND,
        SIM_SAMPLE,
        SIM_ROUND_CLOSE,
        SIM_FINALIZE,
    ];

    /// Every valid phase name; `coop-trace-lint` rejects others.
    pub const TAXONOMY: &[&str] = &[
        SIM_RUN,
        SIM_ARRIVALS,
        SIM_FAULTS,
        SIM_IDENTITY,
        SIM_ADJACENCY,
        SIM_ALLOCATE,
        SIM_PIECE_PICK,
        SIM_DIRTY_SCAN,
        SIM_SHARD_MERGE,
        SIM_SETTLE,
        SIM_END_ROUND,
        SIM_EPOCH,
        SIM_CONSENSUS,
        SIM_SAMPLE,
        SIM_ROUND_CLOSE,
        SIM_FINALIZE,
        EXEC_BUILD,
        BATCH_SIMULATE,
        BATCH_WRITE_ARTIFACTS,
        BATCH_JOURNAL_FSYNC,
    ];
}

/// Names of the deterministic work-accounting counters the round loop
/// maintains (flushed through the telemetry recorder, surfaced in
/// `profile.json`'s `work` section). Unlike phase timings these are exact
/// and reproducible: they count *what* the round loop did, not how long
/// it took.
pub mod work {
    /// Peers visited by the per-round allocation loop (the O(N·degree)
    /// scan ROADMAP item 1 targets).
    pub const PEERS_VISITED: &str = "swarm.work.peers_visited";
    /// Visited peers that actually moved bytes (drained a partial or
    /// executed a grant). `visited - productive` is the wasted work a
    /// dirty-set round loop would skip.
    pub const PEERS_PRODUCTIVE: &str = "swarm.work.peers_productive";
    /// Total candidate-list length scanned across all allocation visits.
    pub const CANDIDATE_SCANS: &str = "swarm.work.candidate_scans";
    /// Per-peer `on_epoch_close` invocations across the run (zero for
    /// every per-transfer mechanism).
    pub const EPOCH_SETTLEMENTS: &str = "swarm.epoch.settlements";
    /// Rounds at which at least one mechanism settled an epoch.
    pub const EPOCH_BOUNDARIES: &str = "swarm.epoch.boundaries";
}

/// A started wall-clock stopwatch for coarse one-shot phases. The scoped
/// [`Profiler`] covers the round loop's hot phases; this covers the
/// single spans around a batch ("simulate", "write_artifacts") that the
/// runners used to time with hand-rolled `Instant::now()` pairs. Like
/// every wall-clock reading, its output belongs in telemetry files only,
/// never in figure artifacts.
#[derive(Clone, Copy, Debug)]
#[must_use = "a stopwatch only matters if its elapsed time is read"]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts a stopwatch.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Whole milliseconds since start (saturating).
    #[must_use]
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Nanoseconds since start (saturating).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A started phase timer. `None` inside when the profiler is disabled, so
/// starting and stopping cost one branch each.
#[derive(Debug)]
#[must_use = "pass the token back to Profiler::stop"]
pub struct PhaseToken(Option<Instant>);

/// Accumulated timings for one phase: call count, total and max duration,
/// and a log2 duration histogram (bucket 0 holds zero-duration calls,
/// bucket `i > 0` holds durations in `[2^(i-1), 2^i)` nanoseconds —
/// the same bucketing as [`Histogram`](crate::Histogram)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations, nanoseconds.
    pub total_ns: u64,
    /// Largest recorded duration, nanoseconds.
    pub max_ns: u64,
    /// Log2 duration buckets (trailing empty buckets are not stored).
    pub buckets: Vec<u64>,
}

impl PhaseStat {
    /// Records one duration.
    pub fn observe_ns(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        let bucket = if ns == 0 { 0 } else { 1 + ns.ilog2() as usize };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Folds another phase's accumulations into this one.
    pub fn merge(&mut self, other: &PhaseStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Mean duration in nanoseconds (`None` when nothing was recorded).
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total_ns as f64 / self.count as f64)
    }
}

/// Scoped monotonic phase timers, merged per phase name.
///
/// Disabled (the default) it is one `None` check per start/stop. Phase
/// names are `&'static str` constants from [`phase`] so accumulation is a
/// `BTreeMap` upsert with no allocation per sample.
#[derive(Debug, Default)]
pub struct Profiler {
    // Boxed so a disabled Profiler embedded in sim state is one pointer,
    // not an inline BTreeMap header.
    #[allow(clippy::box_collection)]
    inner: Option<Box<BTreeMap<&'static str, PhaseStat>>>,
}

impl Profiler {
    /// A disabled profiler: every call is a no-op branch.
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// An enabled profiler with empty accumulators.
    pub fn enabled() -> Self {
        Profiler {
            inner: Some(Box::default()),
        }
    }

    /// Whether timers are live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a phase timer (a no-op token when disabled).
    pub fn start(&self) -> PhaseToken {
        PhaseToken(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Stops a timer started by [`Profiler::start`], accumulating the
    /// elapsed wall time under `name`.
    pub fn stop(&mut self, name: &'static str, token: PhaseToken) {
        if let (Some(stats), Some(started)) = (self.inner.as_mut(), token.0) {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            stats.entry(name).or_default().observe_ns(ns);
        }
    }

    /// Records an externally measured duration under `name`.
    pub fn record_ns(&mut self, name: &'static str, ns: u64) {
        if let Some(stats) = self.inner.as_mut() {
            stats.entry(name).or_default().observe_ns(ns);
        }
    }

    /// Consumes the profiler into its report (empty when disabled).
    pub fn into_report(self) -> ProfileReport {
        ProfileReport {
            phases: self
                .inner
                .map(|stats| {
                    stats
                        .into_iter()
                        .map(|(name, stat)| (name.to_string(), stat))
                        .collect()
                })
                .unwrap_or_default(),
        }
    }
}

/// What one profiler gathered: per-phase stats, sorted by phase name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// `(phase name, stats)` pairs, sorted by name.
    pub phases: Vec<(String, PhaseStat)>,
}

impl ProfileReport {
    /// No phases recorded?
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The stats for `name`, if recorded.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Total nanoseconds recorded under `name` (0 when absent).
    pub fn total_ns(&self, name: &str) -> u64 {
        self.phase(name).map_or(0, |s| s.total_ns)
    }

    /// Folds another report into this one, phase by phase. Merging in
    /// slot order keeps the merged report deterministic in everything
    /// but the durations themselves.
    pub fn merge(&mut self, other: &ProfileReport) {
        for (name, stat) in &other.phases {
            match self.phases.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.phases[i].1.merge(stat),
                Err(i) => self.phases.insert(i, (name.clone(), stat.clone())),
            }
        }
    }
}

/// One job's deterministic work-accounting row in `profile.json`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobWork {
    /// Job label (mechanism name, possibly suffixed with the cell size).
    pub label: String,
    /// The job's seed.
    pub seed: u64,
    /// Population size of the job's swarm.
    pub peers: u64,
    /// Allocation-loop peer visits across the run.
    pub visited: u64,
    /// Visits that moved at least one byte.
    pub productive: u64,
}

impl JobWork {
    /// Fraction of allocation visits that moved no bytes (`None` when no
    /// visits were recorded, e.g. a journal-replayed job).
    pub fn wasted_visit_ratio(&self) -> Option<f64> {
        (self.visited > 0).then(|| 1.0 - self.productive as f64 / self.visited as f64)
    }
}

/// Everything `profile.json` records about one profiled run: merged phase
/// timings (wall clock, machine-dependent) plus deterministic work
/// accounting (exact, reproducible).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunProfile {
    /// Which artifact ran (e.g. `"fig4"`).
    pub artifact: String,
    /// The scale preset (e.g. `"quick"`).
    pub scale: String,
    /// Jobs in the batch.
    pub jobs: u64,
    /// Jobs that carried a live profiler (smaller than `jobs` under
    /// `--profile-every` sampling or journal replay).
    pub profiled_jobs: u64,
    /// Merged per-phase stats, sorted by phase name.
    pub phases: Vec<(String, PhaseStat)>,
    /// Deterministic work counters, sorted by name.
    pub work: Vec<(String, u64)>,
    /// Per-job work rows, in slot order.
    pub per_job: Vec<JobWork>,
}

impl RunProfile {
    /// The value of work counter `name` (0 when absent).
    pub fn work_counter(&self, name: &str) -> u64 {
        self.work
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The stats for phase `name`, if recorded.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Fraction of [`phase::SIM_RUN`] wall time attributed to the
    /// disjoint [`phase::ATTRIBUTED`] phases (`None` when no `sim.run`
    /// time was recorded). The gap is engine heap operations and event
    /// dispatch.
    pub fn attributed_fraction(&self) -> Option<f64> {
        let run = self.phase(phase::SIM_RUN).map_or(0, |s| s.total_ns);
        if run == 0 {
            return None;
        }
        let covered: u64 = phase::ATTRIBUTED
            .iter()
            .filter_map(|name| self.phase(name))
            .map(|s| s.total_ns)
            .sum();
        Some(covered as f64 / run as f64)
    }

    /// Overall wasted-visit ratio from the merged work counters (`None`
    /// when no visits were recorded).
    pub fn wasted_visit_ratio(&self) -> Option<f64> {
        let visited = self.work_counter(work::PEERS_VISITED);
        let productive = self.work_counter(work::PEERS_PRODUCTIVE);
        (visited > 0).then(|| 1.0 - productive as f64 / visited as f64)
    }

    /// Structural validation shared by `coop-trace-lint` and tests:
    /// checks phase names against [`phase::TAXONOMY`], duration
    /// consistency (`max_ns <= total_ns`, zero-count phases carry no
    /// time), histogram consistency (bucket counts sum to the call
    /// count), and per-job work sanity (`productive <= visited`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (name, stat) in &self.phases {
            if !phase::TAXONOMY.contains(&name.as_str()) {
                return Err(format!("phase '{name}' is not in the taxonomy"));
            }
            if stat.max_ns > stat.total_ns {
                return Err(format!("phase '{name}': max_ns exceeds total_ns"));
            }
            if stat.count == 0 && (stat.total_ns > 0 || !stat.buckets.is_empty()) {
                return Err(format!("phase '{name}': durations recorded with count 0"));
            }
            let in_buckets: u64 = stat.buckets.iter().sum();
            if in_buckets != stat.count {
                return Err(format!(
                    "phase '{name}': histogram holds {in_buckets} samples, count says {}",
                    stat.count
                ));
            }
        }
        for row in &self.per_job {
            if row.productive > row.visited {
                return Err(format!(
                    "job '{}': productive visits ({}) exceed visits ({})",
                    row.label, row.productive, row.visited
                ));
            }
        }
        Ok(())
    }

    /// Renders the profile as pretty-printed JSON (two-space indent,
    /// matching `manifest.json`). Derived ratios are written alongside
    /// the raw data so shell-level CI checks can grep them.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::from("{\n");
        let field = |out: &mut String, key: &str, value: String, last: bool| {
            out.push_str("  ");
            write_escaped(out, key);
            out.push_str(": ");
            out.push_str(&value);
            out.push_str(if last { "\n" } else { ",\n" });
        };
        let ratio = |v: Option<f64>| {
            let mut s = String::new();
            match v {
                Some(v) => write_f64(&mut s, v),
                None => s.push_str("null"),
            }
            s
        };
        field(
            &mut out,
            "schema_version",
            PROFILE_SCHEMA_VERSION.to_string(),
            false,
        );
        field(&mut out, "artifact", quoted(&self.artifact), false);
        field(&mut out, "scale", quoted(&self.scale), false);
        field(&mut out, "jobs", self.jobs.to_string(), false);
        field(
            &mut out,
            "profiled_jobs",
            self.profiled_jobs.to_string(),
            false,
        );
        field(
            &mut out,
            "attributed_fraction",
            ratio(self.attributed_fraction()),
            false,
        );
        field(
            &mut out,
            "wasted_visit_ratio",
            ratio(self.wasted_visit_ratio()),
            false,
        );
        out.push_str("  \"phases\": {");
        for (i, (name, stat)) in self.phases.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            write_escaped(&mut out, name);
            let _ = write!(
                &mut out,
                ": {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}, \"buckets\": [",
                stat.count, stat.total_ns, stat.max_ns
            );
            for (j, b) in stat.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(&mut out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str(if self.phases.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        let work = {
            let mut a = String::from("{");
            for (i, (name, value)) in self.work.iter().enumerate() {
                if i > 0 {
                    a.push_str(", ");
                }
                a.push_str(&quoted(name));
                let _ = write!(a, ": {value}");
            }
            a.push('}');
            a
        };
        field(&mut out, "work", work, false);
        out.push_str("  \"per_job\": [");
        for (i, row) in self.per_job.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let mut o = json::ObjWriter::new();
            o.str("label", &row.label)
                .uint("seed", row.seed)
                .uint("peers", row.peers)
                .uint("visited", row.visited)
                .uint("productive", row.productive);
            match row.wasted_visit_ratio() {
                Some(r) => o.f64("wasted_visit_ratio", r),
                None => o.raw("wasted_visit_ratio", "null"),
            };
            out.push_str(&o.finish());
        }
        out.push_str(if self.per_job.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }

    /// Writes `profile.json` into `dir` via the crash-safe
    /// [`write_atomic`](crate::write_atomic) path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(PROFILE_FILE);
        let mut text = self.to_json_pretty();
        text.push('\n');
        crate::atomic::write_atomic_str(&path, &text)?;
        Ok(path)
    }

    /// Parses profile JSON. Derived ratio fields are recomputed from the
    /// raw data, not read back.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (parse
    /// failure, missing field, or wrong type).
    pub fn parse(text: &str) -> Result<RunProfile, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let version = require_u64(&doc, "schema_version")?;
        if version != PROFILE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (expected {PROFILE_SCHEMA_VERSION})"
            ));
        }
        let phases = match doc.get("phases") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(name, v)| {
                    let buckets = match v.get("buckets") {
                        Some(Json::Arr(items)) => items
                            .iter()
                            .map(|b| {
                                b.as_f64()
                                    .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                                    .map(|v| v as u64)
                                    .ok_or_else(|| {
                                        format!("'phases.{name}.buckets' entries must be counts")
                                    })
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                        _ => return Err(format!("'phases.{name}' is missing buckets")),
                    };
                    Ok((
                        name.clone(),
                        PhaseStat {
                            count: require_u64(v, "count")
                                .map_err(|e| format!("phases.{name}: {e}"))?,
                            total_ns: require_u64(v, "total_ns")
                                .map_err(|e| format!("phases.{name}: {e}"))?,
                            max_ns: require_u64(v, "max_ns")
                                .map_err(|e| format!("phases.{name}: {e}"))?,
                            buckets,
                        },
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing or non-object field 'phases'".into()),
        };
        let work = obj_u64_entries(&doc, "work")?;
        let per_job = match doc.get("per_job") {
            Some(Json::Arr(rows)) => rows
                .iter()
                .map(|row| {
                    Ok(JobWork {
                        label: row
                            .get("label")
                            .and_then(Json::as_str)
                            .ok_or("per_job rows need a string 'label'")?
                            .to_string(),
                        seed: require_u64(row, "seed")?,
                        peers: require_u64(row, "peers")?,
                        visited: require_u64(row, "visited")?,
                        productive: require_u64(row, "productive")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing or non-array field 'per_job'".into()),
        };
        Ok(RunProfile {
            artifact: require_str(&doc, "artifact")?,
            scale: require_str(&doc, "scale")?,
            jobs: require_u64(&doc, "jobs")?,
            profiled_jobs: require_u64(&doc, "profiled_jobs")?,
            phases,
            work,
            per_job,
        })
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::new();
    write_escaped(&mut out, s);
    out
}

fn require_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn require_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn obj_u64_entries(doc: &Json, key: &str) -> Result<Vec<(String, u64)>, String> {
    match doc.get(key) {
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(name, v)| {
                v.as_f64()
                    .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                    .map(|v| (name.clone(), v as u64))
                    .ok_or_else(|| format!("'{key}.{name}' must be a non-negative integer"))
            })
            .collect(),
        _ => Err(format!("missing or non-object field '{key}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        assert!(!p.is_enabled());
        let t = p.start();
        p.stop(phase::SIM_RUN, t);
        p.record_ns(phase::SIM_ALLOCATE, 123);
        assert!(p.into_report().is_empty());
    }

    #[test]
    fn enabled_profiler_accumulates_per_phase() {
        let mut p = Profiler::enabled();
        let t = p.start();
        std::thread::sleep(std::time::Duration::from_micros(10));
        p.stop(phase::SIM_ALLOCATE, t);
        p.record_ns(phase::SIM_ALLOCATE, 1000);
        p.record_ns(phase::SIM_SETTLE, 5);
        let report = p.into_report();
        let alloc = report.phase(phase::SIM_ALLOCATE).expect("recorded");
        assert_eq!(alloc.count, 2);
        assert!(alloc.total_ns >= 1000);
        assert_eq!(alloc.buckets.iter().sum::<u64>(), 2);
        assert_eq!(report.total_ns(phase::SIM_SETTLE), 5);
        assert_eq!(report.total_ns(phase::SIM_FAULTS), 0);
    }

    #[test]
    fn phase_stat_log2_buckets_match_histogram_convention() {
        let mut s = PhaseStat::default();
        s.observe_ns(0); // bucket 0
        s.observe_ns(1); // bucket 1
        s.observe_ns(2); // bucket 2
        s.observe_ns(3); // bucket 2
        s.observe_ns(4); // bucket 3
        assert_eq!(s.buckets, vec![1, 1, 2, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.max_ns, 4);
    }

    #[test]
    fn report_merge_is_per_phase() {
        let mut a = Profiler::enabled();
        a.record_ns(phase::SIM_ALLOCATE, 10);
        a.record_ns(phase::SIM_FAULTS, 1);
        let mut b = Profiler::enabled();
        b.record_ns(phase::SIM_ALLOCATE, 30);
        b.record_ns(phase::SIM_SAMPLE, 2);
        let mut merged = a.into_report();
        merged.merge(&b.into_report());
        assert_eq!(merged.total_ns(phase::SIM_ALLOCATE), 40);
        assert_eq!(merged.phase(phase::SIM_ALLOCATE).unwrap().count, 2);
        assert_eq!(merged.total_ns(phase::SIM_FAULTS), 1);
        assert_eq!(merged.total_ns(phase::SIM_SAMPLE), 2);
        let names: Vec<&str> = merged.phases.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "merged phases stay sorted");
    }

    fn sample() -> RunProfile {
        let mut run = PhaseStat::default();
        run.observe_ns(1_000_000);
        let mut alloc = PhaseStat::default();
        alloc.observe_ns(600_000);
        let mut settle = PhaseStat::default();
        settle.observe_ns(390_000);
        RunProfile {
            artifact: "fig4".into(),
            scale: "quick".into(),
            jobs: 6,
            profiled_jobs: 3,
            phases: vec![
                (phase::SIM_ALLOCATE.into(), alloc),
                (phase::SIM_RUN.into(), run),
                (phase::SIM_SETTLE.into(), settle),
            ],
            work: vec![
                (work::CANDIDATE_SCANS.into(), 4000),
                (work::PEERS_PRODUCTIVE.into(), 75),
                (work::PEERS_VISITED.into(), 100),
            ],
            per_job: vec![
                JobWork {
                    label: "BitTorrent".into(),
                    seed: 42,
                    peers: 80,
                    visited: 60,
                    productive: 45,
                },
                JobWork {
                    label: "T-Chain".into(),
                    seed: 42,
                    peers: 80,
                    visited: 40,
                    productive: 30,
                },
            ],
        }
    }

    #[test]
    fn profile_round_trips_through_parse() {
        let p = sample();
        let text = p.to_json_pretty();
        let back = RunProfile::parse(&text).expect("round trip");
        assert_eq!(back, p);
        back.validate().expect("sample validates");
    }

    #[test]
    fn derived_ratios_are_computed_and_written() {
        let p = sample();
        let frac = p.attributed_fraction().expect("sim.run recorded");
        assert!((frac - 0.99).abs() < 1e-9, "{frac}");
        let wasted = p.wasted_visit_ratio().expect("visits recorded");
        assert!((wasted - 0.25).abs() < 1e-9, "{wasted}");
        let text = p.to_json_pretty();
        assert!(text.contains("\"wasted_visit_ratio\": 0.25"), "{text}");
        assert!(text.contains("\"attributed_fraction\": 0.99"), "{text}");
    }

    #[test]
    fn validate_rejects_structural_problems() {
        let mut p = sample();
        p.phases.push(("swarm.not_a_phase".into(), PhaseStat::default()));
        assert!(p.validate().unwrap_err().contains("taxonomy"));

        let mut p = sample();
        p.phases[0].1.max_ns = p.phases[0].1.total_ns + 1;
        assert!(p.validate().unwrap_err().contains("max_ns"));

        let mut p = sample();
        p.phases[0].1.buckets.push(7);
        assert!(p.validate().unwrap_err().contains("histogram"));

        let mut p = sample();
        p.per_job[0].productive = p.per_job[0].visited + 1;
        assert!(p.validate().unwrap_err().contains("productive"));
    }

    #[test]
    fn parse_rejects_missing_and_malformed_fields() {
        assert!(RunProfile::parse("not json").is_err());
        assert!(RunProfile::parse("{}").is_err());
        let text = sample()
            .to_json_pretty()
            .replace("\"jobs\": 6", "\"jobs\": \"six\"");
        let err = RunProfile::parse(&text).unwrap_err();
        assert!(err.contains("jobs"), "{err}");
    }

    #[test]
    fn write_to_creates_the_file() {
        let dir = std::env::temp_dir().join(format!(
            "coop-telemetry-profile-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = sample().write_to(&dir).expect("write");
        assert!(path.ends_with(PROFILE_FILE));
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(RunProfile::parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
