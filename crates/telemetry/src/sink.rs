//! Pluggable destinations for trace events.
//!
//! A [`Recorder`](crate::Recorder) always retains the last
//! `ring_capacity` kept events in a bounded ring buffer; sinks are the
//! *streaming* side — each kept event is offered to every attached sink
//! as it happens. Four implementations cover the workspace's needs:
//! [`JsonlSink`] (a file or any writer), [`CsvProbeSink`] (round-probe
//! time series as CSV), [`StderrSink`] (the `COOP_SWARM_DEBUG`
//! shorthand), and [`MemorySink`] (tests and the batch executor's
//! ordered post-run writing).

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// A writer that buffers everything in memory and publishes the whole
/// file atomically (tmp + fsync + rename) on [`Write::flush`]. The
/// path-backed sink constructors use it so a killed run leaves either no
/// trace file or a complete one — never a truncated stream.
#[derive(Debug)]
pub struct AtomicFile {
    path: PathBuf,
    buf: Vec<u8>,
}

impl AtomicFile {
    /// Buffers writes destined for `path`.
    pub fn new(path: &Path) -> Self {
        AtomicFile {
            path: path.to_path_buf(),
            buf: Vec::new(),
        }
    }
}

impl Write for AtomicFile {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(bytes);
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        crate::atomic::write_atomic(&self.path, &self.buf)
    }
}

/// A destination for kept trace events.
pub trait Sink: Send {
    /// Receives one event, with its sequence number in the kept stream.
    fn record(&mut self, seq: u64, event: &TraceEvent);

    /// Flushes any buffered output (end of run).
    fn flush(&mut self) {}
}

/// Streams events as JSON Lines to any writer (typically a
/// `BufWriter<File>`).
pub struct JsonlSink<W: Write + Send> {
    writer: W,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }
}

impl JsonlSink<AtomicFile> {
    /// Creates a JSONL trace sink that publishes `path` atomically when
    /// flushed at the end of the run.
    ///
    /// # Errors
    ///
    /// Infallible today (the buffer is in memory until flush); kept
    /// fallible for signature stability.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(AtomicFile::new(path)))
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&mut self, _seq: u64, event: &TraceEvent) {
        let _ = writeln!(self.writer, "{}", event.to_jsonl());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Extracts the [`TraceEvent::RoundProbe`] time series as CSV — the
/// plottable gauge stream (active/bootstrapped/completed peers,
/// in-flight transfers) behind a run. All other event kinds are ignored.
pub struct CsvProbeSink<W: Write + Send> {
    writer: W,
}

/// The header row [`CsvProbeSink`] writes before its first record.
pub const PROBE_CSV_HEADER: &str = "round,sim_s,active,bootstrapped,completed,inflight";

impl<W: Write + Send> CsvProbeSink<W> {
    /// Wraps a writer, emitting the CSV header immediately.
    pub fn new(mut writer: W) -> Self {
        let _ = writeln!(writer, "{PROBE_CSV_HEADER}");
        CsvProbeSink { writer }
    }
}

impl CsvProbeSink<AtomicFile> {
    /// Creates a probe CSV sink that publishes `path` atomically when
    /// flushed at the end of the run.
    ///
    /// # Errors
    ///
    /// Infallible today (the buffer is in memory until flush); kept
    /// fallible for signature stability.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(CsvProbeSink::new(AtomicFile::new(path)))
    }
}

impl<W: Write + Send> Sink for CsvProbeSink<W> {
    fn record(&mut self, _seq: u64, event: &TraceEvent) {
        if let TraceEvent::RoundProbe {
            round,
            sim_s,
            active,
            bootstrapped,
            completed,
            inflight,
            ..
        } = event
        {
            let _ = writeln!(
                self.writer,
                "{round},{sim_s},{active},{bootstrapped},{completed},{inflight}"
            );
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Writes events to stderr, one JSONL line each — the structured
/// replacement for the old ad-hoc debug `eprintln!`s.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&mut self, _seq: u64, event: &TraceEvent) {
        eprintln!("{}", event.to_jsonl());
    }
}

/// Collects every kept event in memory. Cloning the sink shares the
/// buffer, so a test (or the batch executor) can keep a handle while the
/// recorder owns the sink.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the events collected so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events collected.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&mut self, _seq: u64, event: &TraceEvent) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: u64) -> TraceEvent {
        TraceEvent::EngineStats {
            events_processed: round,
            queue_depth_hwm: 1,
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(0, &event(1));
        sink.record(1, &event(2));
        sink.flush();
        let text = String::from_utf8(sink.writer).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            crate::json::parse(line).expect("valid json");
        }
    }

    #[test]
    fn csv_probe_sink_keeps_only_round_probes() {
        let mut sink = CsvProbeSink::new(Vec::new());
        sink.record(0, &event(1)); // EngineStats: ignored
        sink.record(
            1,
            &TraceEvent::RoundProbe {
                round: 3,
                sim_s: 4.0,
                active: 10,
                bootstrapped: 8,
                completed: 2,
                inflight: 5,
                bytes_by_reason_delta: vec![1, 2],
                availability_buckets: vec![0, 1],
            },
        );
        sink.flush();
        let text = String::from_utf8(sink.writer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec![PROBE_CSV_HEADER, "3,4,10,8,2,5"]);
    }

    #[test]
    fn atomic_file_sink_publishes_only_on_flush() {
        let dir = std::env::temp_dir().join("coop-telemetry-sink-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.record(0, &event(1));
        assert!(!path.exists(), "nothing on disk before flush");
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn memory_sink_handles_share_the_buffer() {
        let sink = MemorySink::new();
        let mut writer = sink.clone();
        assert!(sink.is_empty());
        writer.record(0, &event(7));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0], event(7));
    }
}
