//! Zero-dependency observability for the coop-incentives workspace.
//!
//! This crate provides the instrumentation substrate used by the DES
//! engine, the swarm simulator, and the experiment executor:
//!
//! - [`Recorder`] — counters, log2-bucket [`Histogram`]s, sim-time spans,
//!   and a sampled stream of structured [`TraceEvent`]s, all behind one
//!   handle that is free when disabled (the default).
//! - [`TraceEvent`] / [`Category`] — the event taxonomy. Each event
//!   renders to one JSONL line with a stable field order.
//! - [`Sink`] implementations — [`JsonlSink`] (trace files),
//!   [`StderrSink`] (the `COOP_SWARM_DEBUG` shorthand), and
//!   [`MemorySink`] (tests and the batch executor's ordered post-run
//!   writing).
//! - [`RunManifest`] — the per-run `manifest.json` written next to
//!   artifacts: config fingerprint, seed, mechanisms, attack scenario,
//!   wall-clock phase timings, and counter totals.
//! - [`Profiler`] / [`RunProfile`] — scoped monotonic phase timers over
//!   the [`profile::phase`] taxonomy and the per-run `profile.json` they
//!   feed: per-phase log2 duration histograms plus deterministic
//!   work-accounting counters.
//! - [`json`] — the in-house JSON writer/parser that keeps all of the
//!   above dependency-free (the vendored `serde_json` shim cannot parse).
//! - [`write_atomic`] — the crash-safe tmp-file + fsync + rename write
//!   path every artifact, manifest and trace file goes through.
//!
//! # Determinism contract
//!
//! The recorder observes, never decides: it holds no RNG, no simulation
//! branch consults it, and it records only values the caller already
//! computed. Enabling telemetry — at any sampling rate — must not change
//! a single artifact byte. Wall-clock readings appear only in the
//! manifest and in executor [`TraceEvent::JobSpan`] events, never in
//! figure artifacts. Integration tests in `coop-experiments` pin this by
//! byte-comparing fig4 outputs across telemetry modes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod event;
pub mod json;
pub mod manifest;
pub mod profile;
pub mod recorder;
pub mod sink;

pub use atomic::{write_atomic, write_atomic_str};
pub use event::{Category, TraceEvent};
pub use manifest::{fingerprint_debug, Fnv, PhaseTiming, RunManifest, MANIFEST_FILE};
pub use profile::{
    JobWork, PhaseStat, PhaseToken, ProfileReport, Profiler, RunProfile, Stopwatch, PROFILE_FILE,
    PROFILE_SCHEMA_VERSION,
};
pub use recorder::{Histogram, Recorder, Sampling, SpanStats, TelemetryConfig, TelemetryReport};
pub use sink::{AtomicFile, CsvProbeSink, JsonlSink, MemorySink, Sink, StderrSink, PROBE_CSV_HEADER};
