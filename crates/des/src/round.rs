//! Timeslot ("round") bookkeeping.
//!
//! The paper's analysis (Section IV) is phrased in discrete timeslots in
//! which every user uploads up to its per-slot capacity. [`RoundDriver`]
//! maps the continuous event clock onto a sequence of fixed-length rounds.

use crate::{Duration, SimTime};

/// The index of a timeslot, starting at 0.
pub type Round = u64;

/// Maps simulation time onto fixed-length rounds and produces the schedule
/// of round-tick times.
///
/// # Example
///
/// ```
/// use coop_des::{Duration, RoundDriver, SimTime};
///
/// let rd = RoundDriver::new(Duration::from_secs(1));
/// assert_eq!(rd.round_of(SimTime::from_millis(1500)), 1);
/// assert_eq!(rd.start_of(2), SimTime::from_secs(2));
/// assert_eq!(rd.next_tick_after(SimTime::from_millis(300)), SimTime::from_secs(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundDriver {
    length: Duration,
}

impl RoundDriver {
    /// Creates a driver with the given round length.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn new(length: Duration) -> Self {
        assert!(!length.is_zero(), "round length must be positive");
        RoundDriver { length }
    }

    /// The length of one round.
    pub fn length(&self) -> Duration {
        self.length
    }

    /// Returns the round containing time `t`.
    pub fn round_of(&self, t: SimTime) -> Round {
        t.as_millis() / self.length.as_millis()
    }

    /// Returns the start time of round `r`.
    pub fn start_of(&self, r: Round) -> SimTime {
        SimTime::from_millis(r * self.length.as_millis())
    }

    /// Returns the first round-boundary strictly after `t`.
    pub fn next_tick_after(&self, t: SimTime) -> SimTime {
        self.start_of(self.round_of(t) + 1)
    }

    /// Converts a bytes-per-second rate into a per-round byte budget.
    pub fn bytes_per_round(&self, bytes_per_sec: u64) -> u64 {
        // Rounded to the nearest byte so sub-second rounds do not
        // systematically under-allocate.
        (bytes_per_sec as u128 * self.length.as_millis() as u128 / 1000) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_boundaries() {
        let rd = RoundDriver::new(Duration::from_secs(1));
        assert_eq!(rd.round_of(SimTime::ZERO), 0);
        assert_eq!(rd.round_of(SimTime::from_millis(999)), 0);
        assert_eq!(rd.round_of(SimTime::from_secs(1)), 1);
        assert_eq!(rd.start_of(5), SimTime::from_secs(5));
    }

    #[test]
    fn next_tick_is_strictly_after() {
        let rd = RoundDriver::new(Duration::from_millis(250));
        assert_eq!(
            rd.next_tick_after(SimTime::ZERO),
            SimTime::from_millis(250)
        );
        assert_eq!(
            rd.next_tick_after(SimTime::from_millis(250)),
            SimTime::from_millis(500)
        );
    }

    #[test]
    fn bytes_per_round_scales_with_length() {
        let one_sec = RoundDriver::new(Duration::from_secs(1));
        let half_sec = RoundDriver::new(Duration::from_millis(500));
        assert_eq!(one_sec.bytes_per_round(1_000_000), 1_000_000);
        assert_eq!(half_sec.bytes_per_round(1_000_000), 500_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_round_length_panics() {
        RoundDriver::new(Duration::ZERO);
    }
}
