//! The simulation run loop.

use crate::{EventQueue, SimTime};

/// A discrete-event simulation engine.
///
/// The engine owns an [`EventQueue`] and a clock. [`Engine::run_until`]
/// repeatedly pops the earliest event, advances the clock to its timestamp
/// and hands it to a handler closure. The handler may schedule further
/// events through the `&mut Engine` it is given.
///
/// # Example
///
/// ```
/// use coop_des::{Duration, Engine, SimTime};
///
/// // A self-rescheduling "tick" event that counts to five.
/// let mut engine = Engine::new();
/// engine.schedule(SimTime::ZERO, ());
/// let mut ticks = 0;
/// engine.run_until(SimTime::from_secs(10), |now, (), eng| {
///     ticks += 1;
///     if ticks < 5 {
///         eng.schedule(now + Duration::from_secs(1), ());
///     }
/// });
/// assert_eq!(ticks, 5);
/// ```
#[derive(Clone, Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    queue_hwm: usize,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with an empty queue and the clock at zero.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            queue_hwm: 0,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The deepest the event queue has ever been — a sizing/observability
    /// statistic; tracking it costs one comparison per schedule.
    pub fn queue_depth_high_water_mark(&self) -> usize {
        self.queue_hwm
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time; the past
    /// cannot be changed.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({at} < {now})",
            now = self.now
        );
        self.queue.push(at, event);
        self.queue_hwm = self.queue_hwm.max(self.queue.len());
    }

    /// Runs events in time order until the queue is exhausted or the next
    /// event would fire after `deadline`. Events exactly at `deadline` are
    /// processed. Returns the number of events processed by this call.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> u64
    where
        F: FnMut(SimTime, E, &mut Engine<E>),
    {
        let start = self.processed;
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            // Pop without holding a borrow across the handler call.
            let ev = self.queue.pop().expect("peeked event must exist");
            self.now = ev.at;
            self.processed += 1;
            handler(ev.at, ev.event, self);
        }
        // Leave the clock at the deadline so a subsequent run resumes there.
        if self.now < deadline && deadline != SimTime::MAX {
            self.now = deadline;
        }
        self.processed - start
    }

    /// Runs until the queue is empty (use with care: self-rescheduling
    /// events will never terminate). Returns the number of events processed.
    pub fn run_to_completion<F>(&mut self, handler: F) -> u64
    where
        F: FnMut(SimTime, E, &mut Engine<E>),
    {
        self.run_until(SimTime::MAX, handler)
    }
}

impl<E: Clone> Engine<E> {
    /// Exports the engine's complete state — pending events *with their
    /// FIFO sequence numbers*, clock, processed count and queue
    /// high-water mark — for mid-run checkpointing. An engine restored
    /// from the snapshot pops the same events in the same order as the
    /// original, including ties (same-time events keep their insertion
    /// order because the internal sequence counter is part of the
    /// snapshot).
    pub fn snapshot(&self) -> EngineSnapshot<E> {
        EngineSnapshot {
            engine: self.clone(),
        }
    }
}

/// An exported [`Engine`] state (see [`Engine::snapshot`]). Opaque:
/// the only thing to do with one is [`EngineSnapshot::restore`] it.
#[derive(Clone, Debug)]
pub struct EngineSnapshot<E> {
    engine: Engine<E>,
}

impl<E> EngineSnapshot<E> {
    /// Rebuilds an engine in exactly the captured state.
    pub fn restore(self) -> Engine<E> {
        self.engine
    }

    /// Number of events pending in the captured queue.
    pub fn pending(&self) -> usize {
        self.engine.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    #[test]
    fn processes_events_in_order_and_advances_clock() {
        let mut eng = Engine::new();
        eng.schedule(SimTime::from_millis(20), "late");
        eng.schedule(SimTime::from_millis(10), "early");
        let mut log = Vec::new();
        eng.run_to_completion(|now, ev, _| log.push((now.as_millis(), ev)));
        assert_eq!(log, vec![(10, "early"), (20, "late")]);
        assert_eq!(eng.events_processed(), 2);
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut eng = Engine::new();
        eng.schedule(SimTime::from_millis(5), 1);
        eng.schedule(SimTime::from_millis(10), 2);
        eng.schedule(SimTime::from_millis(11), 3);
        let mut seen = Vec::new();
        let n = eng.run_until(SimTime::from_millis(10), |_, ev, _| seen.push(ev));
        assert_eq!(n, 2);
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(eng.pending(), 1);
        assert_eq!(eng.now(), SimTime::from_millis(10));
    }

    #[test]
    fn handler_can_schedule_new_events() {
        let mut eng = Engine::new();
        eng.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        eng.run_to_completion(|now, depth, e| {
            count += 1;
            if depth < 3 {
                e.schedule(now + Duration::from_millis(1), depth + 1);
            }
        });
        assert_eq!(count, 4);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng = Engine::new();
        eng.schedule(SimTime::from_millis(10), ());
        eng.run_to_completion(|_, (), _| {});
        eng.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn queue_high_water_mark_tracks_peak_depth() {
        let mut eng = Engine::new();
        assert_eq!(eng.queue_depth_high_water_mark(), 0);
        eng.schedule(SimTime::from_millis(1), 'a');
        eng.schedule(SimTime::from_millis(2), 'b');
        eng.schedule(SimTime::from_millis(3), 'c');
        assert_eq!(eng.queue_depth_high_water_mark(), 3);
        eng.run_to_completion(|_, _, _| {});
        // Draining never lowers the mark.
        assert_eq!(eng.queue_depth_high_water_mark(), 3);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn snapshot_restore_preserves_order_ties_and_counters() {
        let mut eng = Engine::new();
        // Three same-time events: FIFO order must survive the snapshot.
        eng.schedule(SimTime::from_millis(5), 'a');
        eng.schedule(SimTime::from_millis(5), 'b');
        eng.schedule(SimTime::from_millis(5), 'c');
        eng.schedule(SimTime::from_millis(1), 'z');
        let mut first = Vec::new();
        eng.run_until(SimTime::from_millis(1), |_, ev, _| first.push(ev));
        assert_eq!(first, vec!['z']);

        let snap = eng.snapshot();
        assert_eq!(snap.pending(), 3);
        let mut restored = snap.restore();
        assert_eq!(restored.now(), eng.now());
        assert_eq!(restored.events_processed(), eng.events_processed());
        assert_eq!(
            restored.queue_depth_high_water_mark(),
            eng.queue_depth_high_water_mark()
        );

        let mut a = Vec::new();
        eng.run_to_completion(|_, ev, _| a.push(ev));
        let mut b = Vec::new();
        restored.run_to_completion(|_, ev, _| b.push(ev));
        assert_eq!(a, b);
        assert_eq!(a, vec!['a', 'b', 'c']);
    }

    #[test]
    fn clock_jumps_to_deadline_when_queue_runs_dry() {
        let mut eng: Engine<()> = Engine::new();
        eng.run_until(SimTime::from_secs(9), |_, (), _| {});
        assert_eq!(eng.now(), SimTime::from_secs(9));
    }
}
