//! A stable, deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// An event together with the time at which it fires and a monotonically
/// increasing sequence number used to break ties deterministically.
///
/// Two events scheduled for the same [`SimTime`] are delivered in the order
/// they were scheduled (FIFO), which keeps simulations reproducible.
#[derive(Clone, Debug)]
pub struct ScheduledEvent<E> {
    /// The instant at which the event fires.
    pub at: SimTime,
    /// Scheduling order, used as a tie-breaker for events at the same time.
    pub seq: u64,
    /// The caller-supplied payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, with the smallest sequence number winning ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use coop_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(10), "b");
/// q.push(SimTime::from_millis(5), "a");
/// q.push(SimTime::from_millis(10), "c");
///
/// assert_eq!(q.pop().unwrap().event, "a");
/// assert_eq!(q.pop().unwrap().event, "b"); // FIFO among equal times
/// assert_eq!(q.pop().unwrap().event, "c");
/// assert!(q.pop().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Returns the time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_millis(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(50), ());
        q.push(SimTime::from_millis(20), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(20)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}
