//! Deterministic random-number streams.
//!
//! Simulations must be exactly reproducible from a single `u64` seed, yet
//! different components (arrival process, each peer's mechanism, piece
//! selection, …) should draw from *independent* streams so that adding a
//! random draw in one component does not perturb another. [`SeedTree`]
//! derives independent child seeds from a root seed via SplitMix64, the
//! standard seed-sequencing construction.

use rand::rngs::SmallRng;
use rand::Rng;
use rand::RngCore;
use rand::SeedableRng;

/// Advances a SplitMix64 state and returns the next output.
///
/// SplitMix64 is the recommended generator for deriving seed material; its
/// outputs are equidistributed over `u64` and decorrelated for distinct
/// inputs.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tree of deterministic seeds.
///
/// Children are addressed by an arbitrary `u64` label (e.g. a peer index or
/// a component tag), so the same label always yields the same child seed
/// regardless of the order in which children are requested.
///
/// # Example
///
/// ```
/// use coop_des::rng::SeedTree;
/// use rand::Rng;
///
/// let tree = SeedTree::new(42);
/// let mut arrivals = tree.rng(0);
/// let mut peer_7 = tree.rng(7);
/// // Streams are independent and reproducible:
/// let a: u64 = arrivals.gen();
/// let b: u64 = tree.rng(0).gen();
/// assert_eq!(a, b);
/// let _ = peer_7.gen::<u64>();
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// Creates a seed tree from a root seed.
    pub fn new(root: u64) -> Self {
        SeedTree { root }
    }

    /// Returns the root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives the child seed for `label`.
    pub fn child_seed(&self, label: u64) -> u64 {
        // Mix the root and the label through two SplitMix64 steps so that
        // (root, label) pairs map to well-separated seeds.
        let mut s = self.root ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
        let first = splitmix64(&mut s);
        splitmix64(&mut s) ^ first.rotate_left(17)
    }

    /// Returns a fresh RNG for the child stream `label`.
    pub fn rng(&self, label: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.child_seed(label))
    }

    /// Returns a sub-tree rooted at the child seed for `label`, for
    /// hierarchical components (e.g. per-peer trees with per-module leaves).
    pub fn subtree(&self, label: u64) -> SeedTree {
        SeedTree::new(self.child_seed(label))
    }

    /// Exports the tree's complete stream state for checkpointing.
    ///
    /// `SeedTree` streams are *positionless* by construction: consumers
    /// derive a fresh child RNG per use (per round, per peer, per
    /// component label) instead of advancing a shared generator, so the
    /// root seed plus each consumer's own cursor (e.g. the round index)
    /// pins the position of every stream. A checkpoint therefore stores
    /// this single word; [`SeedTree::import`] rebuilds a tree whose every
    /// stream continues exactly where the exported one would.
    pub fn export(&self) -> u64 {
        self.root
    }

    /// Rebuilds a tree from [`SeedTree::export`]ed state.
    pub fn import(state: u64) -> SeedTree {
        SeedTree::new(state)
    }
}

/// Samples an exponentially distributed value with the given mean, via
/// the inverse CDF. Used for Poisson inter-arrival times.
///
/// # Panics
///
/// Panics if `mean` is not positive and finite.
///
/// # Example
///
/// ```
/// use coop_des::rng::{exponential, SeedTree};
/// let mut rng = SeedTree::new(1).rng(0);
/// let x = exponential(&mut rng, 2.0);
/// assert!(x >= 0.0);
/// ```
pub fn exponential(rng: &mut dyn RngCore, mean: f64) -> f64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "exponential mean must be positive, got {mean}"
    );
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() * mean
}

/// Samples an index with probability proportional to `weights[i]`.
/// Returns `None` if the weights are empty or sum to zero.
///
/// # Example
///
/// ```
/// use coop_des::rng::{weighted_index, SeedTree};
/// let mut rng = SeedTree::new(1).rng(0);
/// let i = weighted_index(&mut rng, &[0.0, 3.0, 1.0]).unwrap();
/// assert!(i == 1 || i == 2);
/// ```
pub fn weighted_index(rng: &mut dyn RngCore, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            if x < w {
                return Some(i);
            }
            x -= w;
        }
    }
    weights
        .iter()
        .rposition(|&w| w.is_finite() && w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn same_label_same_stream() {
        let t = SeedTree::new(7);
        let xs: Vec<u64> = (0..8).map(|_| 0).scan(t.rng(3), |r, _| Some(r.gen())).collect();
        let ys: Vec<u64> = (0..8).map(|_| 0).scan(t.rng(3), |r, _| Some(r.gen())).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_different_streams() {
        let t = SeedTree::new(7);
        let a: u64 = t.rng(1).gen();
        let b: u64 = t.rng(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_roots_different_streams() {
        let a: u64 = SeedTree::new(1).rng(0).gen();
        let b: u64 = SeedTree::new(2).rng(0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn child_seeds_have_no_obvious_collisions() {
        let t = SeedTree::new(0xDEADBEEF);
        let seeds: HashSet<u64> = (0..10_000).map(|i| t.child_seed(i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn subtree_differs_from_parent_streams() {
        let t = SeedTree::new(99);
        let sub = t.subtree(5);
        assert_ne!(sub.root(), t.root());
        assert_ne!(sub.child_seed(0), t.child_seed(0));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SeedTree::new(3).rng(0);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_bad_mean() {
        let mut rng = SeedTree::new(3).rng(0);
        exponential(&mut rng, 0.0);
    }

    #[test]
    fn weighted_index_is_proportional() {
        let mut rng = SeedTree::new(4).rng(0);
        let weights = [1.0, 0.0, 3.0];
        let mut hits = [0u32; 3];
        for _ in 0..20_000 {
            hits[weighted_index(&mut rng, &weights).unwrap()] += 1;
        }
        assert_eq!(hits[1], 0);
        let frac = hits[2] as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn weighted_index_handles_degenerate_inputs() {
        let mut rng = SeedTree::new(5).rng(0);
        assert_eq!(weighted_index(&mut rng, &[]), None);
        assert_eq!(weighted_index(&mut rng, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut rng, &[f64::NAN, 2.0]), Some(1));
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 from the canonical SplitMix64
        // implementation (Vigna).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }
}
