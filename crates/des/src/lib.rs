//! # coop-des
//!
//! A small, deterministic discrete-event simulation (DES) engine used as the
//! substrate for the cooperative-computing incentive-mechanism simulator.
//!
//! The engine is deliberately generic: it knows nothing about peers, pieces,
//! or incentive mechanisms. It provides
//!
//! * [`SimTime`] — an integer simulation clock (milliseconds),
//! * [`EventQueue`] — a stable priority queue of timestamped events,
//! * [`Engine`] — a run loop that pops events in time order and dispatches
//!   them to a handler,
//! * [`RoundDriver`] — a helper that turns the event queue into a sequence of
//!   fixed-length timeslots ("rounds"), matching the timeslot model used by
//!   the paper's analysis (Section IV-B),
//! * [`rng`] — deterministic, independently-seeded random-number streams so
//!   that simulations are exactly reproducible from a single `u64` seed.
//!
//! # Example
//!
//! ```
//! use coop_des::{Engine, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::from_millis(5), Ev::Ping);
//! engine.schedule(SimTime::from_millis(10), Ev::Pong);
//!
//! let mut seen = Vec::new();
//! engine.run_until(SimTime::from_millis(100), |_now, ev, _eng| {
//!     seen.push(ev);
//! });
//! assert_eq!(seen, vec![Ev::Ping, Ev::Pong]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod engine;
mod queue;
pub mod rng;
mod round;

pub use clock::{Duration, SimTime};
pub use engine::{Engine, EngineSnapshot};
pub use queue::{EventQueue, ScheduledEvent};
pub use round::{Round, RoundDriver};
