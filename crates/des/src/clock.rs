//! Simulation clock types.
//!
//! The simulator counts time in integer milliseconds. Integer time makes
//! event ordering exact (no floating-point ties) and keeps runs reproducible
//! across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in milliseconds since the start of
/// the simulation.
///
/// `SimTime` is a transparent newtype over `u64`; it implements the usual
/// ordering and arithmetic with [`Duration`].
///
/// # Example
///
/// ```
/// use coop_des::{Duration, SimTime};
/// let t = SimTime::from_secs(3) + Duration::from_millis(250);
/// assert_eq!(t.as_millis(), 3250);
/// assert_eq!(t.as_secs_f64(), 3.25);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero time — the instant the simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable simulation time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Returns the time in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> Duration {
        assert!(
            earlier <= self,
            "SimTime::since called with a later time ({earlier} > {self})"
        );
        Duration(self.0 - earlier.0)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A span of simulated time in milliseconds.
///
/// # Example
///
/// ```
/// use coop_des::Duration;
/// assert_eq!(Duration::from_secs(2).as_millis(), 2000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Duration(u64);

impl Duration {
    /// A zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1000)
    }

    /// Returns the duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Multiplies the duration by an integer factor.
    pub const fn times(self, n: u64) -> Duration {
        Duration(self.0 * n)
    }

    /// Returns true if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl From<Duration> for SimTime {
    fn from(d: Duration) -> SimTime {
        SimTime(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(4).as_millis(), 4000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(Duration::from_secs(1).times(3), Duration::from_millis(3000));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t, SimTime::from_millis(1500));
        assert_eq!(t.since(SimTime::from_secs(1)), Duration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "later time")]
    fn since_panics_on_later_time() {
        SimTime::ZERO.since(SimTime::from_secs(1));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(999) < SimTime::from_secs(1));
        assert!(Duration::from_secs(1) > Duration::from_millis(999));
    }

    #[test]
    fn saturating_add_does_not_overflow() {
        let t = SimTime::MAX.saturating_add(Duration::from_secs(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1250).to_string(), "1.250s");
        assert_eq!(Duration::from_millis(30).to_string(), "0.030s");
    }

    #[test]
    fn duration_subtraction_saturates() {
        let d = Duration::from_secs(1) - Duration::from_secs(2);
        assert!(d.is_zero());
    }
}
