//! Property-based tests for the DES engine.

use coop_des::rng::SeedTree;
use coop_des::{Duration, Engine, EventQueue, RoundDriver, SimTime};
use proptest::prelude::*;

proptest! {
    /// The queue releases events in nondecreasing time order regardless of
    /// insertion order.
    #[test]
    fn queue_is_time_ordered(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_millis(t), t);
        }
        let mut last = 0;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at.as_millis() >= last);
            last = ev.at.as_millis();
        }
    }

    /// Every scheduled event is delivered exactly once.
    #[test]
    fn engine_delivers_every_event(times in proptest::collection::vec(0u64..5_000, 0..100)) {
        let mut eng = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            eng.schedule(SimTime::from_millis(t), i);
        }
        let mut seen = vec![false; times.len()];
        eng.run_to_completion(|_, i, _| { seen[i] = true; });
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(eng.events_processed(), times.len() as u64);
    }

    /// round_of and start_of are consistent: a round starts within itself,
    /// and times map to the round whose window contains them.
    #[test]
    fn round_mapping_consistent(len_ms in 1u64..5_000, t in 0u64..1_000_000) {
        let rd = RoundDriver::new(Duration::from_millis(len_ms));
        let r = rd.round_of(SimTime::from_millis(t));
        let start = rd.start_of(r).as_millis();
        prop_assert!(start <= t);
        prop_assert!(t < start + len_ms);
    }

    /// Child seeds are a pure function of (root, label).
    #[test]
    fn seed_tree_is_deterministic(root in any::<u64>(), label in any::<u64>()) {
        let a = SeedTree::new(root).child_seed(label);
        let b = SeedTree::new(root).child_seed(label);
        prop_assert_eq!(a, b);
    }

    /// Distinct labels essentially never collide.
    #[test]
    fn seed_tree_labels_distinct(root in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let t = SeedTree::new(root);
        prop_assert_ne!(t.child_seed(a), t.child_seed(b));
    }
}

/// Splitting the run at an arbitrary deadline must not change the delivery
/// order (resumability).
#[test]
fn split_runs_equal_single_run() {
    let times: Vec<u64> = vec![5, 1, 9, 9, 3, 7, 2, 9, 0, 4];
    let collect = |split: Option<u64>| {
        let mut eng = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            eng.schedule(SimTime::from_millis(t), i);
        }
        let mut log = Vec::new();
        if let Some(s) = split {
            eng.run_until(SimTime::from_millis(s), |_, i, _| log.push(i));
        }
        eng.run_to_completion(|_, i, _| log.push(i));
        log
    };
    let whole = collect(None);
    for split in 0..=10 {
        assert_eq!(collect(Some(split)), whole, "split at {split}");
    }
}
