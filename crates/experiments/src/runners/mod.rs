//! One runner per paper table/figure, plus ablations beyond the paper.

pub mod ablations;
pub mod extensions;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig4_churn;
pub mod fig4_scale;
pub mod fig5;
pub mod fig6;
pub mod fig_consensus;
pub mod fig_epoch;
pub mod fluid;
pub mod perf_diff;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;

use coop_attacks::AttackPlan;
use coop_faults::FaultPlan;
use coop_incentives::MechanismKind;
use coop_swarm::{flash_crowd_with, SimResult, Simulation};
use coop_telemetry::{profile::phase, ProfileReport, Profiler, Recorder, TelemetryReport};

use crate::scenario::Workload;
use crate::Scale;

/// Runs one swarm simulation of `kind` at `scale`, optionally under an
/// attack plan, a fault plan, and/or scenario workload overrides. The seed
/// controls population, arrivals and every random draw; identical inputs
/// give identical results.
pub(crate) fn run_sim(
    kind: MechanismKind,
    scale: Scale,
    plan: Option<&AttackPlan>,
    faults: Option<&FaultPlan>,
    workload: Option<&Workload>,
    seed: u64,
) -> SimResult {
    run_sim_traced(
        kind,
        scale,
        plan,
        faults,
        workload,
        seed,
        Recorder::disabled(),
        None,
    )
    .0
}

/// [`run_sim`] with an attached telemetry recorder and an optional mid-run
/// checkpoint cadence. Both are purely observational: the [`SimResult`] is
/// identical whether the recorder is enabled, disabled, or sampling at any
/// rate, and for any checkpoint cadence including none.
///
/// A `workload` with `None` overrides (or no workload at all) uses the
/// scale's default population and the paper's capacity mix — byte-identical
/// to the pre-scenario code path.
#[allow(clippy::too_many_arguments)] // one parameter per orthogonal override
pub(crate) fn run_sim_traced(
    kind: MechanismKind,
    scale: Scale,
    plan: Option<&AttackPlan>,
    faults: Option<&FaultPlan>,
    workload: Option<&Workload>,
    seed: u64,
    recorder: Recorder,
    checkpoint_every: Option<u64>,
) -> (SimResult, TelemetryReport) {
    let (result, report, _) = run_sim_profiled(
        kind,
        scale,
        plan,
        faults,
        workload,
        seed,
        recorder,
        checkpoint_every,
        false,
        1,
    );
    (result, report)
}

/// [`run_sim_traced`] with an optionally live [`Profiler`]: when
/// `profiled`, construction is timed under [`phase::EXEC_BUILD`] and the
/// simulation runs with phase timers on, returning the gathered
/// [`ProfileReport`]. Profiling is observational like the recorder — the
/// [`SimResult`] is byte-identical either way. `shards` threads execute
/// each round's phases inside the sim (`--shards`; 1 = unsharded) — also
/// observational: results are byte-identical for any shard count.
#[allow(clippy::too_many_arguments)] // one parameter per orthogonal override
pub(crate) fn run_sim_profiled(
    kind: MechanismKind,
    scale: Scale,
    plan: Option<&AttackPlan>,
    faults: Option<&FaultPlan>,
    workload: Option<&Workload>,
    seed: u64,
    recorder: Recorder,
    checkpoint_every: Option<u64>,
    profiled: bool,
    shards: usize,
) -> (SimResult, TelemetryReport, ProfileReport) {
    let mut profiler = if profiled {
        Profiler::enabled()
    } else {
        Profiler::disabled()
    };
    let build_t = profiler.start();
    let config = scale.config(seed);
    let mix = match workload.and_then(|w| w.mix) {
        Some(mix) => mix.to_mix(),
        None => coop_incentives::analysis::capacity::CapacityClassMix::paper_default(),
    };
    let peers = workload.and_then(|w| w.peers).unwrap_or_else(|| scale.peers());
    let population = flash_crowd_with(
        &config,
        peers,
        kind,
        seed,
        &mix,
        scale.arrival_window(),
    );
    let mut builder = Simulation::builder(config)
        .population(population)
        .recorder(recorder);
    if let Some(plan) = plan {
        // The builder seeds patches with `config.seed`, which is `seed`.
        builder = builder.attack_plan(*plan);
    }
    if let Some(faults) = faults {
        builder = builder.fault_plan(*faults);
    }
    if let Some(every) = checkpoint_every {
        builder = builder.checkpoint_every(every);
    }
    if shards > 1 {
        builder = builder.shards(shards);
    }
    let sim = builder.build().expect("scale configs validate");
    profiler.stop(phase::EXEC_BUILD, build_t);
    sim.with_profiler(profiler).run_profiled()
}

/// The capacity vector used by the analytic runners: one sampled
/// population at the given scale, sorted descending as the analysis
/// requires.
pub(crate) fn analytic_capacities(
    scale: Scale,
    seed: u64,
) -> coop_incentives::analysis::capacity::CapacityVector {
    use coop_des::rng::SeedTree;
    let mix = coop_incentives::analysis::capacity::CapacityClassMix::paper_default();
    let mut rng = SeedTree::new(seed).rng(0xCAFE);
    mix.sample(scale.peers(), &mut rng)
}
