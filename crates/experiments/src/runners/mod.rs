//! One runner per paper table/figure, plus ablations beyond the paper.

pub mod ablations;
pub mod extensions;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fluid;
pub mod table1;
pub mod table2;
pub mod table3;

use coop_attacks::AttackPlan;
use coop_incentives::MechanismKind;
use coop_swarm::{flash_crowd_with, SimResult, Simulation};

use crate::Scale;

/// Runs one swarm simulation of `kind` at `scale`, optionally under an
/// attack plan. The seed controls population, arrivals and every random
/// draw; identical inputs give identical results.
pub(crate) fn run_sim(
    kind: MechanismKind,
    scale: Scale,
    plan: Option<&AttackPlan>,
    seed: u64,
) -> SimResult {
    let config = scale.config(seed);
    let mix = coop_incentives::analysis::capacity::CapacityClassMix::paper_default();
    let population = flash_crowd_with(
        &config,
        scale.peers(),
        kind,
        seed,
        &mix,
        scale.arrival_window(),
    );
    let mut builder = Simulation::builder(config).population(population);
    if let Some(plan) = plan {
        // The builder seeds patches with `config.seed`, which is `seed`.
        builder = builder.attack_plan(*plan);
    }
    builder.build().expect("scale configs validate").run()
}

/// The capacity vector used by the analytic runners: one sampled
/// population at the given scale, sorted descending as the analysis
/// requires.
pub(crate) fn analytic_capacities(
    scale: Scale,
    seed: u64,
) -> coop_incentives::analysis::capacity::CapacityVector {
    use coop_des::rng::SeedTree;
    let mix = coop_incentives::analysis::capacity::CapacityClassMix::paper_default();
    let mut rng = SeedTree::new(seed).rng(0xCAFE);
    mix.sample(scale.peers(), &mut rng)
}
