//! Fluid-model predictions (Qiu–Srikant \[27\], the model the paper's
//! footnote 3 borrows its effectiveness quantification from), with each
//! algorithm's `η` taken from Proposition 2's expected piece-exchange
//! probability — and a cross-validation against the event-driven
//! simulator.

use coop_incentives::analysis::exchange::PieceCountDistribution;
use coop_incentives::analysis::fluid::{effectiveness, flash_crowd_model};
use coop_incentives::MechanismKind;
use serde::Serialize;

use crate::runners::run_sim;
use crate::table::num;
use crate::{Scale, Table};

/// One algorithm's fluid prediction next to the simulator's measurement.
#[derive(Clone, Debug, Serialize)]
pub struct FluidRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Effectiveness `η` (expected exchange probability).
    pub eta: f64,
    /// Fluid-predicted time for the flash crowd to drain to 5 %.
    pub fluid_drain_s: Option<f64>,
    /// Simulated time by which 95 % of compliant peers completed.
    pub simulated_p95_s: Option<f64>,
}

/// The fluid report.
#[derive(Clone, Debug, Serialize)]
pub struct FluidReport {
    /// Scale used.
    pub scale: String,
    /// Rows in the paper's order.
    pub rows: Vec<FluidRow>,
}

impl FluidReport {
    /// The row for `kind`.
    pub fn get(&self, kind: MechanismKind) -> &FluidRow {
        self.rows
            .iter()
            .find(|r| r.algorithm == kind.name())
            .expect("all kinds present")
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Algorithm",
            "η (Prop. 2)",
            "fluid drain-to-5% (s)",
            "simulated p95 completion (s)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.algorithm.clone(),
                num(r.eta),
                r.fluid_drain_s.map_or("never".into(), num),
                r.simulated_p95_s.map_or("never".into(), num),
            ]);
        }
        format!(
            "Fluid model (Qiu–Srikant [27]) vs simulator ({} scale)\n{}",
            self.scale,
            t.render()
        )
    }
}

/// Runs the fluid experiment: analytic trajectories for every algorithm
/// plus the simulator's completion tail at the same scale.
pub fn run(scale: Scale, seed: u64) -> FluidReport {
    let config = scale.config(seed);
    let pieces = config.file.num_pieces();
    let dist = PieceCountDistribution::uniform(pieces);
    let n = scale.peers();
    // μ in files/second from the mean capacity.
    let mix = coop_incentives::analysis::capacity::CapacityClassMix::paper_default();
    let mu = mix.mean() / config.file.size_bytes() as f64;
    let seeder_equiv = config.seeder_bps / mix.mean();

    let out = crate::OutputDir::default_dir();
    let mut chart = crate::plot::LineChart::new(
        format!("fluid model — leecher population ({} scale)", scale.name()),
        "time (s)",
        "leechers x(t)",
    );
    let rows = MechanismKind::ALL
        .iter()
        .map(|&kind| {
            let model = flash_crowd_model(kind, n, &dist, mu, seeder_equiv);
            let horizon = 50_000.0;
            let fluid_drain_s = model.drain_time(0.05, horizon, 0.5);
            // Trajectory artifact for plotting.
            let traj: Vec<(f64, f64)> = model
                .integrate(horizon.min(10_000.0), 2.0)
                .iter()
                .map(|s| (s.t, s.x))
                .collect();
            let slug = kind.name().to_lowercase().replace('-', "");
            let _ = out.csv(
                &format!("fluid_leechers_{}_{}", slug, scale.name()),
                &["time_s", "leechers"],
                &traj,
            );
            chart.push_series(crate::plot::Series::new(kind.name(), traj.clone()));
            let sim = run_sim(kind, scale, None, None, None, seed);
            FluidRow {
                algorithm: kind.name().to_string(),
                eta: effectiveness(kind, &dist, n, 0.2),
                fluid_drain_s,
                simulated_p95_s: sim.completion_cdf().quantile(0.95),
            }
        })
        .collect();
    let report = FluidReport {
        scale: scale.name().to_string(),
        rows,
    };
    let _ = crate::write_json(&format!("fluid_{}", scale.name()), &report);
    let _ = out.svg(&format!("fluid_leechers_{}", scale.name()), &chart);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluid_and_simulator_agree_on_the_extremes() {
        let r = run(Scale::Quick, 81);
        // Reciprocity: η = 0, both sides say "never" within horizon.
        let rec = r.get(MechanismKind::Reciprocity);
        assert_eq!(rec.eta, 0.0);
        assert!(rec.simulated_p95_s.is_none());
        // Altruism: both sides finish, and altruism's η is maximal.
        let alt = r.get(MechanismKind::Altruism);
        assert!(alt.fluid_drain_s.is_some());
        assert!(alt.simulated_p95_s.is_some());
        for row in &r.rows {
            assert!(alt.eta >= row.eta - 1e-12, "{}", row.algorithm);
        }
    }

    #[test]
    fn fluid_drain_ordering_matches_eta_ordering() {
        let r = run(Scale::Quick, 82);
        let drain = |k: MechanismKind| {
            r.get(k).fluid_drain_s.unwrap_or(f64::INFINITY)
        };
        assert!(drain(MechanismKind::Altruism) <= drain(MechanismKind::TChain) + 1e-9);
        assert!(drain(MechanismKind::TChain) <= drain(MechanismKind::BitTorrent) + 1e-9);
        // Reciprocity drains only through the persistent seeder — an order
        // of magnitude slower than any peer-exchanging algorithm.
        assert!(
            drain(MechanismKind::Reciprocity) > 5.0 * drain(MechanismKind::BitTorrent),
            "seeder-only drain must be far slower: {} vs {}",
            drain(MechanismKind::Reciprocity),
            drain(MechanismKind::BitTorrent)
        );
    }

    #[test]
    fn render_contains_eta_column() {
        let text = run(Scale::Quick, 83).render();
        assert!(text.contains("η"));
        assert!(text.contains("Reciprocity"));
    }
}
