//! **Fig. 3** — efficiency comparison with piece availability
//! (Proposition 2, Corollary 2), plus the Proposition 3 reputation panel.
//!
//! Panel A evaluates the expected piece-exchange probabilities
//! `π_A ≥ π_TC ≥ π_BT` (reciprocity = 0) for growing swarm sizes,
//! reproducing the figure's ranking: altruism ≥ T-Chain ≥ FairTorrent ≥
//! BitTorrent ≥ reciprocity, with T-Chain approaching altruism as `N`
//! grows.
//!
//! Panel B quantifies Proposition 3: how much a reputation/capacity
//! mismatch degrades the reputation algorithm's fairness and efficiency.

use coop_incentives::analysis::exchange::{
    expected_exchange_probability, PieceCountDistribution,
};
use coop_incentives::analysis::reputation::{prop3_efficiency, prop3_fairness};
use coop_incentives::MechanismKind;
use serde::Serialize;

use crate::table::num;
use crate::{Scale, Table};

/// Exchange probabilities at one swarm size.
#[derive(Clone, Debug, Serialize)]
pub struct ExchangePoint {
    /// Number of users `N`.
    pub n: usize,
    /// Expected exchange probability per algorithm, in
    /// `MechanismKind::ALL` order.
    pub probabilities: Vec<f64>,
}

/// One reputation-skew sample for the Prop. 3 panel.
#[derive(Clone, Debug, Serialize)]
pub struct ReputationSkewPoint {
    /// Fraction of users whose reputation is decoupled from capacity.
    pub skew: f64,
    /// Resulting fairness `F`.
    pub fairness_f: f64,
    /// Resulting efficiency `E`.
    pub efficiency_e: f64,
}

/// The Fig. 3 report.
#[derive(Clone, Debug, Serialize)]
pub struct Fig3Report {
    /// Piece count `M` used for the probability model.
    pub pieces: u32,
    /// Panel A: exchange probabilities over swarm sizes.
    pub exchange: Vec<ExchangePoint>,
    /// Panel B: Prop. 3 degradation under reputation skew.
    pub reputation_skew: Vec<ReputationSkewPoint>,
}

impl Fig3Report {
    /// The probability of `kind` at the largest swarm size.
    pub fn final_probability(&self, kind: MechanismKind) -> f64 {
        let idx = MechanismKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("known kind");
        self.exchange.last().expect("nonempty sweep").probabilities[idx]
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut headers = vec!["N".to_string()];
        headers.extend(MechanismKind::ALL.iter().map(|k| k.name().to_string()));
        let mut t = Table::new(headers);
        for p in &self.exchange {
            let mut row = vec![p.n.to_string()];
            row.extend(p.probabilities.iter().map(|&x| num(x)));
            t.row(row);
        }
        let mut t2 = Table::new(vec!["reputation skew", "F", "E"]);
        for p in &self.reputation_skew {
            t2.row(vec![num(p.skew), num(p.fairness_f), num(p.efficiency_e)]);
        }
        format!(
            "Fig. 3 (panel A) — expected piece-exchange probability vs N (M = {})\n{}\n\
             Fig. 3 (panel B) — Prop. 3: reputation skew vs fairness/efficiency\n{}",
            self.pieces,
            t.render(),
            t2.render()
        )
    }
}

/// Runs the Fig. 3 computation.
pub fn run(scale: Scale, _seed: u64) -> Fig3Report {
    let pieces = match scale {
        Scale::Quick => 32,
        Scale::Default => 128,
        Scale::Paper => 512,
    };
    let dist = PieceCountDistribution::uniform(pieces);
    let sizes: &[usize] = match scale {
        Scale::Quick => &[10, 40, 160],
        Scale::Default => &[10, 50, 200, 1000],
        Scale::Paper => &[10, 100, 1000, 10_000],
    };
    let exchange: Vec<ExchangePoint> = sizes
        .iter()
        .map(|&n| ExchangePoint {
            n,
            probabilities: MechanismKind::ALL
                .iter()
                .map(|&k| expected_exchange_probability(k, &dist, n, 0.2))
                .collect(),
        })
        .collect();

    // Panel B: start from reputation aligned with capacity, then decouple
    // a growing fraction of users (their reputation drops to 1% of their
    // capacity — the "low reputation but moderate upload bandwidth" case).
    let caps: Vec<f64> = (0..50)
        .map(|i| 16_000.0 * (1.0 + (i % 5) as f64))
        .collect();
    let reputation_skew: Vec<ReputationSkewPoint> = [0.0, 0.1, 0.25, 0.5]
        .iter()
        .map(|&skew| {
            let mut reps = caps.clone();
            let skewed = (caps.len() as f64 * skew) as usize;
            for r in reps.iter_mut().take(skewed) {
                *r *= 0.01;
            }
            ReputationSkewPoint {
                skew,
                fairness_f: prop3_fairness(&reps, &caps),
                efficiency_e: prop3_efficiency(&reps, &caps),
            }
        })
        .collect();

    let report = Fig3Report {
        pieces,
        exchange,
        reputation_skew,
    };
    // CSV artifact: one series per algorithm.
    for (idx, kind) in MechanismKind::ALL.iter().enumerate() {
        let series: Vec<(f64, f64)> = report
            .exchange
            .iter()
            .map(|p| (p.n as f64, p.probabilities[idx]))
            .collect();
        let _ = crate::write_csv(
            &format!(
                "fig3_pi_{}_{}",
                kind.name().to_lowercase().replace('-', ""),
                pieces
            ),
            &["n", "pi"],
            &series,
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary2_ranking_at_every_size() {
        let r = run(Scale::Quick, 0);
        for point in &r.exchange {
            let p = |k: MechanismKind| {
                point.probabilities
                    [MechanismKind::ALL.iter().position(|&x| x == k).unwrap()]
            };
            assert!(p(MechanismKind::Altruism) >= p(MechanismKind::TChain) - 1e-12);
            assert!(p(MechanismKind::TChain) >= p(MechanismKind::BitTorrent) - 1e-12);
            assert_eq!(p(MechanismKind::Reciprocity), 0.0);
        }
    }

    #[test]
    fn tchain_approaches_altruism_as_n_grows() {
        let r = run(Scale::Quick, 0);
        let gap_at = |i: usize| {
            let p = &r.exchange[i].probabilities;
            let alt = p[MechanismKind::ALL
                .iter()
                .position(|&k| k == MechanismKind::Altruism)
                .unwrap()];
            let tc = p[MechanismKind::ALL
                .iter()
                .position(|&k| k == MechanismKind::TChain)
                .unwrap()];
            alt - tc
        };
        assert!(gap_at(r.exchange.len() - 1) <= gap_at(0));
        assert!(gap_at(r.exchange.len() - 1) < 0.05);
    }

    #[test]
    fn prop3_degrades_with_skew() {
        let r = run(Scale::Quick, 0);
        let first = &r.reputation_skew[0];
        let last = r.reputation_skew.last().unwrap();
        assert!(first.fairness_f < 1e-9, "aligned reputations are fair");
        assert!(last.fairness_f > first.fairness_f);
        assert!(last.efficiency_e > first.efficiency_e);
    }

    #[test]
    fn render_mentions_both_panels() {
        let text = run(Scale::Quick, 0).render();
        assert!(text.contains("panel A"));
        assert!(text.contains("panel B"));
    }
}
