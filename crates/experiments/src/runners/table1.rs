//! **Table I** — expected download rates in equilibrium with perfect piece
//! availability and no free-riders.
//!
//! The analytic half evaluates the closed forms of
//! [`coop_incentives::analysis::equilibrium`] on a sampled capacity
//! population; the measured half runs the simulator and reports the
//! per-capacity-class usable download rates over the mid-phase of the run
//! (the regime the paper identifies as closest to the idealized
//! equilibrium: "the idealized scenario can model the middle of the
//! simulation").

use std::collections::BTreeMap;

use coop_incentives::analysis::equilibrium::{download_rates, EquilibriumParams};
use coop_incentives::MechanismKind;
use serde::Serialize;

use crate::runners::{analytic_capacities, run_sim};
use crate::table::num;
use crate::{Scale, Table};

/// One algorithm's analytic and measured mean download utilization.
#[derive(Clone, Debug, Serialize)]
pub struct Table1Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Analytic mean download utilization (`d_i − u_S/N`, averaged over
    /// users), in bytes/second.
    pub analytic_mean: f64,
    /// Analytic utilization for the highest-capacity class.
    pub analytic_top_class: f64,
    /// Analytic utilization for the lowest-capacity class.
    pub analytic_bottom_class: f64,
    /// Measured mean usable download rate over completed compliant peers,
    /// bytes/second.
    pub measured_mean: f64,
    /// Measured correlation between capacity and download rate (sign
    /// distinguishes the fair algorithms, where `d_i` tracks `U_i`, from
    /// altruism, where it does not).
    pub capacity_rate_correlation: f64,
}

/// The full Table I report.
#[derive(Clone, Debug, Serialize)]
pub struct Table1Report {
    /// Scale used.
    pub scale: String,
    /// Rows in the paper's algorithm order.
    pub rows: Vec<Table1Row>,
}

impl Table1Report {
    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Algorithm",
            "analytic mean d_i-u_S/N (B/s)",
            "analytic top class",
            "analytic bottom class",
            "measured mean d_i (B/s)",
            "corr(U_i, d_i)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.algorithm.clone(),
                num(r.analytic_mean),
                num(r.analytic_top_class),
                num(r.analytic_bottom_class),
                num(r.measured_mean),
                num(r.capacity_rate_correlation),
            ]);
        }
        format!(
            "Table I — equilibrium download rates ({} scale)\n{}",
            self.scale,
            t.render()
        )
    }
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        f64::NAN
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Runs the Table I experiment.
pub fn run(scale: Scale, seed: u64) -> Table1Report {
    let caps = analytic_capacities(scale, seed);
    let params = EquilibriumParams {
        seeder_rate: scale.config(seed).seeder_bps,
        ..EquilibriumParams::default()
    };
    let slice = caps.as_slice();
    let rows = MechanismKind::ALL
        .iter()
        .map(|&kind| {
            let d = download_rates(kind, &caps, &params);
            let seeder_each = params.seeder_rate / caps.len() as f64;
            let util: Vec<f64> = d.iter().map(|x| x - seeder_each).collect();
            let analytic_mean = util.iter().sum::<f64>() / util.len() as f64;

            // Measured side: usable download rate of each completed
            // compliant peer (bytes received / time to completion).
            let sim = run_sim(kind, scale, None, None, None, seed);
            let mut rates: Vec<(f64, f64)> = Vec::new(); // (capacity, rate)
            for p in sim.compliant() {
                if let Some(ct) = p.completion_s {
                    if ct > 0.0 {
                        rates.push((p.capacity_bps, p.bytes_received_usable as f64 / ct));
                    }
                }
            }
            let measured_mean = if rates.is_empty() {
                0.0
            } else {
                rates.iter().map(|&(_, r)| r).sum::<f64>() / rates.len() as f64
            };
            let (xs, ys): (Vec<f64>, Vec<f64>) = rates.into_iter().unzip();
            Table1Row {
                algorithm: kind.name().to_string(),
                analytic_mean,
                analytic_top_class: util.first().copied().unwrap_or(0.0),
                analytic_bottom_class: util.last().copied().unwrap_or(0.0),
                measured_mean,
                capacity_rate_correlation: pearson(&xs, &ys),
            }
        })
        .collect();
    // Keep a per-class analytic breakdown as a CSV artifact.
    let mut class_rows: Vec<Vec<String>> = Vec::new();
    for &kind in &MechanismKind::ALL {
        let d = download_rates(kind, &caps, &params);
        let mut by_class: BTreeMap<u64, (f64, u32)> = BTreeMap::new();
        for (u, di) in slice.iter().zip(&d) {
            let e = by_class.entry(*u as u64).or_insert((0.0, 0));
            e.0 += di;
            e.1 += 1;
        }
        for (class, (sum, n)) in by_class {
            class_rows.push(vec![
                kind.name().to_string(),
                class.to_string(),
                format!("{}", sum / n as f64),
            ]);
        }
    }
    let _ = crate::OutputDir::default_dir().csv_rows(
        &format!("table1_class_rates_{}", scale.name()),
        &["algorithm", "capacity_class_bps", "analytic_d_i_bps"],
        &class_rows,
    );
    Table1Report {
        scale: scale.name().to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_has_expected_shape() {
        let report = run(Scale::Quick, 7);
        assert_eq!(report.rows.len(), 6);
        let get = |name: &str| {
            report
                .rows
                .iter()
                .find(|r| r.algorithm == name)
                .unwrap()
                .clone()
        };
        // Reciprocity: zero utilization analytically, zero measured (no
        // completions).
        let rec = get("Reciprocity");
        assert_eq!(rec.analytic_mean, 0.0);
        assert_eq!(rec.measured_mean, 0.0);
        // T-Chain / FairTorrent: analytic d_i == U_i, so top class strictly
        // above bottom class.
        for name in ["T-Chain", "FairTorrent"] {
            let r = get(name);
            assert!(r.analytic_top_class > r.analytic_bottom_class, "{name}");
        }
        // Altruism: capacity-independent analytic rates (top ≈ bottom).
        let alt = get("Altruism");
        assert!(
            (alt.analytic_top_class - alt.analytic_bottom_class).abs()
                / alt.analytic_bottom_class
                < 0.15,
            "altruism rates are nearly capacity-independent"
        );
        // Measured: the capacity-fair algorithms correlate d with U far
        // more strongly than altruism does.
        let tc = get("T-Chain");
        assert!(
            tc.capacity_rate_correlation > alt.capacity_rate_correlation,
            "tc corr {} vs alt {}",
            tc.capacity_rate_correlation,
            alt.capacity_rate_correlation
        );
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert!(pearson(&[1.0], &[1.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_nan());
    }

    #[test]
    fn render_contains_all_algorithms() {
        let report = run(Scale::Quick, 3);
        let text = report.render();
        for kind in MechanismKind::ALL {
            assert!(text.contains(kind.name()), "{}", kind.name());
        }
    }
}
