//! **sweep** — run a declarative scenario pack over the robust executor.
//!
//! `coop-experiments sweep <scenario|spec.json|pack-dir>` loads a
//! [`ScenarioPack`], compiles each scenario into the plain [`SimJob`]
//! grid ([`Scenario::jobs`]), and runs the batches through the same
//! journaled, panic-isolated executor the figure runners use. A
//! `figure`-style scenario writes the full fig4-style artifact set per
//! seed — the baseline pack's `figure: "fig4"` output is byte-identical
//! to the plain `fig4` runner's. A `sweep`-style scenario writes one
//! summary CSV row per job plus one report JSON, in the style of the
//! fig4-churn sweep.

use coop_telemetry::Stopwatch;
use serde::Serialize;

use crate::exec::{BatchError, Executor};
use crate::runners::fig4::{emit_run_outputs, write_figure_artifacts};
use crate::scenario::{ArtifactStyle, Scenario, ScenarioPack};
use crate::table::num;
use crate::telemetry::TelemetryOpts;
use crate::{OutputDir, Scale, Table};

/// One (seed, peer-count, mechanism) cell of a scenario.
#[derive(Clone, Debug, Serialize)]
pub struct SweepRow {
    /// Algorithm name.
    pub algorithm: String,
    /// The cell's seed.
    pub seed: u64,
    /// Swarm population of the cell.
    pub peers: usize,
    /// Fraction of compliant peers that completed the download.
    pub completed_fraction: f64,
    /// Mean completion time (seconds) over completed compliant peers.
    pub mean_completion_s: Option<f64>,
    /// Mean bootstrap time in seconds.
    pub mean_bootstrap_s: Option<f64>,
    /// Final average fairness `(Σ u_i/d_i)/N`.
    pub avg_fairness: Option<f64>,
    /// Final fairness statistic `F` (0 = perfectly fair).
    pub fairness_f: f64,
    /// Cumulative susceptibility (free-rider share of peer upload bytes).
    pub susceptibility: f64,
    /// Bytes of completed transfers lost to fault-injected link loss.
    pub fault_dropped_bytes: u64,
    /// Whether the run ended in an unsatisfiable (stalled) swarm.
    pub stalled: bool,
}

/// One scenario's results within a pack run.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Free-text description from the spec.
    pub description: String,
    /// Artifact file-name stem.
    pub figure: String,
    /// Artifact style (`"figure"` / `"sweep"`).
    pub style: String,
    /// Fingerprint of the scenario's canonical spec, 16-digit hex.
    pub spec_fingerprint: String,
    /// Attack label (e.g. `"freeride(0.2)"`).
    pub attack: String,
    /// Jobs the scenario compiled to.
    pub jobs: usize,
    /// One row per job, in slot order (seed-major, then peer count, then
    /// mechanism).
    pub rows: Vec<SweepRow>,
}

/// The whole pack's report.
#[derive(Clone, Debug, Serialize)]
pub struct PackReport {
    /// Where the pack came from (built-in name, spec file, or directory).
    pub source: String,
    /// Scale used.
    pub scale: String,
    /// Base seed.
    pub seed: u64,
    /// Pack fingerprint (over every scenario fingerprint), 16-digit hex.
    pub pack_fingerprint: String,
    /// Per-scenario outcomes, in pack order (failed scenarios are
    /// absent — they are reported through the batch errors instead).
    pub scenarios: Vec<ScenarioOutcome>,
}

impl PackReport {
    /// The outcome for one scenario by name.
    pub fn get(&self, name: &str) -> &ScenarioOutcome {
        self.scenarios
            .iter()
            .find(|s| s.scenario == name)
            .expect("scenario present")
    }

    /// Renders the report: a pack summary table, then each scenario's
    /// per-cell rows.
    pub fn render(&self) -> String {
        let mut out = format!(
            "sweep — scenario pack '{}' ({} scale, seed {}, pack fingerprint {})\n",
            self.source, self.scale, self.seed, self.pack_fingerprint
        );
        let mut summary = Table::new(vec!["Scenario", "style", "figure", "jobs", "attack", "spec fp"]);
        for s in &self.scenarios {
            summary.row(vec![
                s.scenario.clone(),
                s.style.clone(),
                s.figure.clone(),
                s.jobs.to_string(),
                s.attack.clone(),
                s.spec_fingerprint.clone(),
            ]);
        }
        out.push_str(&summary.render());
        for s in &self.scenarios {
            out.push_str(&format!("\n{} — {}\n", s.scenario, s.description));
            let mut t = Table::new(vec![
                "Algorithm",
                "seed",
                "peers",
                "completed",
                "mean ct (s)",
                "F",
                "susceptibility",
                "stalled",
            ]);
            for r in &s.rows {
                t.row(vec![
                    r.algorithm.clone(),
                    r.seed.to_string(),
                    r.peers.to_string(),
                    num(r.completed_fraction),
                    r.mean_completion_s.map_or("n/a".into(), num),
                    num(r.fairness_f),
                    num(r.susceptibility),
                    r.stalled.to_string(),
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }
}

/// Runs every scenario of `pack` in order, collecting per-scenario batch
/// failures instead of aborting the pack: a scenario whose batch fails
/// writes no artifacts, but the remaining scenarios still run (and their
/// finished jobs are journaled either way).
pub fn try_run_pack(
    pack: &ScenarioPack,
    scale: Scale,
    seed: u64,
    cli_replicates: u64,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (PackReport, Vec<BatchError>) {
    let mut scenarios = Vec::new();
    let mut errors = Vec::new();
    for scenario in &pack.scenarios {
        match try_run_scenario(scenario, scale, seed, cli_replicates, executor, opts, out) {
            Ok(outcome) => scenarios.push(outcome),
            Err(err) => errors.push(err),
        }
    }
    (
        PackReport {
            source: pack.source.clone(),
            scale: scale.name().to_string(),
            seed,
            pack_fingerprint: format!("{:016x}", pack.fingerprint()),
            scenarios,
        },
        errors,
    )
}

/// Runs one scenario's batch and writes its artifacts.
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt; no
/// artifacts are written for the scenario in that case.
fn try_run_scenario(
    scenario: &Scenario,
    scale: Scale,
    base_seed: u64,
    cli_replicates: u64,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<ScenarioOutcome, BatchError> {
    let jobs = scenario.jobs(scale, base_seed, cli_replicates);
    let replicates = scenario.effective_replicates(cli_replicates);
    let sim_clock = Stopwatch::start();
    let run = executor.run_sims_robust(&jobs, opts);
    let sim_ms = sim_clock.elapsed_ms();
    let (results, trace) = run.into_complete(&scenario.name)?;
    let write_clock = Stopwatch::start();

    let rows: Vec<SweepRow> = jobs
        .iter()
        .zip(&results)
        .map(|(job, result)| SweepRow {
            algorithm: job.kind.name().to_string(),
            seed: job.seed,
            peers: job.peers(),
            completed_fraction: result.completed_fraction(),
            mean_completion_s: result.mean_completion_time(),
            mean_bootstrap_s: result.mean_bootstrap_time(),
            avg_fairness: result.final_avg_fairness(),
            fairness_f: result.final_fairness_stat(),
            susceptibility: result.final_susceptibility(),
            fault_dropped_bytes: result.totals.fault_dropped_bytes,
            stalled: result.stalled,
        })
        .collect();
    let outcome = ScenarioOutcome {
        scenario: scenario.name.clone(),
        description: scenario.description.clone(),
        figure: scenario.figure.clone(),
        style: scenario.style.name().to_string(),
        spec_fingerprint: format!("{:016x}", scenario.fingerprint()),
        attack: scenario.attack.label(),
        jobs: jobs.len(),
        rows,
    };

    match scenario.style {
        ArtifactStyle::Figure => {
            // One full fig4-style artifact set per seed. The spec parser
            // pins figure style to the full mechanism grid and at most one
            // peer count, so each seed's slice is exactly one figure row
            // set.
            let per_seed = scenario.mechanisms.len();
            for i in 0..replicates as usize {
                write_figure_artifacts(
                    &scenario.figure,
                    scale,
                    base_seed + i as u64,
                    &scenario.mechanisms,
                    &results[i * per_seed..(i + 1) * per_seed],
                    out,
                );
            }
        }
        ArtifactStyle::Sweep => {
            let csv_rows: Vec<Vec<String>> = outcome
                .rows
                .iter()
                .map(|r| {
                    vec![
                        outcome.scenario.clone(),
                        r.algorithm.clone(),
                        r.seed.to_string(),
                        r.peers.to_string(),
                        format!("{}", r.completed_fraction),
                        r.mean_completion_s.map_or(String::new(), |v| format!("{v}")),
                        r.mean_bootstrap_s.map_or(String::new(), |v| format!("{v}")),
                        r.avg_fairness.map_or(String::new(), |v| format!("{v}")),
                        format!("{}", r.fairness_f),
                        format!("{}", r.susceptibility),
                        r.fault_dropped_bytes.to_string(),
                        r.stalled.to_string(),
                    ]
                })
                .collect();
            let _ = out.csv_rows(
                &format!("{}_sweep_{}", scenario.figure, scale.name()),
                &[
                    "scenario",
                    "algorithm",
                    "seed",
                    "peers",
                    "completed_fraction",
                    "mean_completion_s",
                    "mean_bootstrap_s",
                    "avg_fairness",
                    "fairness_f",
                    "susceptibility",
                    "fault_dropped_bytes",
                    "stalled",
                ],
                &csv_rows,
            );
            let _ = out.json(&format!("{}_{}", scenario.figure, scale.name()), &outcome);
        }
    }

    if let Some(mut trace) = trace {
        trace.scenario = Some((scenario.name.clone(), scenario.fingerprint()));
        trace.push_phase("simulate", sim_ms);
        trace.push_phase("write_artifacts", write_clock.elapsed_ms());
        emit_run_outputs(
            &scenario.figure,
            &trace,
            opts,
            out,
            scale,
            base_seed,
            replicates,
            executor.jobs() as u64,
            &scenario.attack.label(),
        );
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::load_pack;

    fn tmp_out(tag: &str) -> OutputDir {
        let dir = std::env::temp_dir().join(format!(
            "coop-sweep-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        OutputDir::new(dir)
    }

    #[test]
    fn sweep_style_scenario_writes_summary_artifacts() {
        let dir = tmp_out("style");
        let spec = r#"{
            "spec_version": 1,
            "name": "tiny-sweep",
            "artifacts": "sweep",
            "mechanisms": ["BitTorrent", "Altruism"],
            "peers": [20, 30]
        }"#;
        let file = dir.path().join("tiny-sweep.json");
        std::fs::create_dir_all(dir.path()).unwrap();
        std::fs::write(&file, spec).unwrap();
        let pack = load_pack(file.to_str().unwrap()).unwrap();

        let (report, errors) = try_run_pack(
            &pack,
            Scale::Quick,
            5,
            1,
            &Executor::default(),
            &TelemetryOpts::disabled(),
            &dir,
        );
        assert!(errors.is_empty());
        let outcome = report.get("tiny-sweep");
        assert_eq!(outcome.jobs, 4, "2 peer counts x 2 mechanisms");
        assert_eq!(outcome.rows.len(), 4);
        assert_eq!(outcome.rows[0].peers, 20);
        assert_eq!(outcome.rows[2].peers, 30);
        assert_eq!(outcome.rows[0].algorithm, "BitTorrent");
        assert!(dir.path().join("tiny-sweep_sweep_quick.csv").is_file());
        assert!(dir.path().join("tiny-sweep_quick.json").is_file());
        assert!(report.render().contains("tiny-sweep"));
        let _ = std::fs::remove_dir_all(dir.path());
    }
}
