//! **Fig. 4** — simulated performance with all users compliant:
//! (a) download completion times, (b) average fairness over time,
//! (c) fraction of users bootstrapped over time.

use coop_attacks::AttackPlan;
use coop_incentives::MechanismKind;
use coop_swarm::SimResult;
use coop_telemetry::Stopwatch;
use serde::Serialize;

use crate::exec::{BatchError, Executor, SimJob};
use crate::table::num;
use crate::telemetry::{BatchTrace, TelemetryOpts};
use crate::{OutputDir, Scale, Table};

/// Summary of one algorithm's simulated run.
#[derive(Clone, Debug, Serialize)]
pub struct SimRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Fraction of compliant peers that completed the download.
    pub completed_fraction: f64,
    /// Mean completion time (seconds) over completed compliant peers.
    pub mean_completion_s: Option<f64>,
    /// Median completion time in seconds.
    pub median_completion_s: Option<f64>,
    /// Mean bootstrap time in seconds.
    pub mean_bootstrap_s: Option<f64>,
    /// Final average fairness `(Σ u_i/d_i)/N` (1 = perfectly fair).
    pub avg_fairness: Option<f64>,
    /// Final fairness statistic `F` (0 = perfectly fair).
    pub fairness_f: f64,
    /// Cumulative susceptibility (free-rider share of peer upload bytes).
    pub susceptibility: f64,
    /// Peak susceptibility over the run.
    pub peak_susceptibility: f64,
}

/// A full simulated-figure report (shared by Figs. 4, 5 and 6).
#[derive(Clone, Debug, Serialize)]
pub struct SimFigureReport {
    /// Which figure this is ("fig4" / "fig5" / "fig6").
    pub figure: String,
    /// Scale used.
    pub scale: String,
    /// Seed used.
    pub seed: u64,
    /// Rows in the paper's algorithm order.
    pub rows: Vec<SimRow>,
}

impl SimFigureReport {
    /// The row for `kind`.
    pub fn get(&self, kind: MechanismKind) -> &SimRow {
        self.rows
            .iter()
            .find(|r| r.algorithm == kind.name())
            .expect("all kinds present")
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Algorithm",
            "completed",
            "mean ct (s)",
            "median ct (s)",
            "mean bootstrap (s)",
            "avg fairness",
            "F",
            "susceptibility",
            "peak susc.",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.algorithm.clone(),
                num(r.completed_fraction),
                r.mean_completion_s.map_or("n/a".into(), num),
                r.median_completion_s.map_or("n/a".into(), num),
                r.mean_bootstrap_s.map_or("n/a".into(), num),
                r.avg_fairness.map_or("n/a".into(), num),
                num(r.fairness_f),
                num(r.susceptibility),
                num(r.peak_susceptibility),
            ]);
        }
        format!(
            "{} — simulated comparison ({} scale, seed {})\n{}",
            self.figure,
            self.scale,
            self.seed,
            t.render()
        )
    }
}

/// Runs the figure's algorithm set — [`MechanismKind::EXTENDED`], the
/// paper's six plus the epoch-settled variant — and collects the figure
/// series (completion CDF, fairness-vs-time, bootstrap-vs-time,
/// susceptibility-vs-time) as CSV artifacts named
/// `{figure}{panel}_{algorithm}_{scale}.csv`.
///
/// Execution is two-phase: the independent simulations fan out across
/// `executor`'s workers, then every artifact is written sequentially from
/// the slot-ordered results — so the report and all files on disk are
/// byte-identical for any worker count.
pub(crate) fn run_figure(
    figure: &str,
    scale: Scale,
    seed: u64,
    plan_for: impl Fn(MechanismKind) -> Option<AttackPlan>,
    executor: &Executor,
) -> SimFigureReport {
    run_figure_traced(
        figure,
        scale,
        seed,
        plan_for,
        executor,
        &TelemetryOpts::disabled(),
        &OutputDir::default_dir(),
        "none",
    )
    .0
}

/// [`run_figure`] with telemetry: when `opts` enables it, each simulation
/// runs with a recorder and the run's trace/progress/manifest outputs are
/// emitted (see [`emit_run_outputs`]). Artifacts land in `out` either way
/// and are byte-identical whether telemetry is on, off, or sampled.
#[allow(clippy::too_many_arguments)] // one call site per figure, all distinct
pub(crate) fn run_figure_traced(
    figure: &str,
    scale: Scale,
    seed: u64,
    plan_for: impl Fn(MechanismKind) -> Option<AttackPlan>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
    attack: &str,
) -> (SimFigureReport, Option<BatchTrace>) {
    try_run_figure_traced(figure, scale, seed, plan_for, executor, opts, out, attack)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_figure_traced`] under the executor's robustness policy: a job
/// that fails every attempt yields `Err` instead of panicking, after every
/// healthy job has still run (and been journaled). No figure artifacts are
/// written on failure — the artifact set is all-or-nothing, so a resumed
/// run can regenerate it byte-identically.
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
#[allow(clippy::too_many_arguments)] // one call site per figure, all distinct
pub(crate) fn try_run_figure_traced(
    figure: &str,
    scale: Scale,
    seed: u64,
    plan_for: impl Fn(MechanismKind) -> Option<AttackPlan>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
    attack: &str,
) -> Result<(SimFigureReport, Option<BatchTrace>), BatchError> {
    try_run_figure_traced_for(
        figure,
        scale,
        seed,
        &MechanismKind::EXTENDED,
        plan_for,
        executor,
        opts,
        out,
        attack,
    )
}

/// [`try_run_figure_traced`] over an explicit mechanism list (the
/// scenario-pack path restricts figures to their declared mechanisms; the
/// figure runners pass [`MechanismKind::EXTENDED`]).
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
#[allow(clippy::too_many_arguments)] // one call site per figure, all distinct
pub(crate) fn try_run_figure_traced_for(
    figure: &str,
    scale: Scale,
    seed: u64,
    kinds: &[MechanismKind],
    plan_for: impl Fn(MechanismKind) -> Option<AttackPlan>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
    attack: &str,
) -> Result<(SimFigureReport, Option<BatchTrace>), BatchError> {
    let jobs = SimJob::grid_of(scale, &[seed], kinds, plan_for);
    let sim_clock = Stopwatch::start();
    let run = executor.run_sims_robust(&jobs, opts);
    let sim_ms = sim_clock.elapsed_ms();
    let (results, trace) = run.into_complete(figure)?;
    let write_clock = Stopwatch::start();
    let report = write_figure_artifacts(figure, scale, seed, kinds, &results, out);
    let trace = trace.map(|mut trace| {
        trace.push_phase("simulate", sim_ms);
        trace.push_phase("write_artifacts", write_clock.elapsed_ms());
        emit_run_outputs(
            figure,
            &trace,
            opts,
            out,
            scale,
            seed,
            1,
            executor.jobs() as u64,
            attack,
        );
        trace
    });
    Ok((report, trace))
}

/// The telemetry tail of a traced run: per-job progress lines on stderr,
/// the slot-ordered JSONL trace (when `--trace-out` named a file), the
/// run's `manifest.json`, and — when `--profile` is on — `profile.json`,
/// all next to the artifacts in `out`.
///
/// Everything here carries wall-clock data, which is why none of it goes
/// into figure artifacts — those must stay byte-deterministic.
#[allow(clippy::too_many_arguments)] // plumbing for the manifest fields
pub(crate) fn emit_run_outputs(
    figure: &str,
    trace: &BatchTrace,
    opts: &TelemetryOpts,
    out: &OutputDir,
    scale: Scale,
    seed: u64,
    replicates: u64,
    jobs: u64,
    attack: &str,
) {
    for line in trace.progress_lines(figure) {
        eprintln!("{line}");
    }
    if let Some(path) = &opts.trace_out {
        match trace.write_jsonl(path) {
            Ok(n) => eprintln!("[{figure}] trace: {n} events -> {}", path.display()),
            Err(e) => eprintln!("[{figure}] trace write to {} failed: {e}", path.display()),
        }
    }
    match trace.write_probe_csv(out, figure) {
        Ok(path) => eprintln!("[{figure}] round probes -> {}", path.display()),
        Err(e) => eprintln!("[{figure}] probe CSV write failed: {e}"),
    }
    let manifest = trace.manifest(figure, scale, seed, replicates, jobs, attack);
    match manifest.write_to(out.path()) {
        Ok(path) => eprintln!("[{figure}] manifest -> {}", path.display()),
        Err(e) => eprintln!("[{figure}] manifest write failed: {e}"),
    }
    if opts.profile {
        match trace.run_profile(figure, scale).write_to(out.path()) {
            Ok(path) => eprintln!("[{figure}] profile -> {}", path.display()),
            Err(e) => eprintln!("[{figure}] profile write failed: {e}"),
        }
    }
}

/// The sequential artifact phase of [`run_figure`]: renders one figure's
/// report and writes its CSV/JSON/SVG artifacts from precomputed results
/// (one per mechanism, in `kinds` order — [`MechanismKind::EXTENDED`] for
/// the figure runners, a scenario's declared list for the sweep path).
pub(crate) fn write_figure_artifacts(
    figure: &str,
    scale: Scale,
    seed: u64,
    kinds: &[MechanismKind],
    results: &[SimResult],
    out: &OutputDir,
) -> SimFigureReport {
    assert_eq!(results.len(), kinds.len());
    // Panel charts collecting every algorithm's series (the shape of the
    // paper's figures).
    let mut panel_cdf = crate::plot::LineChart::new(
        format!("{figure}a — completion CDF ({} scale)", scale.name()),
        "completion time (s)",
        "fraction completed",
    );
    let mut panel_fair = crate::plot::LineChart::new(
        format!("{figure}b — average fairness over time"),
        "time (s)",
        "avg u/d",
    );
    let mut panel_boot = crate::plot::LineChart::new(
        format!("{figure}c — bootstrapped fraction over time"),
        "time (s)",
        "fraction bootstrapped",
    );
    let mut panel_susc = crate::plot::LineChart::new(
        format!("{figure}d — susceptibility over time"),
        "time (s)",
        "free-rider share",
    );
    let rows = kinds
        .iter()
        .zip(results)
        .map(|(&kind, result)| {
            let slug = kind.name().to_lowercase().replace('-', "");
            let tag = format!("{figure}_{slug}_{}", scale.name());
            let cdf_series = result.completion_cdf().series(50);
            let _ = out.csv(
                &format!("{tag}_completion_cdf"),
                &["completion_s", "fraction"],
                &cdf_series,
            );
            let _ = out.csv(
                &format!("{tag}_fairness_vs_time"),
                &["time_s", "avg_fairness"],
                result.fairness_avg.points(),
            );
            let _ = out.csv(
                &format!("{tag}_bootstrapped_vs_time"),
                &["time_s", "fraction_bootstrapped"],
                result.bootstrapped_frac.points(),
            );
            let _ = out.csv(
                &format!("{tag}_susceptibility_vs_time"),
                &["time_s", "susceptibility"],
                result.susceptibility.points(),
            );
            // Per-peer records (capacity vs completion scatter data).
            let peer_rows: Vec<Vec<String>> = result
                .peers
                .iter()
                .map(|p| {
                    vec![
                        p.id.index().to_string(),
                        format!("{}", p.capacity_bps),
                        p.compliant.to_string(),
                        format!("{}", p.arrival_s),
                        p.bootstrap_s.map_or(String::new(), |v| format!("{v}")),
                        p.completion_s.map_or(String::new(), |v| format!("{v}")),
                        p.bytes_sent.to_string(),
                        p.bytes_received_usable.to_string(),
                        p.bytes_received_raw.to_string(),
                    ]
                })
                .collect();
            let _ = out.csv_rows(
                &format!("{tag}_peers"),
                &[
                    "peer_id",
                    "capacity_bps",
                    "compliant",
                    "arrival_s",
                    "bootstrap_s",
                    "completion_s",
                    "bytes_sent",
                    "bytes_received_usable",
                    "bytes_received_raw",
                ],
                &peer_rows,
            );
            // Bandwidth attribution per mechanism component.
            let reason_rows: Vec<Vec<String>> = coop_incentives::GrantReason::ALL
                .iter()
                .map(|&reason| {
                    vec![
                        reason.name().to_string(),
                        result.totals.bytes_by_reason[reason.index()].to_string(),
                        format!("{:.6}", result.reason_fraction(reason)),
                    ]
                })
                .collect();
            let _ = out.csv_rows(
                &format!("{tag}_bandwidth_by_reason"),
                &["reason", "bytes", "fraction_of_peer_bytes"],
                &reason_rows,
            );
            panel_cdf.push_series(crate::plot::Series::new(kind.name(), cdf_series));
            panel_fair.push_series(crate::plot::Series::new(
                kind.name(),
                result.fairness_avg.points().to_vec(),
            ));
            panel_boot.push_series(crate::plot::Series::new(
                kind.name(),
                result.bootstrapped_frac.points().to_vec(),
            ));
            panel_susc.push_series(crate::plot::Series::new(
                kind.name(),
                result.susceptibility.points().to_vec(),
            ));
            SimRow {
                algorithm: kind.name().to_string(),
                completed_fraction: result.completed_fraction(),
                mean_completion_s: result.mean_completion_time(),
                median_completion_s: result.completion_cdf().quantile(0.5),
                mean_bootstrap_s: result.mean_bootstrap_time(),
                avg_fairness: result.final_avg_fairness(),
                fairness_f: result.final_fairness_stat(),
                susceptibility: result.final_susceptibility(),
                peak_susceptibility: result.peak_susceptibility(),
            }
        })
        .collect();
    let report = SimFigureReport {
        figure: figure.to_string(),
        scale: scale.name().to_string(),
        seed,
        rows,
    };
    let _ = out.json(&format!("{figure}_{}", scale.name()), &report);
    for (suffix, chart) in [
        ("a_completion_cdf", &panel_cdf),
        ("b_fairness", &panel_fair),
        ("c_bootstrapped", &panel_boot),
        ("d_susceptibility", &panel_susc),
    ] {
        let _ = out.svg(&format!("{figure}{suffix}_{}", scale.name()), chart);
    }
    report
}

/// Runs Fig. 4 (no free-riders) with machine-sized parallelism.
pub fn run(scale: Scale, seed: u64) -> SimFigureReport {
    run_with(scale, seed, &Executor::default())
}

/// Runs Fig. 4 (no free-riders) on the given executor.
pub fn run_with(scale: Scale, seed: u64, executor: &Executor) -> SimFigureReport {
    run_figure("fig4", scale, seed, |_| None, executor)
}

/// Runs Fig. 4 with explicit telemetry options and artifact directory.
///
/// The report and every artifact in `out` are byte-identical to
/// [`run_with`]; telemetry only *adds* outputs (stderr progress, the
/// optional `--trace-out` JSONL, and `manifest.json` in `out`).
pub fn run_with_telemetry(
    scale: Scale,
    seed: u64,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (SimFigureReport, Option<BatchTrace>) {
    run_figure_traced("fig4", scale, seed, |_| None, executor, opts, out, "none")
}

/// [`run_with_telemetry`] returning batch failures as `Err` instead of
/// panicking (the crash-safe CLI path).
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
pub fn try_run_with_telemetry(
    scale: Scale,
    seed: u64,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(SimFigureReport, Option<BatchTrace>), BatchError> {
    try_run_figure_traced("fig4", scale, seed, |_| None, executor, opts, out, "none")
}

/// [`try_run_with_telemetry`] restricted to an explicit mechanism list —
/// the byte-identity anchor for `figure`-style scenario packs, whose
/// artifact sets must match this runner's for the same kinds and seed.
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
pub fn try_run_with_telemetry_for(
    scale: Scale,
    seed: u64,
    kinds: &[MechanismKind],
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(SimFigureReport, Option<BatchTrace>), BatchError> {
    try_run_figure_traced_for(
        "fig4", scale, seed, kinds, |_| None, executor, opts, out, "none",
    )
}

/// Mean and sample standard deviation of one metric across replicates.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MeanStd {
    /// Mean over replicates.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replicate).
    pub std: f64,
}

impl MeanStd {
    fn from_samples(xs: &[f64]) -> Option<MeanStd> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let std = if xs.len() < 2 {
            0.0
        } else {
            (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)).sqrt()
        };
        Some(MeanStd { mean, std })
    }
}

/// One algorithm's metrics aggregated over seeds.
#[derive(Clone, Debug, Serialize)]
pub struct ReplicatedRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Mean completion time (seconds), over replicates where peers
    /// completed.
    pub mean_completion_s: Option<MeanStd>,
    /// Mean bootstrap time (seconds).
    pub mean_bootstrap_s: Option<MeanStd>,
    /// Fairness `F`.
    pub fairness_f: Option<MeanStd>,
    /// Susceptibility.
    pub susceptibility: Option<MeanStd>,
}

/// A figure aggregated over several seeds — the error bars the paper's
/// plots imply but do not show.
#[derive(Clone, Debug, Serialize)]
pub struct ReplicatedReport {
    /// Which figure.
    pub figure: String,
    /// Scale used.
    pub scale: String,
    /// Seeds used.
    pub seeds: Vec<u64>,
    /// Aggregated rows.
    pub rows: Vec<ReplicatedRow>,
}

impl ReplicatedReport {
    /// The row for `kind`.
    pub fn get(&self, kind: MechanismKind) -> &ReplicatedRow {
        self.rows
            .iter()
            .find(|r| r.algorithm == kind.name())
            .expect("all kinds present")
    }

    /// Renders the report (mean ± std).
    pub fn render(&self) -> String {
        let fmt = |m: &Option<MeanStd>| match m {
            None => "n/a".to_string(),
            Some(ms) => format!("{:.2} ± {:.2}", ms.mean, ms.std),
        };
        let mut t = Table::new(vec![
            "Algorithm",
            "mean ct (s)",
            "mean bootstrap (s)",
            "F",
            "susceptibility",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.algorithm.clone(),
                fmt(&r.mean_completion_s),
                fmt(&r.mean_bootstrap_s),
                fmt(&r.fairness_f),
                fmt(&r.susceptibility),
            ]);
        }
        format!(
            "{} — {} replicates (seeds {:?}, {} scale)
{}",
            self.figure,
            self.seeds.len(),
            self.seeds,
            self.scale,
            t.render()
        )
    }
}

/// Aggregates a figure over several seeds.
///
/// The full mechanism × seed grid fans out across `executor` in one batch
/// (replicates are just more independent jobs); the per-seed artifact
/// writes then replay sequentially in seed order, exactly as the
/// sequential implementation would have produced them.
pub(crate) fn replicate(
    figure: &str,
    scale: Scale,
    seeds: &[u64],
    plan_for: impl Fn(MechanismKind) -> Option<AttackPlan>,
    executor: &Executor,
) -> ReplicatedReport {
    replicate_traced(
        figure,
        scale,
        seeds,
        plan_for,
        executor,
        &TelemetryOpts::disabled(),
        &OutputDir::default_dir(),
        "none",
    )
    .0
}

/// [`replicate`] with telemetry: the full mechanism × seed grid is traced
/// as one batch, so the manifest and trace cover every replicate.
#[allow(clippy::too_many_arguments)] // one call site per figure, all distinct
pub(crate) fn replicate_traced(
    figure: &str,
    scale: Scale,
    seeds: &[u64],
    plan_for: impl Fn(MechanismKind) -> Option<AttackPlan>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
    attack: &str,
) -> (ReplicatedReport, Option<BatchTrace>) {
    try_replicate_traced(figure, scale, seeds, plan_for, executor, opts, out, attack)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`replicate_traced`] under the executor's robustness policy. On
/// failure, per-seed artifacts are still written for every seed whose
/// jobs all succeeded (so a resume has less to redo), but the aggregate
/// report is withheld and `Err` names every failed cell.
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
#[allow(clippy::too_many_arguments)] // one call site per figure, all distinct
pub(crate) fn try_replicate_traced(
    figure: &str,
    scale: Scale,
    seeds: &[u64],
    plan_for: impl Fn(MechanismKind) -> Option<AttackPlan>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
    attack: &str,
) -> Result<(ReplicatedReport, Option<BatchTrace>), BatchError> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let jobs = SimJob::grid(scale, seeds, plan_for);
    let sim_clock = Stopwatch::start();
    let run = executor.run_sims_robust(&jobs, opts);
    let sim_ms = sim_clock.elapsed_ms();
    let per_seed = MechanismKind::EXTENDED.len();
    if !run.failures.is_empty() {
        for (i, &s) in seeds.iter().enumerate() {
            let group = &run.results[i * per_seed..(i + 1) * per_seed];
            if group.iter().all(Option::is_some) {
                let results: Vec<SimResult> =
                    group.iter().map(|r| r.clone().expect("checked")).collect();
                write_figure_artifacts(figure, scale, s, &MechanismKind::EXTENDED, &results, out);
            }
        }
        return Err(BatchError {
            figure: figure.to_string(),
            total: jobs.len(),
            failures: run.failures,
        });
    }
    let results: Vec<SimResult> = run
        .results
        .into_iter()
        .map(|r| r.expect("no failures, so every slot holds a result"))
        .collect();
    let trace = run.trace;
    let write_clock = Stopwatch::start();
    let reports: Vec<SimFigureReport> = seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            write_figure_artifacts(
                figure,
                scale,
                s,
                &MechanismKind::EXTENDED,
                &results[i * per_seed..(i + 1) * per_seed],
                out,
            )
        })
        .collect();
    let rows = MechanismKind::EXTENDED
        .iter()
        .map(|&kind| {
            let collect = |f: &dyn Fn(&SimRow) -> Option<f64>| -> Vec<f64> {
                reports
                    .iter()
                    .filter_map(|r| f(r.get(kind)))
                    .collect()
            };
            ReplicatedRow {
                algorithm: kind.name().to_string(),
                mean_completion_s: MeanStd::from_samples(&collect(&|r| r.mean_completion_s)),
                mean_bootstrap_s: MeanStd::from_samples(&collect(&|r| r.mean_bootstrap_s)),
                fairness_f: MeanStd::from_samples(&collect(&|r| {
                    r.fairness_f.is_finite().then_some(r.fairness_f)
                })),
                susceptibility: MeanStd::from_samples(&collect(&|r| Some(r.susceptibility))),
            }
        })
        .collect();
    let report = ReplicatedReport {
        figure: format!("{figure} (replicated)"),
        scale: scale.name().to_string(),
        seeds: seeds.to_vec(),
        rows,
    };
    let _ = out.json(&format!("{figure}_replicated_{}", scale.name()), &report);
    let trace = trace.map(|mut trace| {
        trace.push_phase("simulate", sim_ms);
        trace.push_phase("write_artifacts", write_clock.elapsed_ms());
        emit_run_outputs(
            figure,
            &trace,
            opts,
            out,
            scale,
            seeds[0],
            seeds.len() as u64,
            executor.jobs() as u64,
            attack,
        );
        trace
    });
    Ok((report, trace))
}

/// Runs Fig. 4 over several seeds and aggregates.
pub fn run_replicated(scale: Scale, seeds: &[u64]) -> ReplicatedReport {
    run_replicated_with(scale, seeds, &Executor::default())
}

/// Runs Fig. 4 over several seeds on the given executor.
pub fn run_replicated_with(scale: Scale, seeds: &[u64], executor: &Executor) -> ReplicatedReport {
    replicate("fig4", scale, seeds, |_| None, executor)
}

/// Runs replicated Fig. 4 with explicit telemetry options and artifact
/// directory; see [`run_with_telemetry`] for the guarantees.
pub fn run_replicated_with_telemetry(
    scale: Scale,
    seeds: &[u64],
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (ReplicatedReport, Option<BatchTrace>) {
    replicate_traced("fig4", scale, seeds, |_| None, executor, opts, out, "none")
}

/// [`run_replicated_with_telemetry`] returning batch failures as `Err`
/// instead of panicking (the crash-safe CLI path).
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
pub fn try_run_replicated_with_telemetry(
    scale: Scale,
    seeds: &[u64],
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(ReplicatedReport, Option<BatchTrace>), BatchError> {
    try_replicate_traced("fig4", scale, seeds, |_| None, executor, opts, out, "none")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shapes_match_paper() {
        let r = run(Scale::Quick, 21);
        // (a) Altruism is the most efficient; reciprocity never completes.
        let alt_ct = r.get(MechanismKind::Altruism).mean_completion_s.unwrap();
        assert_eq!(r.get(MechanismKind::Reciprocity).completed_fraction, 0.0);
        for kind in [
            MechanismKind::TChain,
            MechanismKind::BitTorrent,
            MechanismKind::FairTorrent,
        ] {
            let row = r.get(kind);
            assert!(row.completed_fraction > 0.9, "{kind} completes");
            let ct = row.mean_completion_s.unwrap();
            assert!(ct >= alt_ct * 0.8, "altruism at least ties {kind}");
            assert!(
                ct < alt_ct * 4.0,
                "{kind} stays comparable to altruism: {ct} vs {alt_ct}"
            );
        }
        // (b) T-Chain and FairTorrent are the most fair (lowest F).
        let f = |k: MechanismKind| r.get(k).fairness_f;
        assert!(f(MechanismKind::TChain) < f(MechanismKind::Altruism));
        assert!(f(MechanismKind::FairTorrent) < f(MechanismKind::Altruism));
        // (c) Altruism bootstraps fastest; reciprocity slowest.
        let b = |k: MechanismKind| r.get(k).mean_bootstrap_s.unwrap();
        assert!(b(MechanismKind::Altruism) < b(MechanismKind::Reputation));
        assert!(b(MechanismKind::Reputation) < b(MechanismKind::Reciprocity));
        // No free-riders: susceptibility identically zero.
        for row in &r.rows {
            assert_eq!(row.susceptibility, 0.0, "{}", row.algorithm);
        }
    }

    #[test]
    fn replicated_run_aggregates_and_orders() {
        let r = run_replicated(Scale::Quick, &[71, 72]);
        assert_eq!(r.seeds.len(), 2);
        let alt = r.get(MechanismKind::Altruism);
        let rec = r.get(MechanismKind::Reciprocity);
        assert!(alt.mean_completion_s.is_some());
        assert!(rec.mean_completion_s.is_none(), "reciprocity never completes");
        // Std is finite and nonnegative.
        let ms = alt.mean_completion_s.unwrap();
        assert!(ms.std >= 0.0 && ms.std.is_finite());
        assert!(r.render().contains("±"));
    }

    #[test]
    fn report_render_lists_all_algorithms() {
        let r = run(Scale::Quick, 22);
        let text = r.render();
        for kind in MechanismKind::ALL {
            assert!(text.contains(kind.name()));
        }
    }
}
