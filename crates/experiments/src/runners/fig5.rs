//! **Fig. 5** — performance with 20 % free-riders, each algorithm attacked
//! by its most effective strategy (Section V-B2): simple free-riding
//! everywhere, plus collusion against T-Chain and whitewashing against
//! FairTorrent.

use coop_attacks::AttackPlan;

use crate::exec::{BatchError, Executor};
use crate::runners::fig4::{
    run_figure, run_figure_traced, try_replicate_traced, try_run_figure_traced, SimFigureReport,
};
use crate::telemetry::{BatchTrace, TelemetryOpts};
use crate::{OutputDir, Scale};

/// The paper's free-rider fraction.
pub const FREERIDER_FRACTION: f64 = 0.2;

/// The attack label Fig. 5 runs carry in their telemetry manifest.
pub(crate) const ATTACK_LABEL: &str = "most-effective-per-mechanism (20% free-riders)";

/// Runs Fig. 5 with machine-sized parallelism.
pub fn run(scale: Scale, seed: u64) -> SimFigureReport {
    run_with(scale, seed, &Executor::default())
}

/// Runs Fig. 5 on the given executor.
pub fn run_with(scale: Scale, seed: u64, executor: &Executor) -> SimFigureReport {
    run_figure(
        "fig5",
        scale,
        seed,
        |kind| Some(AttackPlan::most_effective(kind, FREERIDER_FRACTION)),
        executor,
    )
}

/// Runs Fig. 5 with explicit telemetry options and artifact directory;
/// see [`fig4::run_with_telemetry`](crate::runners::fig4::run_with_telemetry)
/// for the guarantees.
pub fn run_with_telemetry(
    scale: Scale,
    seed: u64,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (SimFigureReport, Option<BatchTrace>) {
    run_figure_traced(
        "fig5",
        scale,
        seed,
        |kind| Some(AttackPlan::most_effective(kind, FREERIDER_FRACTION)),
        executor,
        opts,
        out,
        ATTACK_LABEL,
    )
}

/// [`run_with_telemetry`] returning batch failures as `Err` instead of
/// panicking (the crash-safe CLI path).
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
pub fn try_run_with_telemetry(
    scale: Scale,
    seed: u64,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(SimFigureReport, Option<BatchTrace>), BatchError> {
    try_run_figure_traced(
        "fig5",
        scale,
        seed,
        |kind| Some(AttackPlan::most_effective(kind, FREERIDER_FRACTION)),
        executor,
        opts,
        out,
        ATTACK_LABEL,
    )
}

/// Runs Fig. 5 over several seeds and aggregates.
pub fn run_replicated(scale: Scale, seeds: &[u64]) -> crate::runners::fig4::ReplicatedReport {
    run_replicated_with(scale, seeds, &Executor::default())
}

/// Runs Fig. 5 over several seeds on the given executor.
pub fn run_replicated_with(
    scale: Scale,
    seeds: &[u64],
    executor: &Executor,
) -> crate::runners::fig4::ReplicatedReport {
    crate::runners::fig4::replicate(
        "fig5",
        scale,
        seeds,
        |kind| Some(AttackPlan::most_effective(kind, FREERIDER_FRACTION)),
        executor,
    )
}

/// Runs replicated Fig. 5 with explicit telemetry options and artifact
/// directory.
pub fn run_replicated_with_telemetry(
    scale: Scale,
    seeds: &[u64],
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (crate::runners::fig4::ReplicatedReport, Option<BatchTrace>) {
    crate::runners::fig4::replicate_traced(
        "fig5",
        scale,
        seeds,
        |kind| Some(AttackPlan::most_effective(kind, FREERIDER_FRACTION)),
        executor,
        opts,
        out,
        ATTACK_LABEL,
    )
}

/// [`run_replicated_with_telemetry`] returning batch failures as `Err`
/// instead of panicking (the crash-safe CLI path).
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
pub fn try_run_replicated_with_telemetry(
    scale: Scale,
    seeds: &[u64],
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(crate::runners::fig4::ReplicatedReport, Option<BatchTrace>), BatchError> {
    try_replicate_traced(
        "fig5",
        scale,
        seeds,
        |kind| Some(AttackPlan::most_effective(kind, FREERIDER_FRACTION)),
        executor,
        opts,
        out,
        ATTACK_LABEL,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use coop_incentives::MechanismKind;

    #[test]
    fn fig5_susceptibility_ordering() {
        let r = run(Scale::Quick, 31);
        let s = |k: MechanismKind| r.get(k).susceptibility;
        // Reciprocity and T-Chain are (almost) immune.
        assert_eq!(s(MechanismKind::Reciprocity), 0.0);
        assert!(
            s(MechanismKind::TChain) < 0.05,
            "T-Chain leaks only through rare collusion: {}",
            s(MechanismKind::TChain)
        );
        // Altruism is the most susceptible.
        for kind in [
            MechanismKind::TChain,
            MechanismKind::BitTorrent,
            MechanismKind::FairTorrent,
            MechanismKind::Reputation,
        ] {
            // Cumulative susceptibility saturates once free-riders own a
            // full file, so allow a small epsilon on the comparison.
            assert!(
                s(MechanismKind::Altruism) >= s(kind) - 0.01,
                "altruism ≥ {kind}: {} vs {}",
                s(MechanismKind::Altruism),
                s(kind)
            );
        }
        // The susceptible algorithms leak a nontrivial share.
        assert!(s(MechanismKind::Altruism) > 0.1);
        assert!(s(MechanismKind::BitTorrent) > 0.02);
    }

    #[test]
    fn fig5_tchain_stays_fair_and_efficient() {
        let r = run(Scale::Quick, 32);
        let tc = r.get(MechanismKind::TChain);
        assert!(tc.completed_fraction > 0.9);
        assert!(
            tc.fairness_f < r.get(MechanismKind::Altruism).fairness_f,
            "T-Chain stays fairer than altruism under attack"
        );
    }

    #[test]
    fn compliant_peers_still_complete() {
        let r = run(Scale::Quick, 33);
        for kind in [
            MechanismKind::TChain,
            MechanismKind::BitTorrent,
            MechanismKind::FairTorrent,
            MechanismKind::Reputation,
            MechanismKind::Altruism,
        ] {
            assert!(
                r.get(kind).completed_fraction > 0.85,
                "{kind}: {}",
                r.get(kind).completed_fraction
            );
        }
    }
}
