//! **fig4-scale** — the hot-path scaling sweep: every mechanism re-run
//! over a population ladder (1k → 100k by default), reporting both the
//! deterministic simulation outcomes and the harness's own throughput
//! (rounds/sec, peak RSS) at each size.
//!
//! Unlike the paper figures this artifact benchmarks the *simulator*, not
//! the mechanisms: the per-cell swarm config is fixed per `--scale` (small
//! file, capped rounds) so per-peer work is constant and the population is
//! the only axis. The outputs are split by the repo's telemetry rule —
//! wall-clock readings never enter figure artifacts:
//!
//! * `fig4scale_sweep_{scale}.csv` / `fig4scale_{scale}.json` hold only
//!   deterministic columns (byte-identical for any `--jobs` count);
//! * `fig4scale_perf_{scale}.csv` / `fig4scale_perf_{scale}.json` hold the
//!   rounds/sec and RSS columns and vary run to run.
//!
//! Memory caveat: `peak_rss_kb` is the process-wide `VmHWM` high-water
//! mark, which only ever grows — across a sweep it is nondecreasing in
//! completion order and says nothing about an individual cell. The
//! `rss_delta_kb` column reports how much each cell raised that mark
//! instead; see [`PerfRow::rss_delta_kb`] for its own caveat under
//! parallel execution.

use coop_des::Duration;
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::MechanismKind;
use coop_piece::FileSpec;
use coop_swarm::{flash_crowd_with, Simulation, SwarmConfig};
use coop_telemetry::{profile::phase, Profiler, Recorder, Stopwatch};
use serde::Serialize;

use crate::exec::{backoff_ms, BatchError, Executor, FailureKind, JobFailure};
use crate::runners::fig4::emit_run_outputs;
use crate::table::num;
use crate::telemetry::{BatchTrace, JobTrace, TelemetryOpts};
use crate::{OutputDir, Scale, Table};

/// The default population ladder. The 50k/100k rungs are what the
/// dirty-set round loop and `--shards` exist for; budget accordingly —
/// one 100k cell runs minutes, not seconds.
pub const POPULATIONS: [usize; 6] = [1000, 2000, 5000, 10000, 50_000, 100_000];

/// The swarm configuration for one sweep cell: per-peer work is pinned by
/// `scale` (file size and round cap) so population is the only axis.
/// `quick` is sized for the CI smoke job.
pub fn cell_config(scale: Scale, seed: u64) -> SwarmConfig {
    let mut c = SwarmConfig::scaled_default();
    let (bytes, rounds) = match scale {
        Scale::Quick => (2 * 1024 * 1024, 300),
        Scale::Default => (8 * 1024 * 1024, 600),
        Scale::Paper => (32 * 1024 * 1024, 1200),
    };
    c.file = FileSpec::new(bytes, 64 * 1024);
    c.neighbor_degree = 20;
    c.seeder_bps = 512_000.0;
    c.max_rounds = rounds;
    c.sample_every = 8;
    c.seed = seed;
    c
}

/// One deterministic (population, mechanism) cell of the sweep.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ScaleRow {
    /// Swarm population for this cell.
    pub peers: usize,
    /// Algorithm name.
    pub algorithm: String,
    /// Rounds the simulation actually executed.
    pub rounds_run: u64,
    /// Fraction of compliant peers that completed the download.
    pub completed_fraction: f64,
    /// Mean completion time (seconds) over completed compliant peers.
    pub mean_completion_s: Option<f64>,
    /// Final fairness statistic `F` (0 = perfectly fair).
    pub fairness_f: f64,
    /// Whether the run ended in an unsatisfiable (stalled) swarm.
    pub stalled: bool,
}

/// One wall-clock (population, mechanism) cell of the sweep.
#[derive(Clone, Debug, Serialize)]
pub struct PerfRow {
    /// Swarm population for this cell.
    pub peers: usize,
    /// Algorithm name.
    pub algorithm: String,
    /// Rounds the simulation actually executed.
    pub rounds_run: u64,
    /// Wall-clock milliseconds the cell took.
    pub wall_ms: u64,
    /// Simulation throughput: rounds executed per wall-clock second.
    pub rounds_per_sec: f64,
    /// Process peak RSS (`VmHWM`, kB) sampled after the cell finished.
    /// This is the process-wide high-water mark, so it is nondecreasing
    /// in completion order and does **not** measure the cell itself; 0
    /// when `/proc` is unavailable.
    pub peak_rss_kb: u64,
    /// How much this cell raised the process high-water mark (kB): the
    /// `VmHWM` delta across the cell. Only the cells that push the peak
    /// show a non-zero delta, and concurrent cells (`--jobs > 1`) can
    /// attribute a shared push to whichever cell sampled last — read it
    /// as "which cells grew the footprint", not as per-cell usage.
    pub rss_delta_kb: u64,
}

/// The deterministic half of the sweep report.
#[derive(Clone, Debug, Serialize)]
pub struct ScaleReport {
    /// Artifact name ("fig4-scale").
    pub figure: String,
    /// Scale used for the per-cell config.
    pub scale: String,
    /// Seed used.
    pub seed: u64,
    /// Rows in (population, [`MechanismKind::ALL`]) order.
    pub rows: Vec<ScaleRow>,
}

/// The wall-clock half of the sweep report (never byte-stable).
#[derive(Clone, Debug, Serialize)]
pub struct ScalePerfReport {
    /// Artifact name ("fig4-scale").
    pub figure: String,
    /// Scale used for the per-cell config.
    pub scale: String,
    /// Seed used.
    pub seed: u64,
    /// Worker threads the sweep fanned out across.
    pub jobs: u64,
    /// Intra-sim shard count each cell ran with (`--shards`).
    pub shards: u64,
    /// Rows in (population, [`MechanismKind::ALL`]) order.
    pub rows: Vec<PerfRow>,
}

impl ScaleReport {
    /// The row for one (population, mechanism) cell.
    pub fn get(&self, peers: usize, kind: MechanismKind) -> &ScaleRow {
        self.rows
            .iter()
            .find(|r| r.peers == peers && r.algorithm == kind.name())
            .expect("all cells present")
    }

    /// Renders the deterministic table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "peers",
            "Algorithm",
            "rounds",
            "completed",
            "mean ct (s)",
            "F",
            "stalled",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.peers.to_string(),
                r.algorithm.clone(),
                r.rounds_run.to_string(),
                num(r.completed_fraction),
                r.mean_completion_s.map_or("n/a".into(), num),
                num(r.fairness_f),
                r.stalled.to_string(),
            ]);
        }
        format!(
            "fig4-scale — population sweep ({} scale, seed {})\n{}",
            self.scale,
            self.seed,
            t.render()
        )
    }
}

impl ScalePerfReport {
    /// Renders the throughput table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "peers",
            "Algorithm",
            "rounds",
            "wall (ms)",
            "rounds/sec",
            "peak RSS (kB)",
            "ΔRSS (kB)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.peers.to_string(),
                r.algorithm.clone(),
                r.rounds_run.to_string(),
                r.wall_ms.to_string(),
                format!("{:.1}", r.rounds_per_sec),
                r.peak_rss_kb.to_string(),
                r.rss_delta_kb.to_string(),
            ]);
        }
        format!(
            "fig4-scale — throughput ({} jobs × {} shards; wall-clock data, not byte-stable)\n{}",
            self.jobs,
            self.shards,
            t.render()
        )
    }
}

/// The process's peak resident set (`VmHWM`) in kB, or 0 when
/// `/proc/self/status` is unavailable.
pub(crate) fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Runs the default sweep with machine-sized parallelism and no telemetry.
pub fn run(scale: Scale, seed: u64) -> (ScaleReport, ScalePerfReport) {
    let (report, perf, _) = run_with_telemetry(
        scale,
        seed,
        None,
        &Executor::default(),
        &TelemetryOpts::disabled(),
        &OutputDir::default_dir(),
    );
    (report, perf)
}

/// Runs the scaling sweep: for each population in `peers` (default
/// [`POPULATIONS`]), all six mechanisms run on the fixed per-cell config.
/// Cells fan out across `executor`; the deterministic artifacts are
/// written sequentially from slot-ordered results (byte-identical for any
/// worker count), the perf artifacts carry the wall-clock columns.
pub fn run_with_telemetry(
    scale: Scale,
    seed: u64,
    peers: Option<&[usize]>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (ScaleReport, ScalePerfReport, Option<BatchTrace>) {
    try_run_with_telemetry(scale, seed, peers, executor, opts, out)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_with_telemetry`] with per-cell panic isolation: a cell that fails
/// every attempt yields `Err` naming the (mechanism, N, seed) cell, after
/// every healthy cell has still run. No artifacts are written on failure.
///
/// # Errors
///
/// Returns the batch's failures when any cell fails every attempt.
pub fn try_run_with_telemetry(
    scale: Scale,
    seed: u64,
    peers: Option<&[usize]>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(ScaleReport, ScalePerfReport, Option<BatchTrace>), BatchError> {
    let peers: Vec<usize> = peers.unwrap_or(&POPULATIONS).to_vec();
    let cells: Vec<(usize, MechanismKind)> = peers
        .iter()
        .flat_map(|&n| MechanismKind::ALL.iter().map(move |&kind| (n, kind)))
        .collect();
    let recorder_config = opts.is_enabled().then(|| opts.recorder_config());
    let shards = executor.shards();
    let sim_clock = Stopwatch::start();
    let runs = executor.try_map(&cells, |slot, &(n, kind)| {
        let cell_clock = Stopwatch::start();
        let rss_before_kb = peak_rss_kb();
        let recorder = match &recorder_config {
            Some(config) => Recorder::enabled(config.clone()),
            None => Recorder::disabled(),
        };
        let mut profiler = if opts.profile_due(slot) {
            Profiler::enabled()
        } else {
            Profiler::disabled()
        };
        let build_t = profiler.start();
        let config = cell_config(scale, seed);
        let mix = CapacityClassMix::paper_default();
        let population =
            flash_crowd_with(&config, n, kind, seed, &mix, Duration::from_secs(10));
        let sim = Simulation::builder(config)
            .population(population)
            .recorder(recorder)
            .shards(shards)
            .build()
            .expect("cell configs validate");
        profiler.stop(phase::EXEC_BUILD, build_t);
        let (result, report, profile) = sim.with_profiler(profiler).run_profiled();
        let wall_ms = cell_clock.elapsed_ms();
        let trace = JobTrace {
            slot,
            label: format!("{}@{n}", kind.name()),
            seed,
            wall_ms,
            slow: false,
            // `try_map` retries opaquely; per-attempt counts are only
            // tracked for `SimJob` batches.
            retries: 0,
            peers: n as u64,
            report,
            profile: opts.profile_due(slot).then_some(profile),
        };
        let rss_after_kb = peak_rss_kb();
        (
            result,
            wall_ms,
            rss_after_kb,
            rss_after_kb.saturating_sub(rss_before_kb),
            trace,
        )
    });
    let sim_ms = sim_clock.elapsed_ms();
    let write_clock = Stopwatch::start();

    let failures: Vec<JobFailure> = cells
        .iter()
        .zip(&runs)
        .enumerate()
        .filter_map(|(slot, (&(n, kind), run))| {
            run.as_ref().err().map(|message| JobFailure {
                slot,
                mechanism: kind.name().to_string(),
                peers: n,
                seed,
                attempts: executor.retries() + 1,
                kind: FailureKind::Panic,
                message: message.clone(),
                backoff_ms: (0..executor.retries())
                    .map(|a| backoff_ms(slot as u64, a))
                    .collect(),
            })
        })
        .collect();
    if !failures.is_empty() {
        return Err(BatchError {
            figure: "fig4-scale".to_string(),
            total: cells.len(),
            failures,
        });
    }

    let mut rows = Vec::with_capacity(runs.len());
    let mut perf_rows = Vec::with_capacity(runs.len());
    let mut traces = Vec::with_capacity(runs.len());
    for (&(n, kind), run) in cells.iter().zip(runs) {
        let (result, wall_ms, rss_kb, rss_delta_kb, trace) =
            run.expect("failures were returned above");
        rows.push(ScaleRow {
            peers: n,
            algorithm: kind.name().to_string(),
            rounds_run: result.rounds_run,
            completed_fraction: result.completed_fraction(),
            mean_completion_s: result.mean_completion_time(),
            fairness_f: result.final_fairness_stat(),
            stalled: result.stalled,
        });
        perf_rows.push(PerfRow {
            peers: n,
            algorithm: kind.name().to_string(),
            rounds_run: result.rounds_run,
            wall_ms,
            rounds_per_sec: result.rounds_run as f64 * 1000.0 / wall_ms.max(1) as f64,
            peak_rss_kb: rss_kb,
            rss_delta_kb,
        });
        traces.push(trace);
    }
    let report = ScaleReport {
        figure: "fig4-scale".to_string(),
        scale: scale.name().to_string(),
        seed,
        rows,
    };
    let perf = ScalePerfReport {
        figure: "fig4-scale".to_string(),
        scale: scale.name().to_string(),
        seed,
        jobs: executor.jobs() as u64,
        shards: shards as u64,
        rows: perf_rows,
    };

    let sweep_rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.peers.to_string(),
                r.algorithm.clone(),
                r.rounds_run.to_string(),
                format!("{}", r.completed_fraction),
                r.mean_completion_s.map_or(String::new(), |v| format!("{v}")),
                format!("{}", r.fairness_f),
                r.stalled.to_string(),
            ]
        })
        .collect();
    let _ = out.csv_rows(
        &format!("fig4scale_sweep_{}", scale.name()),
        &[
            "peers",
            "algorithm",
            "rounds_run",
            "completed_fraction",
            "mean_completion_s",
            "fairness_f",
            "stalled",
        ],
        &sweep_rows,
    );
    let _ = out.json(&format!("fig4scale_{}", scale.name()), &report);

    let perf_csv: Vec<Vec<String>> = perf
        .rows
        .iter()
        .map(|r| {
            vec![
                r.peers.to_string(),
                r.algorithm.clone(),
                r.rounds_run.to_string(),
                r.wall_ms.to_string(),
                format!("{}", r.rounds_per_sec),
                r.peak_rss_kb.to_string(),
                r.rss_delta_kb.to_string(),
            ]
        })
        .collect();
    let _ = out.csv_rows(
        &format!("fig4scale_perf_{}", scale.name()),
        &[
            "peers",
            "algorithm",
            "rounds_run",
            "wall_ms",
            "rounds_per_sec",
            "peak_rss_kb",
            "rss_delta_kb",
        ],
        &perf_csv,
    );
    let _ = out.json(&format!("fig4scale_perf_{}", scale.name()), &perf);

    let trace = recorder_config.is_some().then(|| {
        let mut trace = BatchTrace::new(traces);
        trace.push_phase("simulate", sim_ms);
        trace.push_phase("write_artifacts", write_clock.elapsed_ms());
        emit_run_outputs(
            "fig4-scale",
            &trace,
            opts,
            out,
            scale,
            seed,
            1,
            executor.jobs() as u64,
            "none",
        );
        trace
    });
    Ok((report, perf, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> OutputDir {
        OutputDir::new(std::env::temp_dir().join(format!(
            "coop-scale-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )))
    }

    #[test]
    fn sweep_covers_grid_and_is_deterministic_across_worker_counts() {
        let out = tmp();
        let opts = TelemetryOpts::disabled();
        let run = |jobs: usize| {
            run_with_telemetry(
                Scale::Quick,
                11,
                Some(&[10, 14]),
                &Executor::new(jobs),
                &opts,
                &out,
            )
        };
        let (seq, perf, trace) = run(1);
        assert!(trace.is_none());
        assert_eq!(seq.rows.len(), 2 * MechanismKind::ALL.len());
        assert_eq!(perf.rows.len(), seq.rows.len());
        for (row, perf_row) in seq.rows.iter().zip(&perf.rows) {
            assert_eq!(row.peers, perf_row.peers);
            assert_eq!(row.rounds_run, perf_row.rounds_run);
            assert!(perf_row.rounds_per_sec > 0.0);
        }
        let alt = seq.get(14, MechanismKind::Altruism);
        assert_eq!(alt.peers, 14);

        // The deterministic half is identical for any worker count.
        let (par, _, _) = run(4);
        assert_eq!(seq.rows, par.rows);
        assert!(seq.render().contains("fig4-scale"));
        assert!(ScalePerfReport::render(&perf).contains("rounds/sec"));
    }

    #[test]
    fn rss_delta_column_is_not_the_high_water_mark() {
        // `peak_rss_kb` is the process-wide VmHWM, nondecreasing in
        // completion order by construction. The `rss_delta_kb` column
        // must not inherit that shape: a cell that fails to push the
        // mark reports 0, however high the mark already sits. Running a
        // larger population first makes the later small cells provably
        // non-pushing, so the delta column cannot be a copy of the
        // cumulative peak column.
        let out = tmp();
        let (_, perf, _) = run_with_telemetry(
            Scale::Quick,
            13,
            Some(&[120, 10]),
            &Executor::sequential(),
            &TelemetryOpts::disabled(),
            &out,
        );
        if !cfg!(target_os = "linux") {
            return; // no /proc — both columns degrade to 0
        }
        assert!(
            perf.rows.windows(2).all(|w| w[0].peak_rss_kb <= w[1].peak_rss_kb),
            "VmHWM stays nondecreasing in completion order"
        );
        assert!(
            perf.rows
                .iter()
                .any(|r| r.rss_delta_kb == 0 && r.peak_rss_kb > 0),
            "some cell left the high-water mark untouched yet the mark is positive: \
             the delta column decouples from the cumulative peak"
        );
        let deltas: Vec<u64> = perf.rows.iter().map(|r| r.rss_delta_kb).collect();
        let peaks: Vec<u64> = perf.rows.iter().map(|r| r.peak_rss_kb).collect();
        assert_ne!(deltas, peaks, "delta column must not mirror the peak column");
    }

    #[test]
    fn peak_rss_reads_proc() {
        // On Linux VmHWM is always present; elsewhere the probe degrades
        // to 0 rather than failing.
        let kb = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(kb > 0);
        }
    }
}
