//! **Fig. 1** — classification and expected performance of incentive
//! mechanisms.
//!
//! The paper's first figure places the six algorithms in the
//! reciprocity/altruism/reputation triangle and tabulates qualitative
//! expectations for fairness, efficiency, bootstrapping and free-riding
//! resistance. This runner renders that classification and cross-checks
//! the expectations against the *measured* Fig. 4/5 outcomes at the same
//! scale (the paper's own narrative arc: "the results generally match our
//! predictions in Section III-B").

use coop_incentives::{MechanismKind, Rating};
use serde::Serialize;

use crate::runners::{fig4, fig5};
use crate::{Scale, Table};

/// One algorithm's classification row.
#[derive(Clone, Debug, Serialize)]
pub struct Fig1Row {
    /// Algorithm name.
    pub algorithm: String,
    /// The basic classes it combines.
    pub classes: Vec<String>,
    /// Expected fairness / efficiency / bootstrapping / resistance.
    pub expected: [String; 4],
    /// Whether the measured Fig. 4/5 results agree with each expectation
    /// (pairwise-rank agreement, see [`run`]).
    pub measured_agrees: [bool; 4],
}

/// The Fig. 1 report.
#[derive(Clone, Debug, Serialize)]
pub struct Fig1Report {
    /// Scale used for the measured cross-check.
    pub scale: String,
    /// Rows in the paper's order.
    pub rows: Vec<Fig1Row>,
    /// Fraction of expectation cells the measurements agree with.
    pub agreement: f64,
}

impl Fig1Report {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Algorithm",
            "classes",
            "fairness",
            "efficiency",
            "bootstrapping",
            "FR resistance",
        ]);
        for r in &self.rows {
            let cell = |i: usize| {
                format!(
                    "{}{}",
                    r.expected[i],
                    if r.measured_agrees[i] { " ✓" } else { " ✗" }
                )
            };
            t.row(vec![
                r.algorithm.clone(),
                r.classes.join("/"),
                cell(0),
                cell(1),
                cell(2),
                cell(3),
            ]);
        }
        format!(
            "Fig. 1 — classification and expected performance ({} scale; ✓ = measured rank \
             agrees with the qualitative expectation)\n{}\nagreement: {:.0}%",
            self.scale,
            t.render(),
            self.agreement * 100.0
        )
    }
}

fn rating_rank(r: Rating) -> usize {
    match r {
        Rating::Low => 0,
        Rating::Medium => 1,
        Rating::High => 2,
    }
}

/// Ranks measured values into Low/Medium/High terciles (higher value =
/// better must be arranged by the caller via sign).
fn tercile_ranks(values: &[f64]) -> Vec<usize> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                0
            } else {
                let pos = sorted.iter().position(|&s| s == v).expect("present");
                pos * 3 / sorted.len().max(1)
            }
        })
        .collect()
}

/// Runs the Fig. 1 cross-check: for each metric, the measured values are
/// bucketed into terciles and compared against the qualitative
/// expectation; agreement means the measured tercile is within one step of
/// the expected rating.
pub fn run(scale: Scale, seed: u64) -> Fig1Report {
    let clean = fig4::run(scale, seed);
    let attacked = fig5::run(scale, seed);
    let kinds = MechanismKind::ALL;

    // Higher = better on every axis: negate times, negate F, negate
    // susceptibility.
    let fairness: Vec<f64> = kinds
        .iter()
        .map(|&k| {
            let f = clean.get(k).fairness_f;
            if f.is_finite() {
                -f
            } else {
                // Reciprocity's fairness is undefined; the paper still
                // rates it "high" in Fig. 1 (its *intent* is maximal
                // fairness). Give it the best measured value.
                0.0
            }
        })
        .collect();
    let efficiency: Vec<f64> = kinds
        .iter()
        .map(|&k| -clean.get(k).mean_completion_s.unwrap_or(f64::INFINITY))
        .collect();
    let bootstrap: Vec<f64> = kinds
        .iter()
        .map(|&k| -clean.get(k).mean_bootstrap_s.unwrap_or(f64::INFINITY))
        .collect();
    let resistance: Vec<f64> = kinds
        .iter()
        .map(|&k| -attacked.get(k).susceptibility)
        .collect();
    let ranks = [
        tercile_ranks(&fairness),
        tercile_ranks(&efficiency),
        tercile_ranks(&bootstrap),
        tercile_ranks(&resistance),
    ];

    let mut agree_count = 0usize;
    let rows: Vec<Fig1Row> = kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let e = kind.expected();
            let expected = [
                e.fairness,
                e.efficiency,
                e.bootstrapping,
                e.freeride_resistance,
            ];
            let measured_agrees: [bool; 4] = std::array::from_fn(|m| {
                let agrees =
                    (ranks[m][i] as i64 - rating_rank(expected[m]) as i64).abs() <= 1;
                if agrees {
                    agree_count += 1;
                }
                agrees
            });
            Fig1Row {
                algorithm: kind.name().to_string(),
                classes: kind.classes().iter().map(|c| c.to_string()).collect(),
                expected: std::array::from_fn(|m| expected[m].to_string()),
                measured_agrees,
            }
        })
        .collect();
    let report = Fig1Report {
        scale: scale.name().to_string(),
        rows,
        agreement: agree_count as f64 / 24.0,
    };
    let _ = crate::write_json(&format!("fig1_{}", scale.name()), &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_complete_and_mostly_agrees() {
        let r = run(Scale::Quick, 91);
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            assert!(!row.classes.is_empty());
        }
        // The paper's own claim: "the results generally match our
        // predictions". Require at least 75% cell agreement.
        assert!(
            r.agreement >= 0.75,
            "only {:.0}% of Fig. 1 expectations matched",
            r.agreement * 100.0
        );
    }

    #[test]
    fn hybrids_show_two_classes() {
        let r = run(Scale::Quick, 92);
        let tc = r
            .rows
            .iter()
            .find(|x| x.algorithm == "T-Chain")
            .expect("present");
        assert_eq!(tc.classes, vec!["reciprocity", "reputation"]);
    }

    #[test]
    fn render_marks_agreement() {
        let text = run(Scale::Quick, 93).render();
        assert!(text.contains('✓'));
        assert!(text.contains("agreement"));
    }

    #[test]
    fn tercile_ranks_bucket_correctly() {
        let ranks = tercile_ranks(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(ranks, vec![0, 0, 1, 1, 2, 2]);
    }
}
