//! **fig-consensus** — the consensus-reputation defense sweep: the
//! consensus mechanism re-run over an adaptive-attacker-fraction ladder
//! under three named defense policies (ban threshold × decay × quorum).
//!
//! Every attacked cell faces the full adaptive mix
//! ([`coop_attacks::AttackPlan::adaptive_mix`]): threshold-aware
//! defectors that park their strike level just under the ban threshold,
//! ban-evading whitewash rings that rotate identities ahead of the
//! permanent ban, and Sybil report-stuffers fabricating matched transfer
//! pairs inside a collusion ring. The `fraction = 0` column is the
//! attack-free baseline each policy is judged against.
//!
//! The three policies bracket the defense space:
//!
//! * `defense` — the tuned default (small quorum, moderate threshold,
//!   fast decay): bans land on reckless attackers while compliant
//!   completion stays near the attack-free baseline.
//! * `lax` — threshold and decay so forgiving that the ban ladder never
//!   engages: the susceptibility cost of running consensus with teeth
//!   removed.
//! * `collapse` — a quorum larger than most uploaders' corroboration
//!   set, so legitimate claims fail consensus and honest uploaders
//!   accrue strikes: the friendly-fire failure mode.
//!
//! Outputs follow the sweep convention: `figconsensus_sweep_{scale}.csv`
//! and `figconsensus_{scale}.json` hold only deterministic columns and
//! are byte-identical for any `--jobs`/`--shards` count.

use coop_attacks::AttackPlan;
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::MechanismKind;
use coop_swarm::flash_crowd_with;
use coop_telemetry::{profile::phase, Profiler, Recorder, Stopwatch};
use serde::Serialize;

use crate::exec::{backoff_ms, BatchError, Executor, FailureKind, JobFailure};
use crate::runners::fig4::emit_run_outputs;
use crate::table::num;
use crate::telemetry::{BatchTrace, JobTrace, TelemetryOpts};
use crate::{OutputDir, Scale, Table};

/// The default adaptive-attacker-fraction ladder. `0.0` is the
/// attack-free baseline column every policy is compared against.
pub const FRACTIONS: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// One named defense policy: the consensus knobs a cell runs under.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct DefensePolicy {
    /// Short policy name (the sweep's row label).
    pub name: &'static str,
    /// Corroborating reports required before a disputed claim is
    /// credited against the receiver.
    pub quorum: usize,
    /// Strike level at which the ban ladder fires.
    pub ban_threshold: u32,
    /// Per-round multiplicative strike/score decay.
    pub decay: f64,
    /// Length of the first (temporary) ban in rounds.
    pub temp_ban_rounds: u64,
}

/// The three policies the default sweep brackets the defense space with.
pub const POLICIES: [DefensePolicy; 3] = [
    DefensePolicy {
        name: "defense",
        quorum: 1,
        ban_threshold: 4,
        decay: 0.9,
        temp_ban_rounds: 16,
    },
    DefensePolicy {
        name: "lax",
        quorum: 1,
        ban_threshold: 64,
        decay: 0.995,
        temp_ban_rounds: 16,
    },
    DefensePolicy {
        name: "collapse",
        quorum: 8,
        ban_threshold: 4,
        decay: 0.9,
        temp_ban_rounds: 16,
    },
];

/// One deterministic cell of the sweep.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ConsensusRow {
    /// Defense policy name.
    pub policy: String,
    /// Corroboration quorum of the policy.
    pub quorum: usize,
    /// Ban threshold of the policy.
    pub ban_threshold: u32,
    /// Strike decay of the policy.
    pub decay: f64,
    /// Adaptive-attacker population fraction (0 = attack-free baseline).
    pub attack_fraction: f64,
    /// Population simulated.
    pub peers: usize,
    /// Fraction of compliant peers that completed the download.
    pub completed_fraction: f64,
    /// Mean completion time (seconds) over completed compliant peers.
    pub mean_completion_s: Option<f64>,
    /// Final fairness statistic `F` (0 = perfectly fair).
    pub fairness_f: f64,
    /// Cumulative susceptibility (free-rider share of peer upload bytes).
    pub susceptibility: f64,
    /// Transfer reports aggregated over the run.
    pub reports: u64,
    /// Claim/ack mismatches put to quorum.
    pub disputes: u64,
    /// Temporary bans issued.
    pub bans_temp: u64,
    /// Permanent bans issued.
    pub bans_perm: u64,
    /// Bans (of either kind) that landed on compliant peers.
    pub bans_compliant: u64,
    /// Bans that landed on attackers.
    pub bans_noncompliant: u64,
    /// Whether the run ended in an unsatisfiable (stalled) swarm.
    pub stalled: bool,
}

/// The sweep report: policies in [`POLICIES`] order, fractions ascending
/// within each policy.
#[derive(Clone, Debug, Serialize)]
pub struct ConsensusReport {
    /// Artifact name ("fig-consensus").
    pub figure: String,
    /// Scale used.
    pub scale: String,
    /// Seed used.
    pub seed: u64,
    /// Rows: policy-major, fraction ascending.
    pub rows: Vec<ConsensusRow>,
}

impl ConsensusReport {
    /// The cell for one policy at one attacker fraction.
    pub fn cell(&self, policy: &str, fraction: f64) -> &ConsensusRow {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.attack_fraction == fraction)
            .expect("all grid cells present")
    }

    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "policy",
            "quorum",
            "thresh",
            "decay",
            "attackers",
            "completed",
            "mean ct (s)",
            "F",
            "suscept.",
            "disputes",
            "bans t/p",
            "bans hon/atk",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.policy.clone(),
                r.quorum.to_string(),
                r.ban_threshold.to_string(),
                num(r.decay),
                num(r.attack_fraction),
                num(r.completed_fraction),
                r.mean_completion_s.map_or("n/a".into(), num),
                num(r.fairness_f),
                num(r.susceptibility),
                r.disputes.to_string(),
                format!("{}/{}", r.bans_temp, r.bans_perm),
                format!("{}/{}", r.bans_compliant, r.bans_noncompliant),
            ]);
        }
        format!(
            "fig-consensus — consensus-reputation defense sweep ({} scale, seed {}, {} peers, adaptive mix)\n{}",
            self.scale,
            self.seed,
            self.rows.first().map_or(0, |r| r.peers),
            t.render()
        )
    }
}

/// One cell of the grid.
#[derive(Clone, Copy, Debug)]
struct Cell {
    policy: DefensePolicy,
    fraction: f64,
}

impl Cell {
    fn label(self) -> String {
        format!("consensus:{}@{}", self.policy.name, self.fraction)
    }
}

/// Runs the default sweep with machine-sized parallelism and no telemetry.
pub fn run(scale: Scale, seed: u64) -> ConsensusReport {
    let (report, _) = run_with_telemetry(
        scale,
        seed,
        None,
        None,
        &Executor::default(),
        &TelemetryOpts::disabled(),
        &OutputDir::default_dir(),
    );
    report
}

/// Runs the defense sweep: every [`POLICIES`] entry at every rung of
/// `fractions` (default [`FRACTIONS`]), the attacked cells under the
/// adaptive mix. `peers` overrides the scale's population (the `--peers`
/// flag; the ISSUE-scale run uses 10 000). Cells fan out across
/// `executor`; artifacts are written sequentially from slot-ordered
/// results, so they are byte-identical for any worker count.
pub fn run_with_telemetry(
    scale: Scale,
    seed: u64,
    peers: Option<usize>,
    fractions: Option<&[f64]>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (ConsensusReport, Option<BatchTrace>) {
    try_run_with_telemetry(scale, seed, peers, fractions, executor, opts, out)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_with_telemetry`] with per-cell panic isolation: a cell that
/// fails every attempt yields `Err` naming it, after every healthy cell
/// has still run. No artifacts are written on failure.
///
/// # Errors
///
/// Returns the batch's failures when any cell fails every attempt.
#[allow(clippy::too_many_arguments)] // one parameter per orthogonal override
pub fn try_run_with_telemetry(
    scale: Scale,
    seed: u64,
    peers: Option<usize>,
    fractions: Option<&[f64]>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(ConsensusReport, Option<BatchTrace>), BatchError> {
    let fractions: Vec<f64> = fractions.unwrap_or(&FRACTIONS).to_vec();
    let peers = peers.unwrap_or_else(|| scale.peers());
    let mut cells = Vec::with_capacity(POLICIES.len() * fractions.len());
    for policy in POLICIES {
        for &fraction in &fractions {
            cells.push(Cell { policy, fraction });
        }
    }
    let recorder_config = opts.is_enabled().then(|| opts.recorder_config());
    let shards = executor.shards();
    let sim_clock = Stopwatch::start();
    let runs = executor.try_map(&cells, |slot, &cell| {
        let cell_clock = Stopwatch::start();
        let recorder = match &recorder_config {
            Some(config) => Recorder::enabled(config.clone()),
            None => Recorder::disabled(),
        };
        let mut profiler = if opts.profile_due(slot) {
            Profiler::enabled()
        } else {
            Profiler::disabled()
        };
        let build_t = profiler.start();
        let mut config = scale.config(seed);
        config.mechanism_params.consensus_quorum = cell.policy.quorum;
        config.mechanism_params.consensus_ban_threshold = cell.policy.ban_threshold;
        config.mechanism_params.consensus_decay = cell.policy.decay;
        config.mechanism_params.consensus_temp_ban_rounds = cell.policy.temp_ban_rounds;
        let mix = CapacityClassMix::paper_default();
        let population = flash_crowd_with(
            &config,
            peers,
            MechanismKind::ConsensusReputation,
            seed,
            &mix,
            scale.arrival_window(),
        );
        let mut builder = coop_swarm::Simulation::builder(config)
            .population(population)
            .recorder(recorder)
            .shards(shards);
        if cell.fraction > 0.0 {
            builder = builder.attack_plan(AttackPlan::adaptive_mix(cell.fraction));
        }
        let sim = builder.build().expect("scale configs validate");
        profiler.stop(phase::EXEC_BUILD, build_t);
        let (result, report, profile) = sim.with_profiler(profiler).run_profiled();
        let trace = JobTrace {
            slot,
            label: cell.label(),
            seed,
            wall_ms: cell_clock.elapsed_ms(),
            slow: false,
            // `try_map` retries opaquely; per-attempt counts are only
            // tracked for `SimJob` batches.
            retries: 0,
            peers: peers as u64,
            report,
            profile: opts.profile_due(slot).then_some(profile),
        };
        (result, trace)
    });
    let sim_ms = sim_clock.elapsed_ms();
    let write_clock = Stopwatch::start();

    let failures: Vec<JobFailure> = cells
        .iter()
        .zip(&runs)
        .enumerate()
        .filter_map(|(slot, (&cell, run))| {
            run.as_ref().err().map(|message| JobFailure {
                slot,
                mechanism: cell.label(),
                peers,
                seed,
                attempts: executor.retries() + 1,
                kind: FailureKind::Panic,
                message: message.clone(),
                backoff_ms: (0..executor.retries())
                    .map(|a| backoff_ms(slot as u64, a))
                    .collect(),
            })
        })
        .collect();
    if !failures.is_empty() {
        return Err(BatchError {
            figure: "fig-consensus".to_string(),
            total: cells.len(),
            failures,
        });
    }

    let mut rows = Vec::with_capacity(cells.len());
    let mut traces = Vec::with_capacity(cells.len());
    for (&cell, run) in cells.iter().zip(runs) {
        let (result, trace) = run.expect("failures were returned above");
        let summary = result
            .consensus
            .expect("the consensus mechanism reports its summary");
        rows.push(ConsensusRow {
            policy: cell.policy.name.to_string(),
            quorum: cell.policy.quorum,
            ban_threshold: cell.policy.ban_threshold,
            decay: cell.policy.decay,
            attack_fraction: cell.fraction,
            peers,
            completed_fraction: result.completed_fraction(),
            mean_completion_s: result.mean_completion_time(),
            fairness_f: result.final_fairness_stat(),
            susceptibility: result.final_susceptibility(),
            reports: summary.reports,
            disputes: summary.disputes,
            bans_temp: summary.bans_temp,
            bans_perm: summary.bans_perm,
            bans_compliant: summary.bans_compliant,
            bans_noncompliant: summary.bans_noncompliant,
            stalled: result.stalled,
        });
        traces.push(trace);
    }
    let report = ConsensusReport {
        figure: "fig-consensus".to_string(),
        scale: scale.name().to_string(),
        seed,
        rows,
    };

    let csv_rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.quorum.to_string(),
                r.ban_threshold.to_string(),
                format!("{}", r.decay),
                format!("{}", r.attack_fraction),
                r.peers.to_string(),
                format!("{}", r.completed_fraction),
                r.mean_completion_s.map_or(String::new(), |v| format!("{v}")),
                format!("{}", r.fairness_f),
                format!("{}", r.susceptibility),
                r.reports.to_string(),
                r.disputes.to_string(),
                r.bans_temp.to_string(),
                r.bans_perm.to_string(),
                r.bans_compliant.to_string(),
                r.bans_noncompliant.to_string(),
                r.stalled.to_string(),
            ]
        })
        .collect();
    let _ = out.csv_rows(
        &format!("figconsensus_sweep_{}", scale.name()),
        &[
            "policy",
            "quorum",
            "ban_threshold",
            "decay",
            "attack_fraction",
            "peers",
            "completed_fraction",
            "mean_completion_s",
            "fairness_f",
            "susceptibility",
            "reports",
            "disputes",
            "bans_temp",
            "bans_perm",
            "bans_compliant",
            "bans_noncompliant",
            "stalled",
        ],
        &csv_rows,
    );
    let _ = out.json(&format!("figconsensus_{}", scale.name()), &report);

    let trace = recorder_config.is_some().then(|| {
        let mut trace = BatchTrace::new(traces);
        trace.push_phase("simulate", sim_ms);
        trace.push_phase("write_artifacts", write_clock.elapsed_ms());
        emit_run_outputs(
            "fig-consensus",
            &trace,
            opts,
            out,
            scale,
            seed,
            1,
            executor.jobs() as u64,
            "adaptive-mix",
        );
        trace
    });
    Ok((report, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> OutputDir {
        OutputDir::new(std::env::temp_dir().join(format!(
            "coop-consensus-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )))
    }

    #[test]
    fn sweep_covers_grid_and_is_deterministic_across_worker_counts() {
        let out = tmp();
        let opts = TelemetryOpts::disabled();
        let run = |jobs: usize| {
            run_with_telemetry(
                Scale::Quick,
                17,
                None,
                Some(&[0.0, 0.2]),
                &Executor::new(jobs),
                &opts,
                &out,
            )
        };
        let (seq, trace) = run(1);
        assert!(trace.is_none());
        assert_eq!(seq.rows.len(), POLICIES.len() * 2);
        // The attack-free baselines carry no disputes from attackers but
        // still aggregate reports every round.
        for policy in POLICIES {
            let baseline = seq.cell(policy.name, 0.0);
            assert!(baseline.reports > 0, "{}: no reports", policy.name);
            assert_eq!(baseline.attack_fraction, 0.0);
        }
        // The attacked defense cell sees the adaptive mix actually bite:
        // disputes happen and bans land.
        let attacked = seq.cell("defense", 0.2);
        assert!(attacked.disputes > 0);
        assert!(attacked.bans_temp > 0);

        // Deterministic artifacts: identical report for any worker count.
        let (par, _) = run(4);
        assert_eq!(seq.rows, par.rows);
        assert!(seq.render().contains("fig-consensus"));
        assert!(out.path().join("figconsensus_sweep_quick.csv").is_file());
        let _ = std::fs::remove_dir_all(out.path());
    }
}
