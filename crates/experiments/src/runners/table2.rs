//! **Table II** — bootstrap probabilities when a flash crowd arrives,
//! including the paper's example column, plus Lemma 3 expected bootstrap
//! times and the mean-field `z(t)` trajectories behind Fig. 4c.

use coop_incentives::analysis::bootstrap::{
    bootstrap_probability, expected_bootstrap_time, mean_field_trajectory, BootstrapParams,
};
use coop_incentives::MechanismKind;
use serde::Serialize;

use crate::table::{num, pct};
use crate::{Scale, Table};

/// One algorithm's bootstrap analysis.
#[derive(Clone, Debug, Serialize)]
pub struct Table2Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Bootstrap probability at the paper's example parameters.
    pub example_probability: f64,
    /// Paper's stated value for the example column (for comparison).
    pub paper_example: f64,
    /// Bootstrap probability at this scale's parameters.
    pub scaled_probability: f64,
    /// Lemma 3 expected rounds until all newcomers are bootstrapped,
    /// under mean-field `z(t)` dynamics at this scale.
    pub expected_bootstrap_rounds: f64,
}

/// The Table II report.
#[derive(Clone, Debug, Serialize)]
pub struct Table2Report {
    /// Rows in the paper's order.
    pub rows: Vec<Table2Row>,
    /// Scale used for the scaled column.
    pub scale: String,
}

impl Table2Report {
    /// The row for `kind`.
    pub fn get(&self, kind: MechanismKind) -> &Table2Row {
        self.rows
            .iter()
            .find(|r| r.algorithm == kind.name())
            .expect("all kinds present")
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Algorithm",
            "P(bootstrap) @ paper example",
            "paper says",
            "P(bootstrap) @ scale",
            "E[T_B] rounds (Lemma 3)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.algorithm.clone(),
                pct(r.example_probability),
                pct(r.paper_example),
                pct(r.scaled_probability),
                num(r.expected_bootstrap_rounds),
            ]);
        }
        format!(
            "Table II — bootstrap probabilities ({} scale)\n{}",
            self.scale,
            t.render()
        )
    }
}

/// The paper's printed example column, for side-by-side comparison.
fn paper_example_value(kind: MechanismKind) -> f64 {
    match kind {
        MechanismKind::Reciprocity => 0.001,
        MechanismKind::TChain => 0.714,
        MechanismKind::BitTorrent => 0.396,
        MechanismKind::FairTorrent => 0.714,
        MechanismKind::Reputation => 0.222,
        MechanismKind::Altruism => 0.918,
        // Not in the paper; the epoch-settled and consensus extensions
        // share the reputation row's bootstrap form (see
        // `bootstrap_probability`).
        MechanismKind::EpochSettlement | MechanismKind::ConsensusReputation => 0.222,
    }
}

/// Bootstrap parameters matched to an experiment scale (half the crowd
/// already bootstrapped, as in the paper's example).
fn scaled_params(scale: Scale) -> BootstrapParams {
    let n = scale.peers() as u64;
    BootstrapParams {
        n,
        n_s: 1,
        k: 5,
        z: n / 2,
        pi_dr: 0.5,
        n_bt: 4,
        omega: 0.75,
        n_ft: n / 2,
    }
}

/// Runs the Table II computation.
pub fn run(scale: Scale, _seed: u64) -> Table2Report {
    let example = BootstrapParams::paper_example();
    let scaled = scaled_params(scale);
    let rows = MechanismKind::ALL
        .iter()
        .map(|&kind| {
            // Lemma 3 with mean-field dynamics: z grows as users
            // bootstrap; p_B(t) follows.
            let mut base = scaled;
            base.z = 1;
            let traj = mean_field_trajectory(kind, &base, 1, 400);
            let expected = expected_bootstrap_time(
                scaled.n - 1,
                |t| {
                    let z = traj
                        .get(t as usize)
                        .copied()
                        .unwrap_or(*traj.last().expect("nonempty"));
                    let mut p = scaled;
                    p.z = (z.round() as u64).max(1);
                    bootstrap_probability(kind, &p)
                },
                1e-9,
                100_000,
            );
            Table2Row {
                algorithm: kind.name().to_string(),
                example_probability: bootstrap_probability(kind, &example),
                paper_example: paper_example_value(kind),
                scaled_probability: bootstrap_probability(kind, &scaled),
                expected_bootstrap_rounds: expected,
            }
        })
        .collect();
    let report = Table2Report {
        rows,
        scale: scale.name().to_string(),
    };
    let _ = crate::write_json(&format!("table2_{}", scale.name()), &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_example_column() {
        let r = run(Scale::Quick, 0);
        for row in &r.rows {
            assert!(
                (row.example_probability - row.paper_example).abs() < 0.001,
                "{}: got {:.4}, paper {:.4}",
                row.algorithm,
                row.example_probability,
                row.paper_example
            );
        }
    }

    #[test]
    fn expected_times_order_as_prop4() {
        let r = run(Scale::Default, 0);
        let e = |k| r.get(k).expected_bootstrap_rounds;
        assert!(e(MechanismKind::Altruism) <= e(MechanismKind::TChain));
        assert!(e(MechanismKind::TChain) < e(MechanismKind::BitTorrent));
        assert!(e(MechanismKind::BitTorrent) < e(MechanismKind::Reputation));
        assert!(e(MechanismKind::Reputation) < e(MechanismKind::Reciprocity));
    }

    #[test]
    fn scaled_probabilities_are_valid() {
        for scale in [Scale::Quick, Scale::Default] {
            let r = run(scale, 0);
            for row in &r.rows {
                assert!((0.0..=1.0).contains(&row.scaled_probability), "{row:?}");
                assert!(row.expected_bootstrap_rounds >= 1.0);
            }
        }
    }

    #[test]
    fn render_includes_percentages() {
        let text = run(Scale::Quick, 0).render();
        assert!(text.contains('%'));
        assert!(text.contains("91.8%"), "altruism example column: {text}");
    }
}
