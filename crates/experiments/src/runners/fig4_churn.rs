//! **fig4-churn** — the Fig. 4 comparison under deterministic churn: the
//! six mechanisms are re-run at several churn rates (a sweep over
//! multiples of a base per-round departure hazard), with optional link
//! loss and seeder exit riding along from the CLI's fault flags.
//!
//! Every cell of the churn-rate × mechanism grid is one independent
//! [`SimJob`] carrying a [`FaultPlan`]; the plan compiles to a pre-drawn
//! fault schedule inside the builder, so the whole sweep is
//! byte-deterministic for any `--jobs` count (pinned by the
//! `churn_determinism` integration test).

use coop_faults::FaultPlan;
use coop_incentives::MechanismKind;
use coop_telemetry::Stopwatch;
use serde::Serialize;

use crate::exec::{BatchError, Executor, SimJob};
use crate::runners::fig4::emit_run_outputs;
use crate::table::num;
use crate::telemetry::{BatchTrace, TelemetryOpts};
use crate::{OutputDir, Scale, Table};

/// The default base churn hazard when no `--churn` flag is given: each
/// peer's lifetime is exponential with mean 100 rounds.
pub const DEFAULT_CHURN_RATE: f64 = 0.01;

/// Multiples of the base churn rate the sweep runs, from the fault-free
/// baseline up to twice the base hazard.
pub const MULTIPLIERS: [f64; 4] = [0.0, 0.5, 1.0, 2.0];

/// One (churn rate, mechanism) cell of the sweep.
#[derive(Clone, Debug, Serialize)]
pub struct ChurnRow {
    /// Per-round departure hazard applied to this run.
    pub churn_rate: f64,
    /// Algorithm name.
    pub algorithm: String,
    /// Fraction of compliant peers that completed the download.
    pub completed_fraction: f64,
    /// Mean completion time (seconds) over completed compliant peers.
    pub mean_completion_s: Option<f64>,
    /// Final average fairness `(Σ u_i/d_i)/N`.
    pub avg_fairness: Option<f64>,
    /// Final fairness statistic `F` (0 = perfectly fair).
    pub fairness_f: f64,
    /// Bytes of completed transfers lost to fault-injected link loss.
    pub fault_dropped_bytes: u64,
    /// Whether the run ended in an unsatisfiable (stalled) swarm.
    pub stalled: bool,
}

/// The full churn-sweep report.
#[derive(Clone, Debug, Serialize)]
pub struct ChurnReport {
    /// Artifact name ("fig4-churn").
    pub figure: String,
    /// Scale used.
    pub scale: String,
    /// Seed used.
    pub seed: u64,
    /// The base fault plan the sweep scaled (multiplier 1.0).
    pub base_churn_rate: f64,
    /// Link-loss probability applied at every multiplier.
    pub loss_prob: f64,
    /// Rows in (churn rate, [`MechanismKind::ALL`]) order.
    pub rows: Vec<ChurnRow>,
}

impl ChurnReport {
    /// The rows for one churn rate, in mechanism order.
    pub fn at_rate(&self, churn_rate: f64) -> Vec<&ChurnRow> {
        self.rows
            .iter()
            .filter(|r| r.churn_rate == churn_rate)
            .collect()
    }

    /// The row for one (churn rate, mechanism) cell.
    pub fn get(&self, churn_rate: f64, kind: MechanismKind) -> &ChurnRow {
        self.rows
            .iter()
            .find(|r| r.churn_rate == churn_rate && r.algorithm == kind.name())
            .expect("all cells present")
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "churn",
            "Algorithm",
            "completed",
            "mean ct (s)",
            "avg fairness",
            "F",
            "dropped (B)",
            "stalled",
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.4}", r.churn_rate),
                r.algorithm.clone(),
                num(r.completed_fraction),
                r.mean_completion_s.map_or("n/a".into(), num),
                r.avg_fairness.map_or("n/a".into(), num),
                num(r.fairness_f),
                r.fault_dropped_bytes.to_string(),
                r.stalled.to_string(),
            ]);
        }
        format!(
            "fig4-churn — churn sweep (base rate {}, loss {}, {} scale, seed {})\n{}",
            self.base_churn_rate,
            self.loss_prob,
            self.scale,
            self.seed,
            t.render()
        )
    }
}

/// Runs the churn sweep with machine-sized parallelism and no telemetry.
pub fn run(scale: Scale, seed: u64) -> ChurnReport {
    run_with_telemetry(
        scale,
        seed,
        None,
        &Executor::default(),
        &TelemetryOpts::disabled(),
        &OutputDir::default_dir(),
    )
    .0
}

/// Runs the churn sweep: for each multiplier in [`MULTIPLIERS`], all six
/// mechanisms run under `base` with its churn rate scaled by the
/// multiplier (loss and seeder-exit settings apply at every multiplier,
/// including the churn-free baseline).
///
/// `base` is the CLI's fault flags ([`crate::RunSpec::fault_plan`]); with
/// no flags the sweep uses [`DEFAULT_CHURN_RATE`] and no loss. Artifacts:
/// one CSV with every cell of the grid and one JSON report, both written
/// sequentially from slot-ordered results (byte-identical for any worker
/// count). With telemetry on, the batch manifest carries the
/// `swarm.fault.*` counters summed over the whole sweep.
pub fn run_with_telemetry(
    scale: Scale,
    seed: u64,
    base: Option<FaultPlan>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (ChurnReport, Option<BatchTrace>) {
    run_sweep(scale, seed, base, &MULTIPLIERS, executor, opts, out)
}

/// [`run_with_telemetry`] returning batch failures as `Err` instead of
/// panicking (the crash-safe CLI path).
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
pub fn try_run_with_telemetry(
    scale: Scale,
    seed: u64,
    base: Option<FaultPlan>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(ChurnReport, Option<BatchTrace>), BatchError> {
    try_run_sweep(scale, seed, base, &MULTIPLIERS, executor, opts, out)
}

/// [`run_with_telemetry`] with an explicit multiplier list (tests and the
/// CI smoke job use a shorter sweep).
pub fn run_sweep(
    scale: Scale,
    seed: u64,
    base: Option<FaultPlan>,
    multipliers: &[f64],
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (ChurnReport, Option<BatchTrace>) {
    try_run_sweep(scale, seed, base, multipliers, executor, opts, out)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_sweep`] under the executor's robustness policy: a cell that fails
/// every attempt yields `Err` naming it, after every healthy cell has
/// still run (and been journaled). No sweep artifacts are written on
/// failure.
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
pub fn try_run_sweep(
    scale: Scale,
    seed: u64,
    base: Option<FaultPlan>,
    multipliers: &[f64],
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(ChurnReport, Option<BatchTrace>), BatchError> {
    let mut base = base.unwrap_or_else(|| FaultPlan::churn(DEFAULT_CHURN_RATE));
    if base.churn_rate <= 0.0 {
        base.churn_rate = DEFAULT_CHURN_RATE;
    }
    let jobs: Vec<SimJob> = multipliers
        .iter()
        .flat_map(|&m| {
            MechanismKind::ALL.iter().map(move |&kind| {
                let mut plan = base;
                plan.churn_rate = base.churn_rate * m;
                SimJob {
                    kind,
                    scale,
                    seed,
                    plan: None,
                    // An all-zero plan is omitted entirely so the baseline
                    // row takes the fault-free hot path byte-for-byte.
                    faults: (!plan.is_inert()).then_some(plan),
                    workload: None,
                }
            })
        })
        .collect();
    let sim_clock = Stopwatch::start();
    let run = executor.run_sims_robust(&jobs, opts);
    let sim_ms = sim_clock.elapsed_ms();
    let (results, trace) = run.into_complete("fig4-churn")?;
    let write_clock = Stopwatch::start();

    let per_rate = MechanismKind::ALL.len();
    let rows: Vec<ChurnRow> = multipliers
        .iter()
        .enumerate()
        .flat_map(|(i, &m)| {
            MechanismKind::ALL
                .iter()
                .zip(&results[i * per_rate..(i + 1) * per_rate])
                .map(move |(&kind, result)| ChurnRow {
                    churn_rate: base.churn_rate * m,
                    algorithm: kind.name().to_string(),
                    completed_fraction: result.completed_fraction(),
                    mean_completion_s: result.mean_completion_time(),
                    avg_fairness: result.final_avg_fairness(),
                    fairness_f: result.final_fairness_stat(),
                    fault_dropped_bytes: result.totals.fault_dropped_bytes,
                    stalled: result.stalled,
                })
        })
        .collect();
    let report = ChurnReport {
        figure: "fig4-churn".to_string(),
        scale: scale.name().to_string(),
        seed,
        base_churn_rate: base.churn_rate,
        loss_prob: base.loss_prob,
        rows,
    };
    let csv_rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.churn_rate),
                r.algorithm.clone(),
                format!("{}", r.completed_fraction),
                r.mean_completion_s.map_or(String::new(), |v| format!("{v}")),
                r.avg_fairness.map_or(String::new(), |v| format!("{v}")),
                format!("{}", r.fairness_f),
                r.fault_dropped_bytes.to_string(),
                r.stalled.to_string(),
            ]
        })
        .collect();
    let _ = out.csv_rows(
        &format!("fig4churn_sweep_{}", scale.name()),
        &[
            "churn_rate",
            "algorithm",
            "completed_fraction",
            "mean_completion_s",
            "avg_fairness",
            "fairness_f",
            "fault_dropped_bytes",
            "stalled",
        ],
        &csv_rows,
    );
    let _ = out.json(&format!("fig4churn_{}", scale.name()), &report);

    let trace = trace.map(|mut trace| {
        trace.push_phase("simulate", sim_ms);
        trace.push_phase("write_artifacts", write_clock.elapsed_ms());
        emit_run_outputs(
            "fig4-churn",
            &trace,
            opts,
            out,
            scale,
            seed,
            1,
            executor.jobs() as u64,
            "none",
        );
        trace
    });
    Ok((report, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_sweep_baseline_matches_fig4_and_churn_degrades_completion() {
        let executor = Executor::default();
        let (report, trace) = run_sweep(
            Scale::Quick,
            33,
            Some(FaultPlan::churn(0.02)),
            &[0.0, 1.0],
            &executor,
            &TelemetryOpts::disabled(),
            &OutputDir::default_dir(),
        );
        assert!(trace.is_none());
        assert_eq!(report.rows.len(), 2 * MechanismKind::ALL.len());

        // The multiplier-0 rows are exactly the fault-free Fig. 4 runs.
        let fig4 = super::super::fig4::run_with(Scale::Quick, 33, &executor);
        for kind in MechanismKind::ALL {
            let base = report.get(0.0, kind);
            let reference = fig4.get(kind);
            assert_eq!(base.completed_fraction, reference.completed_fraction, "{kind}");
            assert_eq!(base.mean_completion_s, reference.mean_completion_s, "{kind}");
            assert!(!base.stalled);
        }

        // Churn strictly removes peers, so completion cannot improve for
        // the altruistic baseline (and the report carries both rates).
        let alt0 = report.get(0.0, MechanismKind::Altruism);
        let alt1 = report.get(0.02, MechanismKind::Altruism);
        assert!(alt1.completed_fraction <= alt0.completed_fraction + 1e-12);
        assert!(report.render().contains("churn"));
    }
}
