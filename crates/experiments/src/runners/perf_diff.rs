//! `perf-diff` — compare two `profile.json` snapshots and gate on
//! regressions.
//!
//! Raw wall-clock totals vary machine to machine, so the tolerance band
//! applies to *phase shares*: each round-loop phase's fraction of the
//! total attributed sim time, which is stable across hardware for the
//! same workload. Raw durations are reported for context only. On top of
//! the share bands, two structural gates check the deterministic
//! counters carried in `profile.json`:
//!
//! - the incremental availability index must never rebuild
//!   (`swarm.availability.rebuilds == 0` in the current snapshot), and
//! - the wasted-visit ratio must be present, below 1.0, and no higher
//!   than the baseline's (absent means the work counters stopped
//!   flowing; 1.0 means every allocation visit moved no bytes; climbing
//!   past the baseline means the dirty-set loop's visit skipping has
//!   regressed toward the indexed full-scan behaviour).
//!
//! This runner executes no simulations: it parses the two files, prints
//! a markdown summary, writes it atomically as [`PERF_DIFF_FILE`], and
//! exits 1 when any gate fails.

use std::path::Path;
use std::process::ExitCode;

use coop_telemetry::profile::phase;
use coop_telemetry::RunProfile;

use crate::{OutputDir, RunSpec};

/// File name of the markdown summary written next to the artifacts.
pub const PERF_DIFF_FILE: &str = "perf_diff.md";

/// The availability-index counter the structural gate watches.
pub const REBUILDS_COUNTER: &str = "swarm.availability.rebuilds";

/// One phase's comparison row.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase name from the taxonomy.
    pub name: String,
    /// Baseline total nanoseconds under this phase.
    pub base_ns: u64,
    /// Current total nanoseconds under this phase.
    pub cur_ns: u64,
    /// Baseline share of attributed sim time (`None` for phases outside
    /// [`phase::ATTRIBUTED`], whose shares are not comparable).
    pub base_share: Option<f64>,
    /// Current share of attributed sim time.
    pub cur_share: Option<f64>,
    /// Whether the share shifted beyond the tolerance band.
    pub drift: bool,
}

impl PhaseRow {
    /// Absolute share shift between the snapshots (`None` unless both
    /// sides have a comparable share).
    pub fn share_delta(&self) -> Option<f64> {
        match (self.base_share, self.cur_share) {
            (Some(b), Some(c)) => Some(c - b),
            _ => None,
        }
    }
}

/// The full comparison: per-phase rows, work-counter deltas, and the
/// pass/fail gates.
#[derive(Debug)]
pub struct DiffReport {
    /// Union of both snapshots' phases, sorted by name.
    pub rows: Vec<PhaseRow>,
    /// Work counters present in either snapshot: `(name, base, current)`.
    pub work: Vec<(String, u64, u64)>,
    /// Gates in evaluation order: `(passed, description)`.
    pub gates: Vec<(bool, String)>,
    /// The share tolerance the drift gate used.
    pub tolerance: f64,
    /// `artifact/scale (jobs, profiled)` labels for the two snapshots.
    pub labels: (String, String),
}

impl DiffReport {
    /// Whether every gate passed.
    pub fn is_ok(&self) -> bool {
        self.gates.iter().all(|(ok, _)| *ok)
    }

    /// The markdown summary (also what lands in [`PERF_DIFF_FILE`]).
    pub fn render(&self) -> String {
        let mut out = String::from("# perf-diff\n\n");
        out.push_str(&format!("- baseline: {}\n", self.labels.0));
        out.push_str(&format!("- current: {}\n", self.labels.1));
        out.push_str(&format!(
            "- tolerance: ±{:.3} absolute share of attributed sim time\n\n",
            self.tolerance
        ));
        out.push_str("## Phases\n\n");
        out.push_str("| phase | base ms | cur ms | base share | cur share | Δ share | |\n");
        out.push_str("|---|---:|---:|---:|---:|---:|---|\n");
        for row in &self.rows {
            out.push_str(&format!(
                "| {} | {:.3} | {:.3} | {} | {} | {} | {} |\n",
                row.name,
                row.base_ns as f64 / 1e6,
                row.cur_ns as f64 / 1e6,
                fmt_share(row.base_share),
                fmt_share(row.cur_share),
                match row.share_delta() {
                    Some(d) => format!("{d:+.3}"),
                    None => "-".to_string(),
                },
                if row.drift { "DRIFT" } else { "" }
            ));
        }
        out.push_str("\n## Work counters\n\n");
        out.push_str("| counter | base | current | Δ |\n|---|---:|---:|---:|\n");
        for (name, base, cur) in &self.work {
            out.push_str(&format!(
                "| {name} | {base} | {cur} | {:+} |\n",
                *cur as i128 - *base as i128
            ));
        }
        out.push_str("\n## Gates\n\n");
        for (ok, desc) in &self.gates {
            out.push_str(&format!(
                "- {} {desc}\n",
                if *ok { "[ok]" } else { "[FAIL]" }
            ));
        }
        out.push_str(&format!(
            "\nverdict: {}\n",
            if self.is_ok() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

fn fmt_share(share: Option<f64>) -> String {
    match share {
        Some(s) => format!("{s:.3}"),
        None => "-".to_string(),
    }
}

/// Total nanoseconds across the disjoint attributed sim phases — the
/// denominator shares are computed against.
fn attributed_total(profile: &RunProfile) -> u64 {
    phase::ATTRIBUTED
        .iter()
        .map(|name| profile.phase(name).map_or(0, |s| s.total_ns))
        .sum()
}

fn label(profile: &RunProfile, path: &Path) -> String {
    format!(
        "{} {} ({} jobs, {} profiled) — {}",
        profile.artifact,
        profile.scale,
        profile.jobs,
        profile.profiled_jobs,
        path.display()
    )
}

/// Compares two parsed profiles. Pure — no I/O, so tests can drive it
/// with synthetic snapshots.
pub fn diff(base: &RunProfile, cur: &RunProfile, tolerance: f64) -> DiffReport {
    let base_total = attributed_total(base);
    let cur_total = attributed_total(cur);
    let share = |total: u64, ns: u64| (total > 0).then(|| ns as f64 / total as f64);

    let mut names: Vec<&str> = base
        .phases
        .iter()
        .chain(cur.phases.iter())
        .map(|(n, _)| n.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();

    let mut rows = Vec::new();
    let mut drifted: Vec<String> = Vec::new();
    for name in names {
        let base_ns = base.phase(name).map_or(0, |s| s.total_ns);
        let cur_ns = cur.phase(name).map_or(0, |s| s.total_ns);
        let comparable = phase::ATTRIBUTED.contains(&name);
        let base_share = if comparable { share(base_total, base_ns) } else { None };
        let cur_share = if comparable { share(cur_total, cur_ns) } else { None };
        let drift = match (base_share, cur_share) {
            (Some(b), Some(c)) => (c - b).abs() > tolerance,
            _ => false,
        };
        if drift {
            drifted.push(name.to_string());
        }
        rows.push(PhaseRow {
            name: name.to_string(),
            base_ns,
            cur_ns,
            base_share,
            cur_share,
            drift,
        });
    }

    let mut work_names: Vec<&str> = base
        .work
        .iter()
        .chain(cur.work.iter())
        .map(|(n, _)| n.as_str())
        .collect();
    work_names.sort_unstable();
    work_names.dedup();
    let work = work_names
        .into_iter()
        .map(|n| (n.to_string(), base.work_counter(n), cur.work_counter(n)))
        .collect();

    let mut gates = Vec::new();
    let rebuilds = cur.work_counter(REBUILDS_COUNTER);
    gates.push((
        rebuilds == 0,
        format!("availability rebuilds: {rebuilds} (must be 0)"),
    ));
    // The ratio gate compares against the baseline when it carries one:
    // the dirty-set round loop earns its keep by skipping visits that
    // cannot move bytes, so a current snapshot whose ratio climbs past
    // the committed baseline has regressed toward full scanning even if
    // it still clears the absolute 1.0 sanity bound.
    gates.push(match (cur.wasted_visit_ratio(), base.wasted_visit_ratio()) {
        (Some(r), Some(b)) if r < 1.0 && r <= b => (
            true,
            format!("wasted-visit ratio: {r:.3} (<= baseline {b:.3})"),
        ),
        (Some(r), Some(b)) if r < 1.0 => (
            false,
            format!("wasted-visit ratio: {r:.3} (must be <= baseline {b:.3})"),
        ),
        (Some(r), None) if r < 1.0 => (true, format!("wasted-visit ratio: {r:.3} (< 1.0)")),
        (Some(r), _) => (false, format!("wasted-visit ratio: {r:.3} (must be < 1.0)")),
        (None, _) => (
            false,
            "wasted-visit ratio: absent (work counters missing)".to_string(),
        ),
    });
    gates.push(if drifted.is_empty() {
        (true, format!("phase shares within ±{tolerance:.3}"))
    } else {
        (
            false,
            format!(
                "phase share drift beyond ±{tolerance:.3}: {}",
                drifted.join(", ")
            ),
        )
    });

    DiffReport {
        rows,
        work,
        gates,
        tolerance,
        labels: (String::new(), String::new()),
    }
}

fn load(path: &Path) -> Result<RunProfile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let profile = RunProfile::parse(&text)?;
    profile.validate()?;
    Ok(profile)
}

/// CLI entry point: loads `--baseline` and `--current`, prints the
/// markdown summary, writes it as [`PERF_DIFF_FILE`] in the output
/// directory, and returns exit code 1 when any gate fails (2 on
/// unreadable/invalid input).
pub fn run_cli(spec: &RunSpec) -> ExitCode {
    let baseline = spec.baseline.as_deref().expect("parse enforces --baseline");
    let current = spec.current.as_deref().expect("parse enforces --current");
    let base = match load(baseline) {
        Ok(p) => p,
        Err(err) => {
            eprintln!("error: --baseline {}: {err}", baseline.display());
            return ExitCode::from(2);
        }
    };
    let cur = match load(current) {
        Ok(p) => p,
        Err(err) => {
            eprintln!("error: --current {}: {err}", current.display());
            return ExitCode::from(2);
        }
    };
    let mut report = diff(&base, &cur, spec.tolerance);
    report.labels = (label(&base, baseline), label(&cur, current));
    let text = report.render();
    println!("{text}");
    if let Some(dir) = &spec.out_dir {
        OutputDir::set_default_root(dir.clone());
    }
    let path = OutputDir::default_dir().path().join(PERF_DIFF_FILE);
    match coop_telemetry::write_atomic_str(&path, &text) {
        Ok(()) => eprintln!("perf-diff summary written to {}", path.display()),
        Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
    }
    if report.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coop_telemetry::profile::work;
    use coop_telemetry::{JobWork, PhaseStat};

    fn stat(ns: u64) -> PhaseStat {
        let mut s = PhaseStat::default();
        s.observe_ns(ns);
        s
    }

    fn snapshot(allocate_ns: u64, settle_ns: u64, rebuilds: u64) -> RunProfile {
        RunProfile {
            artifact: "fig4-scale".into(),
            scale: "quick".into(),
            jobs: 1,
            profiled_jobs: 1,
            phases: vec![
                (phase::SIM_ALLOCATE.to_string(), stat(allocate_ns)),
                (phase::SIM_RUN.to_string(), stat(allocate_ns + settle_ns)),
                (phase::SIM_SETTLE.to_string(), stat(settle_ns)),
            ],
            work: vec![
                (REBUILDS_COUNTER.to_string(), rebuilds),
                (work::PEERS_PRODUCTIVE.to_string(), 60),
                (work::PEERS_VISITED.to_string(), 100),
            ],
            per_job: vec![JobWork {
                label: "psp".into(),
                seed: 42,
                peers: 80,
                visited: 100,
                productive: 60,
            }],
        }
    }

    #[test]
    fn identical_snapshots_pass_every_gate() {
        let base = snapshot(600, 400, 0);
        let report = diff(&base, &snapshot(600, 400, 0), 0.25);
        assert!(report.is_ok(), "{:?}", report.gates);
        let text = report.render();
        assert!(text.contains("verdict: PASS"), "{text}");
        assert!(text.contains("| sim.allocate | 0.001 | 0.001 | 0.600 | 0.600 | +0.000 |"));
    }

    #[test]
    fn rebuilds_in_current_fail_the_gate() {
        let base = snapshot(600, 400, 0);
        let report = diff(&base, &snapshot(600, 400, 3), 0.25);
        assert!(!report.is_ok());
        assert!(report.render().contains("[FAIL] availability rebuilds: 3"));
    }

    #[test]
    fn share_drift_beyond_tolerance_fails() {
        let base = snapshot(600, 400, 0);
        // allocate share moves 0.60 -> 0.90: a 0.30 shift.
        let report = diff(&base, &snapshot(900, 100, 0), 0.25);
        assert!(!report.is_ok());
        let text = report.render();
        assert!(text.contains("DRIFT"), "{text}");
        assert!(text.contains("[FAIL] phase share drift"), "{text}");
        // The same shift passes a wider band.
        assert!(diff(&base, &snapshot(900, 100, 0), 0.35).is_ok());
    }

    /// Rewrites the productive-visit count everywhere it appears, which
    /// moves the snapshot's wasted-visit ratio (visited stays at 100).
    fn set_productive(profile: &mut RunProfile, productive: u64) {
        for (name, value) in &mut profile.work {
            if name == work::PEERS_PRODUCTIVE {
                *value = productive;
            }
        }
        for row in &mut profile.per_job {
            row.productive = productive;
        }
    }

    #[test]
    fn wasted_ratio_climbing_past_baseline_fails() {
        let base = snapshot(600, 400, 0);
        // 60 -> 55 productive of 100 visits: ratio climbs 0.40 -> 0.45.
        let mut cur = snapshot(600, 400, 0);
        set_productive(&mut cur, 55);
        let report = diff(&base, &cur, 0.25);
        assert!(!report.is_ok());
        assert!(report
            .render()
            .contains("[FAIL] wasted-visit ratio: 0.450 (must be <= baseline 0.400)"));
        // A drop below the baseline passes.
        let mut better = snapshot(600, 400, 0);
        set_productive(&mut better, 90);
        let report = diff(&base, &better, 0.25);
        assert!(report.is_ok(), "{:?}", report.gates);
        assert!(report
            .render()
            .contains("[ok] wasted-visit ratio: 0.100 (<= baseline 0.400)"));
    }

    #[test]
    fn missing_work_counters_fail_the_wasted_ratio_gate() {
        let base = snapshot(600, 400, 0);
        let mut cur = snapshot(600, 400, 0);
        cur.work.clear();
        cur.per_job.clear();
        let report = diff(&base, &cur, 0.25);
        assert!(!report.is_ok());
        assert!(report
            .render()
            .contains("[FAIL] wasted-visit ratio: absent"));
    }

    #[test]
    fn unprofiled_snapshots_have_no_comparable_shares() {
        // Work counters flow even when no slot carried a profiler; the
        // share gate simply has nothing to compare.
        let mut base = snapshot(600, 400, 0);
        let mut cur = snapshot(600, 400, 0);
        base.phases.clear();
        cur.phases.clear();
        let report = diff(&base, &cur, 0.25);
        assert!(report.is_ok(), "{:?}", report.gates);
        assert!(report.rows.is_empty());
    }
}
