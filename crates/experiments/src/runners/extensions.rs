//! Extension experiments beyond the paper's six algorithms:
//!
//! * **BitTorrent variants** — PropShare \[5\] and BitTyrant \[6\], which the
//!   paper cites as attempts to reduce BitTorrent's free-riding, compared
//!   against stock BitTorrent with and without 20 % free-riders.
//! * **Trusted reputation** — the EigenTrust-weighted false-praise defense
//!   of the paper's footnote 6, compared against the basic reputation
//!   algorithm under the false-praise collusion attack.

use coop_attacks::AttackPlan;
use coop_incentives::mechanisms::extensions::{BitTyrant, PropShare};
use coop_incentives::{MechanismKind, MechanismParams};
use coop_swarm::{flash_crowd_with, PeerSpec, SimResult, Simulation};
use serde::Serialize;

use crate::table::num;
use crate::{Scale, Table};

/// Which BitTorrent-family client a run used.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum BtVariant {
    /// Stock BitTorrent (equal-split tit-for-tat + optimistic unchoke).
    Stock,
    /// PropShare (proportional-share auction).
    PropShare,
    /// BitTyrant (strategic ROI-greedy unchoking, no altruism).
    BitTyrant,
}

impl BtVariant {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BtVariant::Stock => "BitTorrent",
            BtVariant::PropShare => "PropShare",
            BtVariant::BitTyrant => "BitTyrant",
        }
    }
}

/// One run's summary.
#[derive(Clone, Debug, Serialize)]
pub struct VariantRow {
    /// Client name.
    pub client: String,
    /// With (true) or without free-riders.
    pub attacked: bool,
    /// Completion fraction of compliant peers.
    pub completed_fraction: f64,
    /// Mean completion seconds.
    pub mean_completion_s: Option<f64>,
    /// Mean bootstrap seconds.
    pub mean_bootstrap_s: Option<f64>,
    /// Fairness `F`.
    pub fairness_f: f64,
    /// Susceptibility.
    pub susceptibility: f64,
    /// Mean completion time of the *free-riders* (how fast attackers
    /// extract the file) — the sharp discriminator once cumulative
    /// susceptibility saturates.
    pub fr_mean_completion_s: Option<f64>,
}

/// Trusted-reputation comparison row.
#[derive(Clone, Debug, Serialize)]
pub struct TrustRow {
    /// "basic" or "eigentrust".
    pub scheme: String,
    /// Susceptibility under the false-praise attack.
    pub susceptibility: f64,
    /// Compliant mean completion seconds.
    pub mean_completion_s: Option<f64>,
    /// Mean completion time of the free-riders.
    pub fr_mean_completion_s: Option<f64>,
    /// Fairness `F`.
    pub fairness_f: f64,
}

/// The extensions report.
#[derive(Clone, Debug, Serialize)]
pub struct ExtensionsReport {
    /// Scale used.
    pub scale: String,
    /// BitTorrent-variant comparison (clean and attacked).
    pub variants: Vec<VariantRow>,
    /// Reputation false-praise defense comparison.
    pub trust: Vec<TrustRow>,
}

impl ExtensionsReport {
    /// The variant row for (client label, attacked).
    pub fn variant(&self, client: &str, attacked: bool) -> &VariantRow {
        self.variants
            .iter()
            .find(|r| r.client == client && r.attacked == attacked)
            .expect("all variants present")
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "client",
            "free-riders",
            "completed",
            "mean ct (s)",
            "mean boot (s)",
            "F",
            "susceptibility",
            "FR mean ct (s)",
        ]);
        for r in &self.variants {
            t.row(vec![
                r.client.clone(),
                if r.attacked { "20%".into() } else { "none".into() },
                num(r.completed_fraction),
                r.mean_completion_s.map_or("n/a".into(), num),
                r.mean_bootstrap_s.map_or("n/a".into(), num),
                num(r.fairness_f),
                num(r.susceptibility),
                r.fr_mean_completion_s.map_or("never".into(), num),
            ]);
        }
        let mut t2 = Table::new(vec![
            "reputation scheme",
            "susceptibility",
            "mean ct (s)",
            "FR mean ct (s)",
            "F",
        ]);
        for r in &self.trust {
            t2.row(vec![
                r.scheme.clone(),
                num(r.susceptibility),
                r.mean_completion_s.map_or("n/a".into(), num),
                r.fr_mean_completion_s.map_or("never".into(), num),
                num(r.fairness_f),
            ]);
        }
        format!(
            "Extension A — BitTorrent variants (PropShare, BitTyrant)\n{}\n\
             Extension B — reputation false praise: basic vs EigenTrust-weighted\n{}",
            t.render(),
            t2.render()
        )
    }
}

fn fr_mean_completion(r: &SimResult) -> Option<f64> {
    let times: Vec<f64> = r.freeriders().filter_map(|p| p.completion_s).collect();
    if times.is_empty() {
        None
    } else {
        Some(times.iter().sum::<f64>() / times.len() as f64)
    }
}

fn variant_population(
    variant: BtVariant,
    scale: Scale,
    seed: u64,
) -> (coop_swarm::SwarmConfig, Vec<PeerSpec>) {
    let config = scale.config(seed);
    let mix = coop_incentives::analysis::capacity::CapacityClassMix::paper_default();
    let mut population = flash_crowd_with(
        &config,
        scale.peers(),
        MechanismKind::BitTorrent,
        seed,
        &mix,
        scale.arrival_window(),
    );
    let params = config.mechanism_params;
    for spec in population.iter_mut() {
        spec.mechanism = match variant {
            BtVariant::Stock => Box::new(move || {
                coop_incentives::build_mechanism(MechanismKind::BitTorrent, params)
            }),
            BtVariant::PropShare => Box::new(move || Box::new(PropShare::new(params))),
            BtVariant::BitTyrant => Box::new(move || Box::new(BitTyrant::new(params))),
        };
    }
    (config, population)
}

fn run_variant(
    variant: BtVariant,
    scale: Scale,
    seed: u64,
    attacked: bool,
    alpha_bt: Option<f64>,
) -> SimResult {
    let (mut config, mut population) = variant_population(variant, scale, seed);
    if let Some(alpha) = alpha_bt {
        config.mechanism_params.alpha_bt = alpha;
        // Rebuild factories so the override reaches the clients.
        let params = config.mechanism_params;
        for spec in population.iter_mut() {
            spec.mechanism = match variant {
                BtVariant::Stock => Box::new(move || {
                    coop_incentives::build_mechanism(MechanismKind::BitTorrent, params)
                }),
                BtVariant::PropShare => Box::new(move || Box::new(PropShare::new(params))),
                BtVariant::BitTyrant => Box::new(move || Box::new(BitTyrant::new(params))),
            };
        }
    }
    let mut builder = Simulation::builder(config).population(population);
    if attacked {
        builder = builder.attack_plan(AttackPlan::simple(0.2));
    }
    builder.build().expect("valid config").run()
}

fn run_trust(scale: Scale, seed: u64, trusted: bool) -> SimResult {
    let mut config = scale.config(seed);
    config.trusted_reputation = trusted;
    let mix = coop_incentives::analysis::capacity::CapacityClassMix::paper_default();
    let population = flash_crowd_with(
        &config,
        scale.peers(),
        MechanismKind::Reputation,
        seed,
        &mix,
        scale.arrival_window(),
    );
    Simulation::builder(config)
        .population(population)
        .attack_plan(AttackPlan::false_praise(0.2))
        .build()
        .expect("valid config")
        .run()
}

/// Runs the extension experiments.
pub fn run(scale: Scale, seed: u64) -> ExtensionsReport {
    let _ = MechanismParams::default();
    let mut variants = Vec::new();
    for (variant, label, alpha) in [
        (BtVariant::Stock, "BitTorrent", None),
        (BtVariant::PropShare, "PropShare", None),
        (BtVariant::PropShare, "PropShare(a=0)", Some(0.0)),
        (BtVariant::BitTyrant, "BitTyrant", None),
    ] {
        for attacked in [false, true] {
            let r = run_variant(variant, scale, seed, attacked, alpha);
            variants.push(VariantRow {
                client: label.to_string(),
                attacked,
                completed_fraction: r.completed_fraction(),
                mean_completion_s: r.mean_completion_time(),
                mean_bootstrap_s: r.mean_bootstrap_time(),
                fairness_f: r.final_fairness_stat(),
                susceptibility: r.final_susceptibility(),
                fr_mean_completion_s: fr_mean_completion(&r),
            });
        }
    }
    let trust = [false, true]
        .iter()
        .map(|&trusted| {
            let r = run_trust(scale, seed, trusted);
            TrustRow {
                scheme: if trusted { "eigentrust" } else { "basic" }.to_string(),
                susceptibility: r.final_susceptibility(),
                mean_completion_s: r.mean_completion_time(),
                fr_mean_completion_s: fr_mean_completion(&r),
                fairness_f: r.final_fairness_stat(),
            }
        })
        .collect();
    let report = ExtensionsReport {
        scale: scale.name().to_string(),
        variants,
        trust,
    };
    let _ = crate::write_json(&format!("extensions_{}", scale.name()), &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propshare_without_optimism_degenerates_like_reciprocity() {
        // PropShare's auction admits only past contributors; remove the
        // optimistic share (α = 0) and nobody can ever make the first
        // move — the system collapses toward pure reciprocity, which is
        // exactly the paper's argument for why every practical mechanism
        // carries an altruistic bootstrap component. Free-riders get
        // (almost) nothing, but so does everyone else.
        let r = run(Scale::Quick, 61);
        let strict = r.variant("PropShare(a=0)", true);
        let stock = r.variant("BitTorrent", true);
        assert!(
            strict.completed_fraction < 0.1,
            "auction-only PropShare cannot bootstrap: {}",
            strict.completed_fraction
        );
        assert!(
            strict.susceptibility < stock.susceptibility * 0.5,
            "and leaks almost nothing: {} vs {}",
            strict.susceptibility,
            stock.susceptibility
        );
        // Regular PropShare (with its optimistic share) works fine.
        assert!(r.variant("PropShare", true).completed_fraction > 0.9);
    }

    #[test]
    fn bittyrant_leaks_less_peer_bandwidth_than_stock() {
        // No deliberate altruism: the strategic client stops funding
        // non-reciprocators, so free-riders capture a smaller share of
        // peer upload bandwidth than under the altruism-carrying stock
        // client.
        let r = run(Scale::Quick, 61);
        let tyrant = r.variant("BitTyrant", true);
        let stock = r.variant("BitTorrent", true);
        assert!(
            tyrant.susceptibility < stock.susceptibility,
            "{} vs {}",
            tyrant.susceptibility,
            stock.susceptibility
        );
    }

    #[test]
    fn all_variants_complete_without_attackers() {
        let r = run(Scale::Quick, 62);
        for variant in ["BitTorrent", "PropShare", "BitTyrant"] {
            assert!(
                r.variant(variant, false).completed_fraction > 0.9,
                "{}: {}",
                variant,
                r.variant(variant, false).completed_fraction
            );
        }
    }

    #[test]
    fn eigentrust_blunts_false_praise() {
        let r = run(Scale::Quick, 63);
        let basic = &r.trust[0];
        let trusted = &r.trust[1];
        assert_eq!(basic.scheme, "basic");
        // With inflated reputations, colluding free-riders capture the
        // reputation-weighted bandwidth share and finish fast; EigenTrust
        // zeroes their scores, so they crawl on the α_R trickle alone.
        match (trusted.fr_mean_completion_s, basic.fr_mean_completion_s) {
            (Some(t), Some(b)) => assert!(
                t > b,
                "EigenTrust should slow colluders: {t} vs {b}"
            ),
            (None, Some(_)) => {}
            other => panic!("unexpected completion pattern {other:?}"),
        }
    }

    #[test]
    fn render_covers_both_sections() {
        let text = run(Scale::Quick, 64).render();
        assert!(text.contains("PropShare"));
        assert!(text.contains("eigentrust"));
    }
}
