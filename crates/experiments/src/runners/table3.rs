//! **Table III** — resources available for free-riding: directly
//! exploitable upload bandwidth and collusion success probabilities.

use coop_incentives::analysis::exchange::{pi_ir, PieceCountDistribution};
use coop_incentives::analysis::freeride::{
    collusion_probability, exploitable_resources, fairtorrent_deficit_bound, FreeRideParams,
};
use coop_incentives::MechanismKind;
use serde::Serialize;

use crate::runners::analytic_capacities;
use crate::table::num;
use crate::{Scale, Table};

/// One algorithm's Table III entry.
#[derive(Clone, Debug, Serialize)]
pub struct Table3Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Exploitable resources in bytes/second.
    pub exploitable_bps: f64,
    /// As a fraction of total capacity.
    pub exploitable_fraction: f64,
    /// Collusion success probability per interaction, if collusion helps.
    pub collusion_probability: Option<f64>,
}

/// The Table III report.
#[derive(Clone, Debug, Serialize)]
pub struct Table3Report {
    /// Total system capacity `Σ U_i` (bytes/second).
    pub total_capacity: f64,
    /// The `π_IR` used for T-Chain's collusion row.
    pub pi_ir: f64,
    /// FairTorrent's `O(log N)` per-peer deficit bound (pieces).
    pub fairtorrent_deficit_bound: f64,
    /// Rows in the paper's order.
    pub rows: Vec<Table3Row>,
}

impl Table3Report {
    /// The row for `kind`.
    pub fn get(&self, kind: MechanismKind) -> &Table3Row {
        self.rows
            .iter()
            .find(|r| r.algorithm == kind.name())
            .expect("all kinds present")
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Algorithm",
            "exploitable (B/s)",
            "fraction of ΣU",
            "collusion probability",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.algorithm.clone(),
                num(r.exploitable_bps),
                num(r.exploitable_fraction),
                match r.collusion_probability {
                    None => "none".to_string(),
                    Some(p) if p >= 1.0 => "1 (always succeeds)".to_string(),
                    Some(p) => num(p),
                },
            ]);
        }
        format!(
            "Table III — resources available for free-riding (ΣU = {:.0} B/s, π_IR = {:.3}, \
             FairTorrent deficit bound ≈ {:.1} pieces)\n{}",
            self.total_capacity,
            self.pi_ir,
            self.fairtorrent_deficit_bound,
            t.render()
        )
    }
}

/// Runs the Table III computation.
pub fn run(scale: Scale, seed: u64) -> Table3Report {
    let caps = analytic_capacities(scale, seed);
    let params = FreeRideParams {
        total_capacity: caps.total(),
        alpha_bt: 0.2,
        alpha_r: 0.1,
        omega: 0.75,
        ..FreeRideParams::default()
    };
    let n = scale.peers() as u64;
    let colluders = n / 5; // the paper's 20% free-riders
    let pieces = match scale {
        Scale::Quick => 32,
        Scale::Default => 128,
        Scale::Paper => 512,
    };
    let dist = PieceCountDistribution::uniform(pieces);
    // Representative mid-swarm piece counts for the π_IR estimate.
    let pi_ir_value = pi_ir(pieces / 2, pieces / 2, pieces, &dist, n as usize);
    let rows = MechanismKind::ALL
        .iter()
        .map(|&kind| {
            let exploitable = exploitable_resources(kind, &params);
            Table3Row {
                algorithm: kind.name().to_string(),
                exploitable_bps: exploitable,
                exploitable_fraction: exploitable / params.total_capacity,
                collusion_probability: collusion_probability(kind, pi_ir_value, colluders, n),
            }
        })
        .collect();
    let report = Table3Report {
        total_capacity: params.total_capacity,
        pi_ir: pi_ir_value,
        fairtorrent_deficit_bound: fairtorrent_deficit_bound(n),
        rows,
    };
    let _ = crate::write_json(&format!("table3_{}", scale.name()), &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_orderings() {
        let r = run(Scale::Quick, 5);
        assert_eq!(r.get(MechanismKind::Reciprocity).exploitable_bps, 0.0);
        assert_eq!(r.get(MechanismKind::TChain).exploitable_bps, 0.0);
        assert!(
            (r.get(MechanismKind::Altruism).exploitable_fraction - 1.0).abs() < 1e-12,
            "altruism exposes everything"
        );
        // BitTorrent exposes α_BT, reputation α_R, FairTorrent 1−ω.
        assert!((r.get(MechanismKind::BitTorrent).exploitable_fraction - 0.2).abs() < 1e-12);
        assert!((r.get(MechanismKind::Reputation).exploitable_fraction - 0.1).abs() < 1e-12);
        assert!((r.get(MechanismKind::FairTorrent).exploitable_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn collusion_column_matches_paper() {
        let r = run(Scale::Default, 5);
        assert_eq!(r.get(MechanismKind::Reciprocity).collusion_probability, None);
        assert_eq!(r.get(MechanismKind::BitTorrent).collusion_probability, None);
        assert_eq!(
            r.get(MechanismKind::Reputation).collusion_probability,
            Some(1.0)
        );
        let tc = r
            .get(MechanismKind::TChain)
            .collusion_probability
            .expect("T-Chain colludes via third parties");
        assert!(tc < 0.05, "π_IR·m(m−1)/(N(N−1)) ≪ 1, got {tc}");
    }

    #[test]
    fn render_contains_bound() {
        let text = run(Scale::Quick, 1).render();
        assert!(text.contains("deficit bound"));
        assert!(text.contains("always succeeds"));
    }
}
