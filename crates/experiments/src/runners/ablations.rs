//! Ablations beyond the paper's figures: design-choice sweeps DESIGN.md
//! calls out.
//!
//! * `α_BT` sweep — Proposition 2's threshold (Eq. 8) in simulation: more
//!   optimistic unchoking raises BitTorrent's bootstrap speed *and* its
//!   susceptibility (Table III says exploitable resources are `α_BT ΣU`).
//! * Free-rider-fraction sweep — how susceptibility scales with the share
//!   of attackers for a susceptible (altruism) and a resistant (T-Chain)
//!   algorithm.
//! * Reputation false-praise attack — the collusion Table III rates as
//!   probability 1, which the paper discusses but does not simulate.
//! * Whitewash-interval sweep — FairTorrent's attack knob.

use coop_attacks::AttackPlan;
use coop_incentives::MechanismKind;
use serde::Serialize;

use crate::exec::{backoff_ms, BatchError, Executor, FailureKind, JobFailure};
use crate::runners::run_sim;
use crate::table::num;
use crate::{Scale, Table};

/// One sweep sample.
#[derive(Clone, Debug, Serialize)]
pub struct SweepPoint {
    /// Swept parameter value.
    pub x: f64,
    /// Mean completion time (seconds) of compliant peers.
    pub mean_completion_s: Option<f64>,
    /// Mean bootstrap time (seconds).
    pub mean_bootstrap_s: Option<f64>,
    /// Cumulative susceptibility.
    pub susceptibility: f64,
    /// Fairness `F`.
    pub fairness_f: f64,
}

/// The ablation report.
#[derive(Clone, Debug, Serialize)]
pub struct AblationReport {
    /// Scale used.
    pub scale: String,
    /// BitTorrent `α_BT` sweep under 20 % simple free-riding.
    pub alpha_bt_sweep: Vec<SweepPoint>,
    /// Altruism free-rider fraction sweep.
    pub altruism_fraction_sweep: Vec<SweepPoint>,
    /// T-Chain free-rider fraction sweep (with collusion).
    pub tchain_fraction_sweep: Vec<SweepPoint>,
    /// Reputation under false praise vs simple free-riding, 20 % attackers:
    /// `[simple, false_praise]`.
    pub reputation_false_praise: Vec<SweepPoint>,
    /// FairTorrent whitewash interval sweep (rounds).
    pub whitewash_sweep: Vec<SweepPoint>,
    /// Piece-selection strategy sensitivity (x = 0 rarest-first, 1 random,
    /// 2 sequential) under the altruism mechanism.
    pub piece_strategy_sweep: Vec<SweepPoint>,
    /// Arrival-model sensitivity for the reputation algorithm: x = 0 flash
    /// crowd (the paper's extreme case), x = 1 Poisson arrivals into a
    /// warmed-up system.
    pub arrival_model_sweep: Vec<SweepPoint>,
}

impl AblationReport {
    /// Renders the report.
    pub fn render(&self) -> String {
        let section = |title: &str, xlabel: &str, points: &[SweepPoint]| {
            let mut t = Table::new(vec![
                xlabel,
                "mean ct (s)",
                "mean bootstrap (s)",
                "susceptibility",
                "F",
            ]);
            for p in points {
                t.row(vec![
                    num(p.x),
                    p.mean_completion_s.map_or("n/a".into(), num),
                    p.mean_bootstrap_s.map_or("n/a".into(), num),
                    num(p.susceptibility),
                    num(p.fairness_f),
                ]);
            }
            format!("{title}\n{}", t.render())
        };
        [
            section(
                "Ablation A — BitTorrent α_BT sweep (20% simple free-riders)",
                "alpha_bt",
                &self.alpha_bt_sweep,
            ),
            section(
                "Ablation B — altruism vs free-rider fraction",
                "fraction",
                &self.altruism_fraction_sweep,
            ),
            section(
                "Ablation C — T-Chain vs free-rider fraction (collusion)",
                "fraction",
                &self.tchain_fraction_sweep,
            ),
            section(
                "Ablation D — reputation: simple free-riding vs false praise (x = 0/1)",
                "false praise",
                &self.reputation_false_praise,
            ),
            section(
                "Ablation E — FairTorrent whitewash interval",
                "interval (rounds)",
                &self.whitewash_sweep,
            ),
            section(
                "Ablation F — piece selection (0 = rarest-first, 1 = random, 2 = sequential)",
                "strategy",
                &self.piece_strategy_sweep,
            ),
            section(
                "Ablation G — reputation bootstrap vs arrival model (0 = flash crowd, 1 = Poisson)",
                "arrival model",
                &self.arrival_model_sweep,
            ),
        ]
        .join("\n")
    }
}

fn point(x: f64, result: &coop_swarm::SimResult) -> SweepPoint {
    SweepPoint {
        x,
        mean_completion_s: result.mean_completion_time(),
        mean_bootstrap_s: result.mean_bootstrap_time(),
        susceptibility: result.final_susceptibility(),
        fairness_f: result.final_fairness_stat(),
    }
}

/// Runs all ablations with machine-sized parallelism.
pub fn run(scale: Scale, seed: u64) -> AblationReport {
    run_with(scale, seed, &Executor::default())
}

/// Runs all ablations on the given executor. Each sweep's points are
/// independent simulations, so they fan out as one batch per sweep;
/// results (and the JSON artifact) are identical for any worker count.
pub fn run_with(scale: Scale, seed: u64, executor: &Executor) -> AblationReport {
    try_run_with(scale, seed, executor).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_with`] under the executor's panic-isolation/retry policy: a sweep
/// point that fails every attempt yields `Err` naming its sweep, after
/// every healthy point has still run. No artifact is written on failure.
///
/// # Errors
///
/// Returns the failed points when any point fails every attempt.
pub fn try_run_with(
    scale: Scale,
    seed: u64,
    executor: &Executor,
) -> Result<AblationReport, BatchError> {
    let mut failures: Vec<JobFailure> = Vec::new();
    let mut total = 0usize;
    // Converts one sweep's isolated runs into points, recording each
    // failed point under the sweep's mechanism label.
    let mut take = |label: &str, runs: Vec<Result<SweepPoint, String>>| -> Vec<SweepPoint> {
        total += runs.len();
        runs.into_iter()
            .enumerate()
            .filter_map(|(slot, run)| match run {
                Ok(point) => Some(point),
                Err(message) => {
                    failures.push(JobFailure {
                        slot,
                        mechanism: label.to_string(),
                        peers: scale.peers(),
                        seed,
                        attempts: executor.retries() + 1,
                        kind: FailureKind::Panic,
                        message,
                        backoff_ms: (0..executor.retries())
                            .map(|a| backoff_ms(slot as u64, a))
                            .collect(),
                    });
                    None
                }
            })
            .collect()
    };

    // A: α_BT sweep. The mechanism parameter lives in the swarm config.
    let alpha_bt_sweep = take(
        "BitTorrent (alpha_bt sweep)",
        executor.try_map(&[0.0, 0.1, 0.2, 0.4], |_, &alpha| {
            let mut config = scale.config(seed);
            config.mechanism_params.alpha_bt = alpha;
            let mix = coop_incentives::analysis::capacity::CapacityClassMix::paper_default();
            let population = coop_swarm::flash_crowd_with(
                &config,
                scale.peers(),
                MechanismKind::BitTorrent,
                seed,
                &mix,
                scale.arrival_window(),
            );
            let result = coop_swarm::Simulation::builder(config)
                .population(population)
                .attack_plan(AttackPlan::simple(0.2))
                .build()
                .expect("valid config")
                .run();
            point(alpha, &result)
        }),
    );

    // B & C: free-rider fraction sweeps.
    let fractions = [0.0, 0.1, 0.2, 0.4];
    let altruism_fraction_sweep = take(
        "Altruism (free-rider fraction sweep)",
        executor.try_map(&fractions, |_, &f| {
            let result = run_sim(
                MechanismKind::Altruism,
                scale,
                Some(&AttackPlan::simple(f)),
                None,
                None,
                seed,
            );
            point(f, &result)
        }),
    );
    let tchain_fraction_sweep = take(
        "T-Chain (free-rider fraction sweep)",
        executor.try_map(&fractions, |_, &f| {
            let result = run_sim(
                MechanismKind::TChain,
                scale,
                Some(&AttackPlan::most_effective(MechanismKind::TChain, f)),
                None,
                None,
                seed,
            );
            point(f, &result)
        }),
    );

    // D: reputation false praise.
    let praise_plans = [
        (0.0, AttackPlan::simple(0.2)),
        (1.0, AttackPlan::false_praise(0.2)),
    ];
    let reputation_false_praise = take(
        "Reputation (false-praise ablation)",
        executor.try_map(&praise_plans, |_, &(x, ref plan)| {
            point(
                x,
                &run_sim(MechanismKind::Reputation, scale, Some(plan), None, None, seed),
            )
        }),
    );

    // E: whitewash interval sweep.
    let whitewash_sweep = take(
        "FairTorrent (whitewash interval sweep)",
        executor.try_map(&[5u64, 10, 20, 40], |_, &w| {
            let mut plan = AttackPlan::simple(0.2);
            plan.whitewash_interval = Some(w);
            let result = run_sim(MechanismKind::FairTorrent, scale, Some(&plan), None, None, seed);
            point(w as f64, &result)
        }),
    );

    // F: the paper assumes local-rarest-first selection; quantify what the
    // alternatives cost.
    let strategies = [
        coop_swarm::PieceStrategy::RarestFirst,
        coop_swarm::PieceStrategy::Random,
        coop_swarm::PieceStrategy::Sequential,
    ];
    let piece_strategy_sweep = take(
        "Altruism (piece-strategy sweep)",
        executor.try_map(&strategies, |i, &strategy| {
            let mut config = scale.config(seed);
        config.piece_strategy = strategy;
        let mix = coop_incentives::analysis::capacity::CapacityClassMix::paper_default();
        let population = coop_swarm::flash_crowd_with(
            &config,
            scale.peers(),
            MechanismKind::Altruism,
            seed,
            &mix,
            scale.arrival_window(),
        );
        let result = coop_swarm::Simulation::builder(config)
            .population(population)
            .build()
            .expect("valid config")
            .run();
        point(i as f64, &result)
        }),
    );

    // G: the paper's flash crowd is the worst case for reputation
    // bootstrapping (everyone has zero reputation at once). Staggered
    // Poisson arrivals let newcomers land in a system with established
    // reputations.
    let arrival_model_sweep = take(
        "Reputation (arrival-model ablation)",
        executor.try_map(&[false, true], |_, &staggered| {
            let config = scale.config(seed);
            let mix = coop_incentives::analysis::capacity::CapacityClassMix::paper_default();
            let population = if staggered {
                coop_swarm::staggered_arrivals(
                    &config,
                    scale.peers(),
                    MechanismKind::Reputation,
                    seed,
                    &mix,
                    coop_des::Duration::from_millis(500),
                )
            } else {
                coop_swarm::flash_crowd_with(
                    &config,
                    scale.peers(),
                    MechanismKind::Reputation,
                    seed,
                    &mix,
                    scale.arrival_window(),
                )
            };
            let result = coop_swarm::Simulation::builder(config)
                .population(population)
                .build()
                .expect("valid config")
                .run();
            point(if staggered { 1.0 } else { 0.0 }, &result)
        }),
    );

    if !failures.is_empty() {
        return Err(BatchError {
            figure: "ablations".to_string(),
            total,
            failures,
        });
    }
    let report = AblationReport {
        scale: scale.name().to_string(),
        alpha_bt_sweep,
        altruism_fraction_sweep,
        tchain_fraction_sweep,
        reputation_false_praise,
        whitewash_sweep,
        piece_strategy_sweep,
        arrival_model_sweep,
    };
    let _ = crate::write_json(&format!("ablations_{}", scale.name()), &report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn susceptibility_grows_with_freerider_fraction_for_altruism() {
        let r = run(Scale::Quick, 51);
        let s: Vec<f64> = r
            .altruism_fraction_sweep
            .iter()
            .map(|p| p.susceptibility)
            .collect();
        assert_eq!(s[0], 0.0, "no free-riders, no susceptibility");
        assert!(s[2] > s[1] * 0.9, "more attackers, more leakage: {s:?}");
        assert!(s[3] > s[1], "{s:?}");
    }

    #[test]
    fn tchain_stays_resistant_across_fractions() {
        let r = run(Scale::Quick, 52);
        for p in &r.tchain_fraction_sweep {
            // Collusion scales as m(m−1)/(N(N−1)); even at 40% attackers
            // the leak must stay well below the attacker share.
            assert!(
                p.susceptibility < (p.x * 0.5).max(0.02),
                "fraction {}: susceptibility {}",
                p.x,
                p.susceptibility
            );
        }
    }

    #[test]
    fn false_praise_beats_simple_freeriding_against_reputation() {
        let r = run(Scale::Quick, 53);
        let simple = r.reputation_false_praise[0].susceptibility;
        let praise = r.reputation_false_praise[1].susceptibility;
        assert!(
            praise > simple,
            "false praise should extract more: {simple} vs {praise}"
        );
    }

    #[test]
    fn render_covers_all_sections() {
        let text = run(Scale::Quick, 54).render();
        for tag in [
            "Ablation A",
            "Ablation B",
            "Ablation C",
            "Ablation D",
            "Ablation E",
            "Ablation F",
            "Ablation G",
        ] {
            assert!(text.contains(tag), "{tag}");
        }
    }

    #[test]
    fn staggered_arrivals_complete_and_bootstrap() {
        let r = run(Scale::Quick, 56);
        for p in &r.arrival_model_sweep {
            assert!(
                p.mean_completion_s.is_some(),
                "reputation completes under arrival model {}",
                p.x
            );
        }
        // Both arrival models produce finite, positive bootstrap times.
        for p in &r.arrival_model_sweep {
            let b = p.mean_bootstrap_s.expect("bootstraps");
            assert!(b > 0.0 && b.is_finite());
        }
    }

    #[test]
    fn all_piece_strategies_complete_but_rarest_first_is_competitive() {
        let r = run(Scale::Quick, 55);
        let rarest = r.piece_strategy_sweep[0].mean_completion_s.unwrap();
        for p in &r.piece_strategy_sweep {
            let ct = p
                .mean_completion_s
                .expect("every strategy completes under altruism");
            assert!(
                rarest <= ct * 1.25,
                "rarest-first should not lose badly to strategy {}: {rarest} vs {ct}",
                p.x
            );
        }
    }
}
