//! **Fig. 2** — fairness and efficiency ranking of the six algorithms in
//! the idealized scenario (Corollary 1).
//!
//! The figure orders the algorithms along two axes: fairness (T-Chain =
//! FairTorrent best; reciprocity's fairness undefined because nothing
//! transfers) and efficiency (altruism best, then BitTorrent and
//! reputation, then T-Chain/FairTorrent, reciprocity worst).

use coop_incentives::analysis::equilibrium::{equilibrium_summary, EquilibriumParams};
use coop_incentives::MechanismKind;
use serde::Serialize;

use crate::runners::analytic_capacities;
use crate::table::num;
use crate::{Scale, Table};

/// One algorithm's idealized (F, E) point.
#[derive(Clone, Debug, Serialize)]
pub struct Fig2Row {
    /// Algorithm name.
    pub algorithm: String,
    /// The paper's fairness statistic `F` (0 = perfectly fair).
    pub fairness_f: f64,
    /// The paper's efficiency `E` (average unit-file download time; lower
    /// is better).
    pub efficiency_e: f64,
    /// Rank by fairness (1 = most fair; ties share a rank).
    pub fairness_rank: usize,
    /// Rank by efficiency (1 = most efficient).
    pub efficiency_rank: usize,
}

/// The Fig. 2 report.
#[derive(Clone, Debug, Serialize)]
pub struct Fig2Report {
    /// Scale used for the capacity sample.
    pub scale: String,
    /// Rows in the paper's order.
    pub rows: Vec<Fig2Row>,
}

impl Fig2Report {
    /// The row for `kind`.
    pub fn get(&self, kind: MechanismKind) -> &Fig2Row {
        self.rows
            .iter()
            .find(|r| r.algorithm == kind.name())
            .expect("all kinds present")
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Algorithm",
            "F (fairness, 0=best)",
            "E (efficiency, lower=better)",
            "fair rank",
            "eff rank",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.algorithm.clone(),
                num(r.fairness_f),
                num(r.efficiency_e),
                r.fairness_rank.to_string(),
                r.efficiency_rank.to_string(),
            ]);
        }
        format!(
            "Fig. 2 — idealized fairness/efficiency ranking ({} scale)\n{}",
            self.scale,
            t.render()
        )
    }
}

fn ranks(values: &[f64]) -> Vec<usize> {
    // Rank 1 = smallest value; exact ties share a rank.
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN ranks"));
    sorted.dedup();
    values
        .iter()
        .map(|v| sorted.iter().position(|s| s == v).expect("present") + 1)
        .collect()
}

/// Runs the Fig. 2 computation.
pub fn run(scale: Scale, seed: u64) -> Fig2Report {
    let caps = analytic_capacities(scale, seed);
    let params = EquilibriumParams::default();
    let summaries: Vec<(MechanismKind, f64, f64)> = MechanismKind::ALL
        .iter()
        .map(|&k| {
            let s = equilibrium_summary(k, &caps, &params);
            (k, s.fairness, s.efficiency)
        })
        .collect();
    let f_ranks = ranks(&summaries.iter().map(|&(_, f, _)| f).collect::<Vec<_>>());
    let e_ranks = ranks(&summaries.iter().map(|&(_, _, e)| e).collect::<Vec<_>>());
    let rows = summaries
        .iter()
        .zip(f_ranks.iter().zip(&e_ranks))
        .map(|(&(k, f, e), (&fr, &er))| Fig2Row {
            algorithm: k.name().to_string(),
            fairness_f: f,
            efficiency_e: e,
            fairness_rank: fr,
            efficiency_rank: er,
        })
        .collect();
    let report = Fig2Report {
        scale: scale.name().to_string(),
        rows,
    };
    let _ = crate::write_json(&format!("fig2_{}", scale.name()), &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary1_ordering_holds() {
        let r = run(Scale::Quick, 11);
        // T-Chain and FairTorrent achieve optimal fairness.
        assert_eq!(r.get(MechanismKind::TChain).fairness_f, 0.0);
        assert_eq!(r.get(MechanismKind::FairTorrent).fairness_f, 0.0);
        // Altruism: most efficient, least fair among transferring
        // algorithms.
        let alt = r.get(MechanismKind::Altruism);
        for kind in [
            MechanismKind::TChain,
            MechanismKind::FairTorrent,
            MechanismKind::BitTorrent,
            MechanismKind::Reputation,
        ] {
            assert!(alt.efficiency_e < r.get(kind).efficiency_e, "{kind}");
            assert!(alt.fairness_f >= r.get(kind).fairness_f, "{kind}");
        }
        // BitTorrent and reputation beat T-Chain/FairTorrent on efficiency
        // in the ideal case (the surprising part of Corollary 1).
        assert!(
            r.get(MechanismKind::BitTorrent).efficiency_e
                < r.get(MechanismKind::TChain).efficiency_e
        );
        // Reciprocity transfers nothing.
        assert!(r.get(MechanismKind::Reciprocity).efficiency_e.is_infinite());
    }

    #[test]
    fn ranks_share_ties() {
        assert_eq!(ranks(&[1.0, 2.0, 1.0]), vec![1, 2, 1]);
        assert_eq!(ranks(&[3.0]), vec![1]);
    }

    #[test]
    fn render_is_complete() {
        let text = run(Scale::Quick, 1).render();
        assert!(text.contains("T-Chain"));
        assert!(text.contains("eff rank"));
    }
}
