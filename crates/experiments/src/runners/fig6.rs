//! **Fig. 6** — the Fig. 5 attacks plus the large-view exploit: free-riders
//! connect to the entire swarm, multiplying their exposure to altruistic
//! and optimistic-unchoke bandwidth.

use coop_attacks::AttackPlan;

use crate::exec::{BatchError, Executor};
use crate::runners::fig4::{
    run_figure, run_figure_traced, try_replicate_traced, try_run_figure_traced, SimFigureReport,
};
use crate::runners::fig5::FREERIDER_FRACTION;
use crate::telemetry::{BatchTrace, TelemetryOpts};
use crate::{OutputDir, Scale};

/// The attack label Fig. 6 runs carry in their telemetry manifest.
pub(crate) const ATTACK_LABEL: &str =
    "most-effective-per-mechanism + large-view (20% free-riders)";

/// Runs Fig. 6 with machine-sized parallelism.
pub fn run(scale: Scale, seed: u64) -> SimFigureReport {
    run_with(scale, seed, &Executor::default())
}

/// Runs Fig. 6 on the given executor.
pub fn run_with(scale: Scale, seed: u64, executor: &Executor) -> SimFigureReport {
    run_figure(
        "fig6",
        scale,
        seed,
        |kind| Some(AttackPlan::with_large_view(kind, FREERIDER_FRACTION)),
        executor,
    )
}

/// Runs Fig. 6 with explicit telemetry options and artifact directory;
/// see [`fig4::run_with_telemetry`](crate::runners::fig4::run_with_telemetry)
/// for the guarantees.
pub fn run_with_telemetry(
    scale: Scale,
    seed: u64,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (SimFigureReport, Option<BatchTrace>) {
    run_figure_traced(
        "fig6",
        scale,
        seed,
        |kind| Some(AttackPlan::with_large_view(kind, FREERIDER_FRACTION)),
        executor,
        opts,
        out,
        ATTACK_LABEL,
    )
}

/// [`run_with_telemetry`] returning batch failures as `Err` instead of
/// panicking (the crash-safe CLI path).
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
pub fn try_run_with_telemetry(
    scale: Scale,
    seed: u64,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(SimFigureReport, Option<BatchTrace>), BatchError> {
    try_run_figure_traced(
        "fig6",
        scale,
        seed,
        |kind| Some(AttackPlan::with_large_view(kind, FREERIDER_FRACTION)),
        executor,
        opts,
        out,
        ATTACK_LABEL,
    )
}

/// Runs Fig. 6 over several seeds and aggregates.
pub fn run_replicated(scale: Scale, seeds: &[u64]) -> crate::runners::fig4::ReplicatedReport {
    run_replicated_with(scale, seeds, &Executor::default())
}

/// Runs Fig. 6 over several seeds on the given executor.
pub fn run_replicated_with(
    scale: Scale,
    seeds: &[u64],
    executor: &Executor,
) -> crate::runners::fig4::ReplicatedReport {
    crate::runners::fig4::replicate(
        "fig6",
        scale,
        seeds,
        |kind| Some(AttackPlan::with_large_view(kind, FREERIDER_FRACTION)),
        executor,
    )
}

/// Runs replicated Fig. 6 with explicit telemetry options and artifact
/// directory.
pub fn run_replicated_with_telemetry(
    scale: Scale,
    seeds: &[u64],
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (crate::runners::fig4::ReplicatedReport, Option<BatchTrace>) {
    crate::runners::fig4::replicate_traced(
        "fig6",
        scale,
        seeds,
        |kind| Some(AttackPlan::with_large_view(kind, FREERIDER_FRACTION)),
        executor,
        opts,
        out,
        ATTACK_LABEL,
    )
}

/// [`run_replicated_with_telemetry`] returning batch failures as `Err`
/// instead of panicking (the crash-safe CLI path).
///
/// # Errors
///
/// Returns the batch's failures when any job fails every attempt.
pub fn try_run_replicated_with_telemetry(
    scale: Scale,
    seeds: &[u64],
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(crate::runners::fig4::ReplicatedReport, Option<BatchTrace>), BatchError> {
    try_replicate_traced(
        "fig6",
        scale,
        seeds,
        |kind| Some(AttackPlan::with_large_view(kind, FREERIDER_FRACTION)),
        executor,
        opts,
        out,
        ATTACK_LABEL,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runners::fig5;
    use coop_incentives::MechanismKind;

    #[test]
    fn large_view_increases_susceptibility() {
        let seed = 41;
        let base = fig5::run(Scale::Quick, seed);
        let lv = run(Scale::Quick, seed);
        // The large-view exploit increases (or at least does not reduce)
        // what free-riders extract from the susceptible algorithms, and
        // altruism/FairTorrent/BitTorrent leak visibly more at their peak.
        let mut strictly_higher = 0;
        for kind in [
            MechanismKind::Altruism,
            MechanismKind::BitTorrent,
            MechanismKind::FairTorrent,
            MechanismKind::Reputation,
        ] {
            let before = base.get(kind).susceptibility;
            let after = lv.get(kind).susceptibility;
            assert!(
                after > before * 0.8,
                "{kind}: large view should not materially reduce leakage ({before} → {after})"
            );
            if after > before * 1.1 {
                strictly_higher += 1;
            }
        }
        assert!(
            strictly_higher >= 2,
            "large view should visibly amplify at least two algorithms"
        );
    }

    #[test]
    fn tchain_remains_near_immune_under_large_view() {
        let r = run(Scale::Quick, 42);
        assert!(
            r.get(MechanismKind::TChain).susceptibility < 0.06,
            "{}",
            r.get(MechanismKind::TChain).susceptibility
        );
        assert_eq!(r.get(MechanismKind::Reciprocity).susceptibility, 0.0);
    }

    #[test]
    fn tchain_beats_bittorrent_on_fairness_under_large_view() {
        // The paper's Fig. 6 observation: with the large-view exploit,
        // T-Chain is visibly more fair (and efficient) than BitTorrent.
        let r = run(Scale::Quick, 43);
        assert!(
            r.get(MechanismKind::TChain).fairness_f
                < r.get(MechanismKind::BitTorrent).fairness_f
        );
    }
}
