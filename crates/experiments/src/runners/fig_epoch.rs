//! **fig-epoch** — the settlement-cadence sweep: the epoch-settled
//! mechanism re-run over an epoch-length ladder, bracketed by the six
//! per-transfer baselines, all under the same free-ride attack.
//!
//! The axis interpolates between the two cadence limits the analysis
//! pins: `epoch_rounds → 0` settles every round (FairTorrent-shaped
//! fairness), `epoch_rounds → ∞` never settles within the run
//! (altruism-shaped susceptibility). Each epoch row carries the
//! closed-form open-epoch fraction `λ = e / (e + horizon)` from
//! [`EquilibriumParams::epoch_open_fraction`] next to the simulated
//! fairness and susceptibility, so the artifact is the sim-vs-theory
//! comparison in one table.
//!
//! Outputs follow the sweep convention: `figepoch_sweep_{scale}.csv` and
//! `figepoch_{scale}.json` hold only deterministic columns and are
//! byte-identical for any `--jobs`/`--shards` count.

use coop_attacks::AttackPlan;
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::analysis::equilibrium::EquilibriumParams;
use coop_incentives::MechanismKind;
use coop_swarm::flash_crowd_with;
use coop_telemetry::{profile::phase, Profiler, Recorder, Stopwatch};
use serde::Serialize;

use crate::exec::{backoff_ms, BatchError, Executor, FailureKind, JobFailure};
use crate::runners::fig4::emit_run_outputs;
use crate::table::num;
use crate::telemetry::{BatchTrace, JobTrace, TelemetryOpts};
use crate::{OutputDir, Scale, Table};

/// The default epoch-length ladder, log-spaced across the cadence range:
/// 1 round (every-round settlement, the FairTorrent-shaped limit) up to
/// 256 rounds (longer than a quick run, the altruism-shaped limit).
pub const EPOCH_ROUNDS: [u64; 5] = [1, 4, 16, 64, 256];

/// Free-riding attacker fraction every cell runs under — the sweep's
/// whole point is the susceptibility axis, so the attack is always on.
pub const ATTACK_FRACTION: f64 = 0.2;

/// One deterministic cell of the sweep.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct EpochRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Settlement epoch in rounds; `None` for the per-transfer baselines.
    pub epoch_rounds: Option<u64>,
    /// Closed-form open-epoch fraction `λ` for this epoch length (`None`
    /// for the baselines).
    pub predicted_open_fraction: Option<f64>,
    /// Fraction of compliant peers that completed the download.
    pub completed_fraction: f64,
    /// Mean completion time (seconds) over completed compliant peers.
    pub mean_completion_s: Option<f64>,
    /// Final fairness statistic `F` (0 = perfectly fair).
    pub fairness_f: f64,
    /// Cumulative susceptibility (free-rider share of peer upload bytes).
    pub susceptibility: f64,
    /// Whether the run ended in an unsatisfiable (stalled) swarm.
    pub stalled: bool,
}

/// The sweep report: baselines first (in [`MechanismKind::ALL`] order),
/// then one epoch row per ladder rung, ascending.
#[derive(Clone, Debug, Serialize)]
pub struct EpochReport {
    /// Artifact name ("fig-epoch").
    pub figure: String,
    /// Scale used.
    pub scale: String,
    /// Seed used.
    pub seed: u64,
    /// Free-riding attacker fraction every cell ran under.
    pub attack_fraction: f64,
    /// Rows: six baselines, then the epoch ladder.
    pub rows: Vec<EpochRow>,
}

impl EpochReport {
    /// The baseline row for `kind`.
    pub fn baseline(&self, kind: MechanismKind) -> &EpochRow {
        self.rows
            .iter()
            .find(|r| r.epoch_rounds.is_none() && r.algorithm == kind.name())
            .expect("all baselines present")
    }

    /// The epoch-settled row for one ladder rung.
    pub fn epoch(&self, rounds: u64) -> &EpochRow {
        self.rows
            .iter()
            .find(|r| r.epoch_rounds == Some(rounds))
            .expect("all ladder rungs present")
    }

    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Algorithm",
            "epoch",
            "λ (theory)",
            "completed",
            "mean ct (s)",
            "F",
            "susceptibility",
            "stalled",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.algorithm.clone(),
                r.epoch_rounds.map_or("-".into(), |e| e.to_string()),
                r.predicted_open_fraction.map_or("-".into(), num),
                num(r.completed_fraction),
                r.mean_completion_s.map_or("n/a".into(), num),
                num(r.fairness_f),
                num(r.susceptibility),
                r.stalled.to_string(),
            ]);
        }
        format!(
            "fig-epoch — settlement-cadence sweep ({} scale, seed {}, {:.0}% free-riders)\n{}",
            self.scale,
            self.seed,
            self.attack_fraction * 100.0,
            t.render()
        )
    }
}

/// One cell of the sweep: a baseline mechanism, or the epoch-settled
/// mechanism at one ladder rung.
#[derive(Clone, Copy, Debug)]
enum Cell {
    Baseline(MechanismKind),
    Epoch(u64),
}

impl Cell {
    fn kind(self) -> MechanismKind {
        match self {
            Cell::Baseline(kind) => kind,
            Cell::Epoch(_) => MechanismKind::EpochSettlement,
        }
    }

    fn label(self) -> String {
        match self {
            Cell::Baseline(kind) => kind.name().to_string(),
            Cell::Epoch(e) => format!("{}@{e}", MechanismKind::EpochSettlement.name()),
        }
    }
}

/// Runs the default sweep with machine-sized parallelism and no telemetry.
pub fn run(scale: Scale, seed: u64) -> EpochReport {
    let (report, _) = run_with_telemetry(
        scale,
        seed,
        None,
        &Executor::default(),
        &TelemetryOpts::disabled(),
        &OutputDir::default_dir(),
    );
    report
}

/// Runs the cadence sweep: the six baselines plus the epoch-settled
/// mechanism at every rung of `epochs` (default [`EPOCH_ROUNDS`]), all
/// under a [`ATTACK_FRACTION`] free-ride attack. Cells fan out across
/// `executor`; artifacts are written sequentially from slot-ordered
/// results, so they are byte-identical for any worker count.
pub fn run_with_telemetry(
    scale: Scale,
    seed: u64,
    epochs: Option<&[u64]>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> (EpochReport, Option<BatchTrace>) {
    try_run_with_telemetry(scale, seed, epochs, executor, opts, out)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_with_telemetry`] with per-cell panic isolation: a cell that
/// fails every attempt yields `Err` naming it, after every healthy cell
/// has still run. No artifacts are written on failure.
///
/// # Errors
///
/// Returns the batch's failures when any cell fails every attempt.
pub fn try_run_with_telemetry(
    scale: Scale,
    seed: u64,
    epochs: Option<&[u64]>,
    executor: &Executor,
    opts: &TelemetryOpts,
    out: &OutputDir,
) -> Result<(EpochReport, Option<BatchTrace>), BatchError> {
    let epochs: Vec<u64> = epochs.unwrap_or(&EPOCH_ROUNDS).to_vec();
    let mut cells: Vec<Cell> = MechanismKind::ALL.iter().map(|&k| Cell::Baseline(k)).collect();
    cells.extend(epochs.iter().map(|&e| Cell::Epoch(e)));
    let plan = AttackPlan::simple(ATTACK_FRACTION);
    let recorder_config = opts.is_enabled().then(|| opts.recorder_config());
    let shards = executor.shards();
    let sim_clock = Stopwatch::start();
    let runs = executor.try_map(&cells, |slot, &cell| {
        let cell_clock = Stopwatch::start();
        let recorder = match &recorder_config {
            Some(config) => Recorder::enabled(config.clone()),
            None => Recorder::disabled(),
        };
        let mut profiler = if opts.profile_due(slot) {
            Profiler::enabled()
        } else {
            Profiler::disabled()
        };
        let build_t = profiler.start();
        let mut config = scale.config(seed);
        if let Cell::Epoch(e) = cell {
            config.mechanism_params.epoch_rounds = e;
        }
        let mix = CapacityClassMix::paper_default();
        let population = flash_crowd_with(
            &config,
            scale.peers(),
            cell.kind(),
            seed,
            &mix,
            scale.arrival_window(),
        );
        let sim = coop_swarm::Simulation::builder(config)
            .population(population)
            .recorder(recorder)
            .attack_plan(plan)
            .shards(shards)
            .build()
            .expect("scale configs validate");
        profiler.stop(phase::EXEC_BUILD, build_t);
        let (result, report, profile) = sim.with_profiler(profiler).run_profiled();
        let trace = JobTrace {
            slot,
            label: cell.label(),
            seed,
            wall_ms: cell_clock.elapsed_ms(),
            slow: false,
            // `try_map` retries opaquely; per-attempt counts are only
            // tracked for `SimJob` batches.
            retries: 0,
            peers: scale.peers() as u64,
            report,
            profile: opts.profile_due(slot).then_some(profile),
        };
        (result, trace)
    });
    let sim_ms = sim_clock.elapsed_ms();
    let write_clock = Stopwatch::start();

    let failures: Vec<JobFailure> = cells
        .iter()
        .zip(&runs)
        .enumerate()
        .filter_map(|(slot, (&cell, run))| {
            run.as_ref().err().map(|message| JobFailure {
                slot,
                mechanism: cell.label(),
                peers: scale.peers(),
                seed,
                attempts: executor.retries() + 1,
                kind: FailureKind::Panic,
                message: message.clone(),
                backoff_ms: (0..executor.retries())
                    .map(|a| backoff_ms(slot as u64, a))
                    .collect(),
            })
        })
        .collect();
    if !failures.is_empty() {
        return Err(BatchError {
            figure: "fig-epoch".to_string(),
            total: cells.len(),
            failures,
        });
    }

    let mut rows = Vec::with_capacity(cells.len());
    let mut traces = Vec::with_capacity(cells.len());
    for (&cell, run) in cells.iter().zip(runs) {
        let (result, trace) = run.expect("failures were returned above");
        let (epoch_rounds, lambda) = match cell {
            Cell::Baseline(_) => (None, None),
            Cell::Epoch(e) => {
                let params = EquilibriumParams {
                    epoch_rounds: e as f64,
                    ..EquilibriumParams::default()
                };
                (Some(e), Some(params.epoch_open_fraction()))
            }
        };
        rows.push(EpochRow {
            algorithm: cell.kind().name().to_string(),
            epoch_rounds,
            predicted_open_fraction: lambda,
            completed_fraction: result.completed_fraction(),
            mean_completion_s: result.mean_completion_time(),
            fairness_f: result.final_fairness_stat(),
            susceptibility: result.final_susceptibility(),
            stalled: result.stalled,
        });
        traces.push(trace);
    }
    let report = EpochReport {
        figure: "fig-epoch".to_string(),
        scale: scale.name().to_string(),
        seed,
        attack_fraction: ATTACK_FRACTION,
        rows,
    };

    let csv_rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.clone(),
                r.epoch_rounds.map_or(String::new(), |e| e.to_string()),
                r.predicted_open_fraction
                    .map_or(String::new(), |v| format!("{v}")),
                format!("{}", r.completed_fraction),
                r.mean_completion_s.map_or(String::new(), |v| format!("{v}")),
                format!("{}", r.fairness_f),
                format!("{}", r.susceptibility),
                r.stalled.to_string(),
            ]
        })
        .collect();
    let _ = out.csv_rows(
        &format!("figepoch_sweep_{}", scale.name()),
        &[
            "algorithm",
            "epoch_rounds",
            "predicted_open_fraction",
            "completed_fraction",
            "mean_completion_s",
            "fairness_f",
            "susceptibility",
            "stalled",
        ],
        &csv_rows,
    );
    let _ = out.json(&format!("figepoch_{}", scale.name()), &report);

    let trace = recorder_config.is_some().then(|| {
        let mut trace = BatchTrace::new(traces);
        trace.push_phase("simulate", sim_ms);
        trace.push_phase("write_artifacts", write_clock.elapsed_ms());
        emit_run_outputs(
            "fig-epoch",
            &trace,
            opts,
            out,
            scale,
            seed,
            1,
            executor.jobs() as u64,
            &format!("freeride({ATTACK_FRACTION})"),
        );
        trace
    });
    Ok((report, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> OutputDir {
        OutputDir::new(std::env::temp_dir().join(format!(
            "coop-epoch-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )))
    }

    #[test]
    fn sweep_covers_ladder_and_is_deterministic_across_worker_counts() {
        let out = tmp();
        let opts = TelemetryOpts::disabled();
        let run = |jobs: usize| {
            run_with_telemetry(
                Scale::Quick,
                17,
                Some(&[1, 64]),
                &Executor::new(jobs),
                &opts,
                &out,
            )
        };
        let (seq, trace) = run(1);
        assert!(trace.is_none());
        assert_eq!(seq.rows.len(), MechanismKind::ALL.len() + 2);
        for kind in MechanismKind::ALL {
            assert_eq!(seq.baseline(kind).epoch_rounds, None);
        }
        let short = seq.epoch(1);
        let long = seq.epoch(64);
        assert!(short.predicted_open_fraction.unwrap() < long.predicted_open_fraction.unwrap());
        // The epoch rows complete under attack (the open-epoch channel
        // keeps pieces moving even before the first settlement).
        assert!(short.completed_fraction > 0.5);
        assert!(long.completed_fraction > 0.5);

        // Deterministic artifacts: identical report for any worker count.
        let (par, _) = run(4);
        assert_eq!(seq.rows, par.rows);
        assert!(seq.render().contains("fig-epoch"));
        assert!(out
            .path()
            .join("figepoch_sweep_quick.csv")
            .is_file());
        let _ = std::fs::remove_dir_all(out.path());
    }
}
