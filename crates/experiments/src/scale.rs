//! Experiment scales.

use coop_des::Duration;
use coop_piece::FileSpec;
use coop_swarm::SwarmConfig;
use serde::{Deserialize, Serialize};

/// How large to run the simulation experiments.
///
/// The paper's absolute numbers depend on its (unpublished) testbed; what
/// must be preserved across scales is the *shape* — who wins, by roughly
/// what factor, where crossovers fall. `Quick` keeps every ordering at a
/// size suitable for CI; `Paper` reproduces Section V-A's setup exactly
/// (1000 users, 128 MB file, flash crowd within 10 s).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// ~40 peers, 2 MiB file. Seconds per run; used by tests and benches.
    Quick,
    /// ~200 peers, 8 MiB file. The default for interactive use.
    Default,
    /// 1000 peers, 128 MB file — the paper's Section V-A setup.
    Paper,
}

impl Scale {
    /// Parses a CLI string.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Ok(Scale::Quick),
            "default" => Ok(Scale::Default),
            "paper" | "full" => Ok(Scale::Paper),
            other => Err(format!("unknown scale '{other}' (quick|default|paper)")),
        }
    }

    /// Number of peers in the flash crowd.
    pub fn peers(self) -> usize {
        match self {
            Scale::Quick => 80,
            Scale::Default => 200,
            Scale::Paper => 1000,
        }
    }

    /// The swarm configuration for this scale.
    pub fn config(self, seed: u64) -> SwarmConfig {
        let mut config = match self {
            Scale::Quick => {
                let mut c = SwarmConfig::scaled_default();
                c.file = FileSpec::new(4 * 1024 * 1024, 64 * 1024);
                c.neighbor_degree = 20;
                c.seeder_bps = 128_000.0;
                c.max_rounds = 900;
                c.sample_every = 2;
                c
            }
            Scale::Default => {
                let mut c = SwarmConfig::scaled_default();
                c.max_rounds = 1500;
                c
            }
            Scale::Paper => SwarmConfig::paper_scale(),
        };
        config.seed = seed;
        config
    }

    /// The flash-crowd arrival window (the paper uses 10 seconds).
    pub fn arrival_window(self) -> Duration {
        Duration::from_secs(10)
    }

    /// Short name for output files.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_scales() {
        assert_eq!(Scale::parse("quick").unwrap(), Scale::Quick);
        assert_eq!(Scale::parse("DEFAULT").unwrap(), Scale::Default);
        assert_eq!(Scale::parse("paper").unwrap(), Scale::Paper);
        assert_eq!(Scale::parse("full").unwrap(), Scale::Paper);
        assert!(Scale::parse("huge").is_err());
    }

    #[test]
    fn configs_validate_and_grow() {
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            scale.config(1).validate().unwrap();
        }
        assert!(Scale::Quick.peers() < Scale::Default.peers());
        assert!(Scale::Default.peers() < Scale::Paper.peers());
        assert!(
            Scale::Quick.config(1).file.size_bytes() < Scale::Paper.config(1).file.size_bytes()
        );
    }

    #[test]
    fn seed_is_propagated() {
        assert_eq!(Scale::Quick.config(99).seed, 99);
    }
}
