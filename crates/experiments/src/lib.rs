//! # coop-experiments
//!
//! The experiment harness that regenerates **every table and figure** of
//! *“A Performance Analysis of Incentive Mechanisms for Cooperative
//! Computing”* (ICDCS 2016). Each runner prints the same rows/series the
//! paper reports and writes machine-readable CSV/JSON artifacts.
//!
//! | Runner | Paper artifact |
//! |--------|----------------|
//! | [`runners::fig1`]   | Fig. 1 — classification + expectation-vs-measurement cross-check |
//! | [`runners::table1`] | Table I — equilibrium download utilizations (analytic + measured) |
//! | [`runners::fig2`]   | Fig. 2 — idealized fairness/efficiency ranking |
//! | [`runners::fig3`]   | Fig. 3 — exchange probabilities under piece availability + Prop. 3 |
//! | [`runners::table2`] | Table II — bootstrap probabilities (incl. the example column) + Lemma 3 |
//! | [`runners::table3`] | Table III — exploitable resources and collusion probabilities |
//! | [`runners::fig4`]   | Fig. 4 — compliant-swarm simulation (efficiency, fairness, bootstrapping) |
//! | [`runners::fig5`]   | Fig. 5 — 20 % free-riders with per-algorithm worst attacks |
//! | [`runners::fig6`]   | Fig. 6 — Fig. 5 attacks plus the large-view exploit |
//! | [`runners::fluid`]  | Qiu–Srikant fluid dynamics per mechanism (footnote 3's \[27\]) vs the simulator |
//! | [`runners::ablations`] | Beyond the paper: parameter sweeps and extra attacks |
//! | [`runners::extensions`] | Beyond the paper: PropShare/BitTyrant clients, EigenTrust false-praise defense |
//!
//! Runners accept a [`Scale`]: `Quick` for CI, `Default` for laptop runs
//! with the paper's shape intact, `Paper` for the full 1000-peer, 128 MB
//! setup of Section V-A.
//!
//! # Example
//!
//! ```
//! use coop_experiments::{runners::table2, Scale};
//! let report = table2::run(Scale::Quick, 42);
//! assert!(report.render().contains("Altruism"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod journal;
mod output;
pub mod plot;
pub mod runners;
mod scale;
pub mod scenario;
mod spec;
mod table;
pub mod telemetry;

pub use exec::{BatchError, Executor, FailureKind, JobFailure, PanicInject, SimJob};
pub use journal::{JournalReplay, RunJournal};
pub use output::{write_csv, write_json, OutputDir};
pub use scale::Scale;
pub use scenario::{
    load_pack, Arrival, ArtifactStyle, AttackMode, MixSpec, Scenario, ScenarioError,
    ScenarioPack, Workload, SCENARIO_SPEC_VERSION,
};
pub use spec::{usage, Artifact, RunSpec, SpecError};
pub use table::Table;
pub use telemetry::{BatchTrace, JobTrace, TelemetryOpts};
