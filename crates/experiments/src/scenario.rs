//! Declarative workload scenarios: versioned spec files compiled into the
//! existing [`SimJob`](crate::exec::SimJob) stream.
//!
//! A scenario spec is a small JSON document (parsed with the in-house
//! `coop_telemetry::json` layer) describing a workload as *data*: the
//! arrival process (flash crowd, Poisson steady state, or diurnal), a
//! heterogeneous bandwidth-class mix, a fault plan, an attack mix, the
//! mechanism grid, and an optional peer-count sweep. Parsing validates
//! every field by name and produces a typed [`Scenario`]; compilation
//! ([`Scenario::jobs`]) lowers it onto the plain `SimJob` grid, so the
//! journal, `--resume`, panic isolation, and byte-identical artifacts all
//! work unchanged — a scenario is just a different way of *naming* jobs
//! the robust executor already knows how to run.
//!
//! Fingerprints: [`Scenario::fingerprint`] hashes the *canonical*
//! serialization ([`Scenario::to_json`]) of the parsed spec, so spec-file
//! key order and formatting never matter. The fingerprint rides into every
//! compiled job via [`Workload`], which makes journal replay keys
//! scenario-aware: editing a spec invalidates exactly the jobs it
//! describes.

use std::fmt;
use std::path::{Path, PathBuf};

use coop_attacks::AttackPlan;
use coop_faults::FaultPlan;
use coop_incentives::analysis::capacity::{CapacityClass, CapacityClassMix};
use coop_incentives::MechanismKind;
use coop_telemetry::json::{self, write_escaped, write_f64, Json};
use coop_telemetry::Fnv;

use crate::exec::SimJob;
use crate::Scale;

/// The spec schema version this build understands.
pub const SCENARIO_SPEC_VERSION: u64 = 1;

/// Upper bound on bandwidth classes per scenario — keeps [`MixSpec`]
/// (and therefore `SimJob`) a small `Copy` value.
pub const MAX_CLASSES: usize = 8;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A scenario spec problem: parse failure, unknown field, or invalid
/// value. Always names the offending field when one exists, and the file
/// and line when the spec came from disk.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioError {
    /// Spec file the error came from, when loaded from disk.
    pub file: Option<PathBuf>,
    /// 1-based line of the offending field or parse failure, best effort.
    pub line: Option<usize>,
    /// Dotted path of the offending field (e.g. `"faults.churn_rate"`).
    pub field: Option<String>,
    /// What is wrong.
    pub message: String,
}

impl ScenarioError {
    fn new(message: impl Into<String>) -> Self {
        ScenarioError {
            file: None,
            line: None,
            field: None,
            message: message.into(),
        }
    }

    fn field(field: impl Into<String>, message: impl Into<String>) -> Self {
        ScenarioError {
            field: Some(field.into()),
            ..Self::new(message)
        }
    }

    /// Attaches the source file and locates the offending line: parse
    /// errors already carry one; field errors search the raw text for the
    /// quoted field name (best effort — `None` when ambiguous help is
    /// worse than no line).
    fn locate(mut self, file: Option<&Path>, text: &str) -> Self {
        self.file = file.map(Path::to_path_buf);
        if self.line.is_none() {
            if let Some(field) = &self.field {
                let leaf = field
                    .rsplit('.')
                    .next()
                    .unwrap_or(field)
                    .trim_end_matches(|c: char| c == ']' || c.is_ascii_digit() || c == '[');
                let needle = format!("\"{leaf}\"");
                self.line = text
                    .find(&needle)
                    .map(|at| line_of(text, at));
            }
        }
        self
    }
}

/// The 1-based line containing byte offset `at`.
fn line_of(text: &str, at: usize) -> usize {
    1 + text.as_bytes()[..at.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(file) = &self.file {
            write!(f, "{}", file.display())?;
            if let Some(line) = self.line {
                write!(f, ":{line}")?;
            }
            write!(f, ": ")?;
        }
        if let Some(field) = &self.field {
            write!(f, "field '{field}': ")?;
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ScenarioError {}

// ---------------------------------------------------------------------------
// Workload overrides carried by SimJob
// ---------------------------------------------------------------------------

/// A fixed-capacity, `Copy` bandwidth-class mix. The spec-facing twin of
/// [`CapacityClassMix`], sized so it can ride inside [`SimJob`] without
/// costing `Copy`.
#[derive(Clone, Copy, PartialEq)]
pub struct MixSpec {
    len: u8,
    classes: [CapacityClass; MAX_CLASSES],
}

impl MixSpec {
    /// Validates the classes (via [`CapacityClassMix::new`]) and packs
    /// them.
    ///
    /// # Errors
    ///
    /// Returns the validation failure as text: too many classes, fractions
    /// not summing to 1, negative fractions, or non-positive capacities.
    pub fn new(classes: &[CapacityClass]) -> Result<MixSpec, String> {
        if classes.len() > MAX_CLASSES {
            return Err(format!(
                "at most {MAX_CLASSES} bandwidth classes are supported, got {}",
                classes.len()
            ));
        }
        CapacityClassMix::new(classes.to_vec())?;
        let mut packed = [CapacityClass {
            fraction: 0.0,
            upload_bps: 0.0,
        }; MAX_CLASSES];
        packed[..classes.len()].copy_from_slice(classes);
        Ok(MixSpec {
            len: classes.len() as u8,
            classes: packed,
        })
    }

    /// The classes actually present.
    pub fn classes(&self) -> &[CapacityClass] {
        &self.classes[..self.len as usize]
    }

    /// Expands back into the sampling-ready mix.
    pub fn to_mix(&self) -> CapacityClassMix {
        CapacityClassMix::new(self.classes().to_vec()).expect("validated at construction")
    }
}

/// Debug prints only the populated prefix so fingerprints of otherwise
/// identical jobs never depend on the unused padding slots.
impl fmt::Debug for MixSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.classes()).finish()
    }
}

/// Per-job workload overrides compiled from a scenario spec. `None`
/// everywhere (and on legacy jobs, `workload: None`) means the scale's
/// defaults — the exact code path the paper figures use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Workload {
    /// Fingerprint of the owning scenario's canonical spec. Folded into
    /// [`SimJob::fingerprint`] via `Debug`, which keys journal replay.
    pub spec_fingerprint: u64,
    /// Population-size override (peer-count sweeps).
    pub peers: Option<usize>,
    /// Bandwidth-class mix override.
    pub mix: Option<MixSpec>,
}

// ---------------------------------------------------------------------------
// Typed scenario
// ---------------------------------------------------------------------------

/// How peers arrive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrival {
    /// The paper's default: everyone arrives within the scale's short
    /// arrival window.
    FlashCrowd,
    /// Steady-state Poisson arrivals with the given mean gap (seconds).
    Poisson {
        /// Mean inter-arrival gap in seconds.
        mean_gap_s: f64,
    },
    /// Poisson arrivals whose intensity swings sinusoidally.
    Diurnal {
        /// Mean inter-arrival gap in seconds (at the cycle's midpoint).
        mean_gap_s: f64,
        /// Period of one intensity cycle in seconds.
        period_s: f64,
        /// Relative intensity swing in `[0, 1)`.
        amplitude: f64,
    },
}

/// The attack mix applied to every mechanism of the scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttackMode {
    /// No attackers.
    None,
    /// Plain free-riders at the given population fraction.
    Freeride(f64),
    /// The most effective known attack per mechanism (collusion against
    /// T-Chain, whitewashing against FairTorrent, plain free-riding
    /// elsewhere).
    MostEffective(f64),
    /// The most effective attack with a large-view bias.
    LargeView(f64),
    /// False-praise (fake receipt) attackers.
    FalsePraise(f64),
}

impl AttackMode {
    /// The attack plan for one mechanism, `None` when unattacked.
    pub fn plan_for(&self, kind: MechanismKind) -> Option<AttackPlan> {
        match *self {
            AttackMode::None => None,
            AttackMode::Freeride(f) => Some(AttackPlan::simple(f)),
            AttackMode::MostEffective(f) => Some(AttackPlan::most_effective(kind, f)),
            AttackMode::LargeView(f) => Some(AttackPlan::with_large_view(kind, f)),
            AttackMode::FalsePraise(f) => Some(AttackPlan::false_praise(f)),
        }
    }

    /// The spec-facing mode keyword.
    pub fn mode_name(&self) -> &'static str {
        match self {
            AttackMode::None => "none",
            AttackMode::Freeride(_) => "freeride",
            AttackMode::MostEffective(_) => "most-effective",
            AttackMode::LargeView(_) => "large-view",
            AttackMode::FalsePraise(_) => "false-praise",
        }
    }

    /// Human label for manifests (e.g. `"freeride(0.3)"`).
    pub fn label(&self) -> String {
        match *self {
            AttackMode::None => "none".into(),
            AttackMode::Freeride(f)
            | AttackMode::MostEffective(f)
            | AttackMode::LargeView(f)
            | AttackMode::FalsePraise(f) => format!("{}({})", self.mode_name(), f),
        }
    }

    fn fraction(&self) -> Option<f64> {
        match *self {
            AttackMode::None => None,
            AttackMode::Freeride(f)
            | AttackMode::MostEffective(f)
            | AttackMode::LargeView(f)
            | AttackMode::FalsePraise(f) => Some(f),
        }
    }
}

/// What a scenario writes to disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactStyle {
    /// The full fig4-style per-mechanism artifact set (CSVs, report JSON,
    /// SVG panels) per seed. Requires the full mechanism grid and at most
    /// one peer-count entry.
    Figure,
    /// One summary CSV row per job plus one report JSON, in the style of
    /// the fig4-churn sweep.
    Sweep,
}

impl ArtifactStyle {
    /// The spec keyword.
    pub fn name(&self) -> &'static str {
        match self {
            ArtifactStyle::Figure => "figure",
            ArtifactStyle::Sweep => "sweep",
        }
    }
}

/// A validated scenario: the typed form of one spec file.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Kebab-case scenario name (unique within a pack).
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Artifact file-name stem (defaults to the name). The baseline
    /// scenario sets `"fig4"` so its artifacts are byte-identical to the
    /// plain fig4 runner's.
    pub figure: String,
    /// Artifact style.
    pub style: ArtifactStyle,
    /// Arrival process.
    pub arrival: Arrival,
    /// Mechanisms simulated, in slot order.
    pub mechanisms: Vec<MechanismKind>,
    /// Attack mix.
    pub attack: AttackMode,
    /// Fault plan *without* the arrival process (folded in by
    /// [`Scenario::fault_plan`]).
    pub faults: FaultPlan,
    /// Peer-count sweep axis; empty = the scale's default population.
    pub peers: Vec<usize>,
    /// Bandwidth-class mix override.
    pub classes: Option<MixSpec>,
    /// Replicates baked into the spec (CLI `--replicates` takes the max).
    pub replicates: u64,
}

impl Scenario {
    /// Parses and validates one spec document.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] naming the offending field for every
    /// unknown key, missing required field, or out-of-range value.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        Self::parse_located(text, None)
    }

    /// [`Scenario::parse`] with file/line attribution for errors.
    pub fn parse_located(text: &str, file: Option<&Path>) -> Result<Scenario, ScenarioError> {
        Self::parse_inner(text).map_err(|e| e.locate(file, text))
    }

    fn parse_inner(text: &str) -> Result<Scenario, ScenarioError> {
        let doc = json::parse(text).map_err(|e| ScenarioError {
            file: None,
            line: Some(line_of(text, e.at)),
            field: None,
            message: e.to_string(),
        })?;
        let root = Obj::root(&doc)?;
        root.check_unknown(&[
            "spec_version",
            "name",
            "description",
            "figure",
            "artifacts",
            "arrival",
            "mechanisms",
            "attack",
            "faults",
            "peers",
            "bandwidth_classes",
            "replicates",
        ])?;

        let version = root.require_u64("spec_version")?;
        if version != SCENARIO_SPEC_VERSION {
            return Err(ScenarioError::field(
                "spec_version",
                format!("unsupported spec_version {version} (expected {SCENARIO_SPEC_VERSION})"),
            ));
        }

        let name = root.require_str("name")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            return Err(ScenarioError::field(
                "name",
                format!("'{name}' must be non-empty kebab-case ([a-z0-9-])"),
            ));
        }
        let description = root.str("description")?.unwrap_or_default().to_string();
        let figure = root.str("figure")?.unwrap_or(&name).to_string();
        if figure.is_empty()
            || !figure
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
        {
            return Err(ScenarioError::field(
                "figure",
                format!("'{figure}' must be a non-empty [a-z0-9_-] artifact stem"),
            ));
        }

        let style = match root.str("artifacts")?.unwrap_or("sweep") {
            "figure" => ArtifactStyle::Figure,
            "sweep" => ArtifactStyle::Sweep,
            other => {
                return Err(ScenarioError::field(
                    "artifacts",
                    format!("unknown artifact style '{other}' (expected 'figure' or 'sweep')"),
                ))
            }
        };

        let arrival = parse_arrival(&root)?;
        let mechanisms = parse_mechanisms(&root)?;
        let attack = parse_attack(&root)?;
        let faults = match root.child("faults")? {
            Some(obj) => parse_faults(&obj)?,
            None => FaultPlan::none(),
        };
        let peers = parse_peers(&root)?;
        let classes = parse_classes(&root)?;
        let replicates = match root.u64("replicates")? {
            Some(0) => {
                return Err(ScenarioError::field(
                    "replicates",
                    "must be at least 1".to_string(),
                ))
            }
            Some(r) => r,
            None => 1,
        };

        if style == ArtifactStyle::Figure {
            if mechanisms != MechanismKind::ALL && mechanisms != MechanismKind::EXTENDED {
                return Err(ScenarioError::field(
                    "artifacts",
                    "style 'figure' requires a full mechanism grid (mechanisms: \"all\" or \"extended\")",
                ));
            }
            if peers.len() > 1 {
                return Err(ScenarioError::field(
                    "peers",
                    "style 'figure' allows at most one peer-count entry",
                ));
            }
        }

        Ok(Scenario {
            name,
            description,
            figure,
            style,
            arrival,
            mechanisms,
            attack,
            faults,
            peers,
            classes,
            replicates,
        })
    }

    /// The canonical serialization: fixed key order, all semantic fields,
    /// no dependence on the source file's formatting. `parse(to_json(s))`
    /// round-trips exactly, and [`Scenario::fingerprint`] hashes this
    /// text.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        let mut key = |out: &mut String, k: &str| {
            if !std::mem::take(&mut first) {
                out.push_str(", ");
            }
            write_escaped(out, k);
            out.push_str(": ");
        };
        key(&mut out, "spec_version");
        out.push_str(&SCENARIO_SPEC_VERSION.to_string());
        key(&mut out, "name");
        write_escaped(&mut out, &self.name);
        key(&mut out, "description");
        write_escaped(&mut out, &self.description);
        key(&mut out, "figure");
        write_escaped(&mut out, &self.figure);
        key(&mut out, "artifacts");
        write_escaped(&mut out, self.style.name());
        key(&mut out, "arrival");
        out.push_str(&arrival_json(self.arrival));
        key(&mut out, "mechanisms");
        out.push('[');
        for (i, kind) in self.mechanisms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_escaped(&mut out, kind.name());
        }
        out.push(']');
        key(&mut out, "attack");
        out.push('{');
        write_escaped(&mut out, "mode");
        out.push_str(": ");
        write_escaped(&mut out, self.attack.mode_name());
        if let Some(f) = self.attack.fraction() {
            out.push_str(", ");
            write_escaped(&mut out, "fraction");
            out.push_str(": ");
            write_f64(&mut out, f);
        }
        out.push('}');
        key(&mut out, "faults");
        out.push_str(&faults_json(&self.faults));
        if !self.peers.is_empty() {
            key(&mut out, "peers");
            out.push('[');
            for (i, p) in self.peers.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&p.to_string());
            }
            out.push(']');
        }
        if let Some(mix) = &self.classes {
            key(&mut out, "bandwidth_classes");
            out.push('[');
            for (i, c) in mix.classes().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('{');
                write_escaped(&mut out, "fraction");
                out.push_str(": ");
                write_f64(&mut out, c.fraction);
                out.push_str(", ");
                write_escaped(&mut out, "upload_bps");
                out.push_str(": ");
                write_f64(&mut out, c.upload_bps);
                out.push('}');
            }
            out.push(']');
        }
        key(&mut out, "replicates");
        out.push_str(&self.replicates.to_string());
        out.push('}');
        out
    }

    /// FNV-1a over the canonical serialization — stable under spec-file
    /// key reordering and whitespace changes.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_str(&self.to_json());
        h.finish()
    }

    /// The complete fault plan: declared faults plus the arrival process
    /// folded into the plan's arrival fields.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = self.faults;
        match self.arrival {
            Arrival::FlashCrowd => {}
            Arrival::Poisson { mean_gap_s } => plan.arrival_spread_s = mean_gap_s,
            Arrival::Diurnal {
                mean_gap_s,
                period_s,
                amplitude,
            } => {
                plan.arrival_spread_s = mean_gap_s;
                plan.diurnal_period_s = period_s;
                plan.diurnal_amplitude = amplitude;
            }
        }
        plan
    }

    /// Replicates actually run: the larger of the spec's and the CLI's.
    pub fn effective_replicates(&self, cli_replicates: u64) -> u64 {
        self.replicates.max(cli_replicates).max(1)
    }

    /// Compiles the scenario into the `SimJob` grid: seed-major, then
    /// peer-count, then mechanisms in slot order. An inert fault plan is
    /// dropped entirely (`faults: None`), so a zero-fault scenario takes
    /// the exact byte-identical fault-free hot path.
    pub fn jobs(&self, scale: Scale, base_seed: u64, cli_replicates: u64) -> Vec<SimJob> {
        let plan = self.fault_plan();
        let faults = (!plan.is_inert()).then_some(plan);
        let fingerprint = self.fingerprint();
        let peer_axis: Vec<Option<usize>> = if self.peers.is_empty() {
            vec![None]
        } else {
            self.peers.iter().map(|&p| Some(p)).collect()
        };
        let mut jobs = Vec::new();
        for seed in base_seed..base_seed + self.effective_replicates(cli_replicates) {
            for &peers in &peer_axis {
                for &kind in &self.mechanisms {
                    jobs.push(SimJob {
                        kind,
                        scale,
                        seed,
                        plan: self.attack.plan_for(kind),
                        faults,
                        workload: Some(Workload {
                            spec_fingerprint: fingerprint,
                            peers,
                            mix: self.classes,
                        }),
                    });
                }
            }
        }
        jobs
    }
}

fn arrival_json(arrival: Arrival) -> String {
    let mut out = String::from("{");
    write_escaped(&mut out, "process");
    out.push_str(": ");
    match arrival {
        Arrival::FlashCrowd => write_escaped(&mut out, "flash-crowd"),
        Arrival::Poisson { mean_gap_s } => {
            write_escaped(&mut out, "poisson");
            out.push_str(", ");
            write_escaped(&mut out, "mean_gap_s");
            out.push_str(": ");
            write_f64(&mut out, mean_gap_s);
        }
        Arrival::Diurnal {
            mean_gap_s,
            period_s,
            amplitude,
        } => {
            write_escaped(&mut out, "diurnal");
            for (k, v) in [
                ("mean_gap_s", mean_gap_s),
                ("period_s", period_s),
                ("amplitude", amplitude),
            ] {
                out.push_str(", ");
                write_escaped(&mut out, k);
                out.push_str(": ");
                write_f64(&mut out, v);
            }
        }
    }
    out.push('}');
    out
}

fn faults_json(plan: &FaultPlan) -> String {
    let mut out = String::from("{");
    let mut first = true;
    let mut num = |out: &mut String, k: &str, v: f64| {
        if !std::mem::take(&mut first) {
            out.push_str(", ");
        }
        write_escaped(out, k);
        out.push_str(": ");
        write_f64(out, v);
    };
    num(&mut out, "churn_rate", plan.churn_rate);
    num(&mut out, "loss_prob", plan.loss_prob);
    num(&mut out, "outage_prob", plan.outage_prob);
    num(&mut out, "outage_rounds", plan.outage_rounds as f64);
    if let Some(l) = plan.fixed_lifetime_rounds {
        num(&mut out, "fixed_lifetime_rounds", l as f64);
    }
    if let Some(f) = plan.seeder_exit_fraction {
        num(&mut out, "seeder_exit_fraction", f);
    }
    if let Some(r) = plan.seeder_failure_round {
        num(&mut out, "seeder_failure_round", r as f64);
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Field-level parsing helpers
// ---------------------------------------------------------------------------

/// A JSON object plus the dotted path that leads to it, for error
/// attribution.
struct Obj<'a> {
    fields: &'a [(String, Json)],
    path: String,
}

impl<'a> Obj<'a> {
    fn root(doc: &'a Json) -> Result<Obj<'a>, ScenarioError> {
        match doc {
            Json::Obj(fields) => Ok(Obj {
                fields,
                path: String::new(),
            }),
            _ => Err(ScenarioError::new("spec must be a JSON object")),
        }
    }

    fn path_of(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn check_unknown(&self, allowed: &[&str]) -> Result<(), ScenarioError> {
        for (key, _) in self.fields {
            if !allowed.contains(&key.as_str()) {
                return Err(ScenarioError::field(
                    self.path_of(key),
                    format!("unknown field (allowed: {})", allowed.join(", ")),
                ));
            }
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Option<&'a Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str(&self, key: &str) -> Result<Option<&'a str>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(Json::Str(s)) => Ok(Some(s)),
            Some(_) => Err(ScenarioError::field(self.path_of(key), "must be a string")),
        }
    }

    fn require_str(&self, key: &str) -> Result<String, ScenarioError> {
        self.str(key)?.map(str::to_string).ok_or_else(|| {
            ScenarioError::field(self.path_of(key), "required field is missing")
        })
    }

    fn f64(&self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(Json::Num(n)) if n.is_finite() => Ok(Some(*n)),
            Some(_) => Err(ScenarioError::field(
                self.path_of(key),
                "must be a finite number",
            )),
        }
    }

    fn u64(&self, key: &str) -> Result<Option<u64>, ScenarioError> {
        match self.f64(key)? {
            None => Ok(None),
            Some(v) if v >= 0.0 && v.fract() == 0.0 && v <= (1u64 << 53) as f64 => {
                Ok(Some(v as u64))
            }
            Some(_) => Err(ScenarioError::field(
                self.path_of(key),
                "must be a non-negative integer",
            )),
        }
    }

    fn require_u64(&self, key: &str) -> Result<u64, ScenarioError> {
        self.u64(key)?.ok_or_else(|| {
            ScenarioError::field(self.path_of(key), "required field is missing")
        })
    }

    fn arr(&self, key: &str) -> Result<Option<&'a [Json]>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(Json::Arr(items)) => Ok(Some(items)),
            Some(_) => Err(ScenarioError::field(self.path_of(key), "must be an array")),
        }
    }

    fn child(&self, key: &str) -> Result<Option<Obj<'a>>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(Json::Obj(fields)) => Ok(Some(Obj {
                fields,
                path: self.path_of(key),
            })),
            Some(_) => Err(ScenarioError::field(self.path_of(key), "must be an object")),
        }
    }

    /// A number in `[lo, hi]`.
    fn f64_in(
        &self,
        key: &str,
        lo: f64,
        hi: f64,
    ) -> Result<Option<f64>, ScenarioError> {
        match self.f64(key)? {
            None => Ok(None),
            Some(v) if v >= lo && v <= hi => Ok(Some(v)),
            Some(v) => Err(ScenarioError::field(
                self.path_of(key),
                format!("{v} is out of range [{lo}, {hi}]"),
            )),
        }
    }
}

fn parse_arrival(root: &Obj<'_>) -> Result<Arrival, ScenarioError> {
    let Some(obj) = root.child("arrival")? else {
        return Ok(Arrival::FlashCrowd);
    };
    let process = obj.require_str("process")?;
    let require_gap = |obj: &Obj<'_>| -> Result<f64, ScenarioError> {
        match obj.f64("mean_gap_s")? {
            Some(v) if v > 0.0 => Ok(v),
            Some(v) => Err(ScenarioError::field(
                obj.path_of("mean_gap_s"),
                format!("{v} must be positive"),
            )),
            None => Err(ScenarioError::field(
                obj.path_of("mean_gap_s"),
                "required field is missing",
            )),
        }
    };
    match process.as_str() {
        "flash-crowd" => {
            obj.check_unknown(&["process"])?;
            Ok(Arrival::FlashCrowd)
        }
        "poisson" => {
            obj.check_unknown(&["process", "mean_gap_s"])?;
            Ok(Arrival::Poisson {
                mean_gap_s: require_gap(&obj)?,
            })
        }
        "diurnal" => {
            obj.check_unknown(&["process", "mean_gap_s", "period_s", "amplitude"])?;
            let mean_gap_s = require_gap(&obj)?;
            let period_s = match obj.f64("period_s")? {
                Some(v) if v > 0.0 => v,
                Some(v) => {
                    return Err(ScenarioError::field(
                        obj.path_of("period_s"),
                        format!("{v} must be positive"),
                    ))
                }
                None => {
                    return Err(ScenarioError::field(
                        obj.path_of("period_s"),
                        "required field is missing",
                    ))
                }
            };
            let amplitude = obj.f64_in("amplitude", 0.0, 1.0)?.unwrap_or(0.5);
            if amplitude >= 1.0 {
                return Err(ScenarioError::field(
                    obj.path_of("amplitude"),
                    "must be below 1 so the arrival intensity stays positive",
                ));
            }
            Ok(Arrival::Diurnal {
                mean_gap_s,
                period_s,
                amplitude,
            })
        }
        other => Err(ScenarioError::field(
            obj.path_of("process"),
            format!("unknown arrival process '{other}' (expected flash-crowd, poisson, or diurnal)"),
        )),
    }
}

fn parse_mechanisms(root: &Obj<'_>) -> Result<Vec<MechanismKind>, ScenarioError> {
    match root.get("mechanisms") {
        None => Ok(MechanismKind::ALL.to_vec()),
        Some(Json::Str(s)) if s == "all" => Ok(MechanismKind::ALL.to_vec()),
        Some(Json::Str(s)) if s == "extended" => Ok(MechanismKind::EXTENDED.to_vec()),
        Some(Json::Arr(items)) => {
            if items.is_empty() {
                return Err(ScenarioError::field("mechanisms", "must not be empty"));
            }
            let mut kinds = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let name = item.as_str().ok_or_else(|| {
                    ScenarioError::field(format!("mechanisms[{i}]"), "must be a string")
                })?;
                let kind = parse_mechanism(name).ok_or_else(|| {
                    let known: Vec<&str> =
                        MechanismKind::EXTENDED.iter().map(|k| k.name()).collect();
                    ScenarioError::field(
                        format!("mechanisms[{i}]"),
                        format!("unknown mechanism '{name}' (known: {})", known.join(", ")),
                    )
                })?;
                if kinds.contains(&kind) {
                    return Err(ScenarioError::field(
                        format!("mechanisms[{i}]"),
                        format!("duplicate mechanism '{name}'"),
                    ));
                }
                kinds.push(kind);
            }
            Ok(kinds)
        }
        Some(_) => Err(ScenarioError::field(
            "mechanisms",
            "must be \"all\", \"extended\", or an array of mechanism names",
        )),
    }
}

/// Case-insensitive mechanism lookup by display name (hyphens optional).
pub fn parse_mechanism(name: &str) -> Option<MechanismKind> {
    let normalized: String = name
        .chars()
        .filter(|c| *c != '-')
        .collect::<String>()
        .to_ascii_lowercase();
    MechanismKind::EXTENDED.iter().copied().find(|k| {
        k.name()
            .chars()
            .filter(|c| *c != '-')
            .collect::<String>()
            .to_ascii_lowercase()
            == normalized
    })
}

fn parse_attack(root: &Obj<'_>) -> Result<AttackMode, ScenarioError> {
    let Some(obj) = root.child("attack")? else {
        return Ok(AttackMode::None);
    };
    obj.check_unknown(&["mode", "fraction"])?;
    let mode = obj.require_str("mode")?;
    if mode == "none" {
        if obj.get("fraction").is_some() {
            return Err(ScenarioError::field(
                obj.path_of("fraction"),
                "mode 'none' takes no attacker fraction",
            ));
        }
        return Ok(AttackMode::None);
    }
    let fraction = match obj.f64_in("fraction", 0.0, 1.0)? {
        Some(f) if f > 0.0 => f,
        Some(f) => {
            return Err(ScenarioError::field(
                obj.path_of("fraction"),
                format!("{f} must lie in (0, 1]"),
            ))
        }
        None => {
            return Err(ScenarioError::field(
                obj.path_of("fraction"),
                "required field is missing",
            ))
        }
    };
    match mode.as_str() {
        "freeride" => Ok(AttackMode::Freeride(fraction)),
        "most-effective" => Ok(AttackMode::MostEffective(fraction)),
        "large-view" => Ok(AttackMode::LargeView(fraction)),
        "false-praise" => Ok(AttackMode::FalsePraise(fraction)),
        other => Err(ScenarioError::field(
            obj.path_of("mode"),
            format!(
                "unknown attack mode '{other}' (expected none, freeride, most-effective, large-view, or false-praise)"
            ),
        )),
    }
}

/// Parses a spec `faults` section into a [`FaultPlan`]. Shared by the
/// spec parser and the deprecated `--churn/--loss/--seeder-exit` flags
/// (which compile their values into this same fragment).
fn parse_faults(obj: &Obj<'_>) -> Result<FaultPlan, ScenarioError> {
    obj.check_unknown(&[
        "churn_rate",
        "loss_prob",
        "outage_prob",
        "outage_rounds",
        "fixed_lifetime_rounds",
        "seeder_exit_fraction",
        "seeder_failure_round",
    ])?;
    let mut plan = FaultPlan::none();
    if let Some(rate) = obj.f64("churn_rate")? {
        if rate < 0.0 {
            return Err(ScenarioError::field(
                obj.path_of("churn_rate"),
                format!("{rate} must be non-negative"),
            ));
        }
        plan.churn_rate = rate;
    }
    plan.loss_prob = obj.f64_in("loss_prob", 0.0, 1.0)?.unwrap_or(0.0);
    plan.outage_prob = obj.f64_in("outage_prob", 0.0, 1.0)?.unwrap_or(0.0);
    plan.outage_rounds = obj.u64("outage_rounds")?.unwrap_or(0);
    if plan.outage_prob > 0.0 && plan.outage_rounds == 0 {
        return Err(ScenarioError::field(
            obj.path_of("outage_rounds"),
            "must be positive when outage_prob is set",
        ));
    }
    if let Some(rounds) = obj.u64("fixed_lifetime_rounds")? {
        if rounds == 0 {
            return Err(ScenarioError::field(
                obj.path_of("fixed_lifetime_rounds"),
                "must be at least 1",
            ));
        }
        plan.fixed_lifetime_rounds = Some(rounds);
    }
    if let Some(fraction) = obj.f64_in("seeder_exit_fraction", 0.0, 1.0)? {
        if fraction <= 0.0 {
            return Err(ScenarioError::field(
                obj.path_of("seeder_exit_fraction"),
                format!("{fraction} must lie in (0, 1]"),
            ));
        }
        plan.seeder_exit_fraction = Some(fraction);
    }
    plan.seeder_failure_round = obj.u64("seeder_failure_round")?;
    Ok(plan)
}

fn parse_peers(root: &Obj<'_>) -> Result<Vec<usize>, ScenarioError> {
    let Some(items) = root.arr("peers")? else {
        return Ok(Vec::new());
    };
    if items.is_empty() {
        return Err(ScenarioError::field(
            "peers",
            "must not be empty (omit the field for the scale default)",
        ));
    }
    let mut peers = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let n = item
            .as_f64()
            .filter(|v| v.fract() == 0.0 && *v >= 2.0 && *v <= 1e9)
            .ok_or_else(|| {
                ScenarioError::field(
                    format!("peers[{i}]"),
                    "must be an integer of at least 2",
                )
            })? as usize;
        if peers.contains(&n) {
            return Err(ScenarioError::field(
                format!("peers[{i}]"),
                format!("duplicate peer count {n}"),
            ));
        }
        peers.push(n);
    }
    Ok(peers)
}

fn parse_classes(root: &Obj<'_>) -> Result<Option<MixSpec>, ScenarioError> {
    let Some(items) = root.arr("bandwidth_classes")? else {
        return Ok(None);
    };
    let mut classes = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let obj = match item {
            Json::Obj(fields) => Obj {
                fields,
                path: format!("bandwidth_classes[{i}]"),
            },
            _ => {
                return Err(ScenarioError::field(
                    format!("bandwidth_classes[{i}]"),
                    "must be an object with 'fraction' and 'upload_bps'",
                ))
            }
        };
        obj.check_unknown(&["fraction", "upload_bps"])?;
        let fraction = obj.f64("fraction")?.ok_or_else(|| {
            ScenarioError::field(obj.path_of("fraction"), "required field is missing")
        })?;
        let upload_bps = obj.f64("upload_bps")?.ok_or_else(|| {
            ScenarioError::field(obj.path_of("upload_bps"), "required field is missing")
        })?;
        classes.push(CapacityClass {
            fraction,
            upload_bps,
        });
    }
    MixSpec::new(&classes)
        .map(Some)
        .map_err(|msg| ScenarioError::field("bandwidth_classes", msg))
}

/// Compiles the deprecated `--churn/--loss/--seeder-exit` flags into the
/// same spec fragment the `faults` section uses, then parses it through
/// the identical validator — the flags are now sugar for a one-section
/// scenario.
pub(crate) fn legacy_fault_fragment(
    churn: Option<f64>,
    loss: Option<f64>,
    seeder_exit: Option<f64>,
) -> Option<FaultPlan> {
    if churn.is_none() && loss.is_none() && seeder_exit.is_none() {
        return None;
    }
    let mut fields: Vec<(String, Json)> = Vec::new();
    if let Some(rate) = churn {
        fields.push(("churn_rate".into(), Json::Num(rate)));
    }
    if let Some(prob) = loss {
        fields.push(("loss_prob".into(), Json::Num(prob)));
    }
    if let Some(fraction) = seeder_exit {
        fields.push(("seeder_exit_fraction".into(), Json::Num(fraction)));
    }
    let obj = Obj {
        fields: &fields,
        path: "faults".into(),
    };
    Some(parse_faults(&obj).expect("CLI-validated fault flags form a valid fragment"))
}

// ---------------------------------------------------------------------------
// Packs and the built-in scenario library
// ---------------------------------------------------------------------------

/// The built-in scenario library, embedded at compile time.
pub const BUILTIN_SCENARIOS: &[(&str, &str)] = &[
    (
        "flash-crowd-baseline",
        include_str!("../scenarios/flash-crowd-baseline.json"),
    ),
    (
        "software-update-push",
        include_str!("../scenarios/software-update-push.json"),
    ),
    (
        "mobile-churn-storm",
        include_str!("../scenarios/mobile-churn-storm.json"),
    ),
    (
        "seeder-starved-archive",
        include_str!("../scenarios/seeder-starved-archive.json"),
    ),
    (
        "epoch-settlement",
        include_str!("../scenarios/epoch-settlement.json"),
    ),
    (
        "consensus-bans",
        include_str!("../scenarios/consensus-bans.json"),
    ),
];

/// Names of the built-in scenarios, in library order.
pub fn builtin_names() -> Vec<&'static str> {
    BUILTIN_SCENARIOS.iter().map(|(name, _)| *name).collect()
}

/// A loaded, validated set of scenarios to sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioPack {
    /// Where the pack came from (built-in name, file, or directory).
    pub source: String,
    /// The scenarios, in load order (directory packs: sorted by file
    /// name).
    pub scenarios: Vec<Scenario>,
}

impl ScenarioPack {
    /// FNV-1a over every scenario fingerprint, in order — the identity a
    /// sweep run records in its journal header so `--resume` can reject a
    /// changed pack.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for s in &self.scenarios {
            h.write_str(&format!("{:016x};", s.fingerprint()));
        }
        h.finish()
    }
}

/// Loads a pack from a built-in scenario name, a single spec file, or a
/// directory of `*.json` spec files (sorted by file name).
///
/// # Errors
///
/// Returns a [`ScenarioError`] for unreadable paths, invalid specs (with
/// file and line), duplicate scenario names, or an unknown built-in name.
pub fn load_pack(arg: &str) -> Result<ScenarioPack, ScenarioError> {
    if let Some((_, text)) = BUILTIN_SCENARIOS.iter().find(|(name, _)| *name == arg) {
        let scenario = Scenario::parse(text)
            .map_err(|e| ScenarioError::new(format!("built-in scenario '{arg}': {e}")))?;
        return Ok(ScenarioPack {
            source: arg.to_string(),
            scenarios: vec![scenario],
        });
    }

    let path = Path::new(arg);
    let files: Vec<PathBuf> = if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| ScenarioError::new(format!("cannot read pack directory '{arg}': {e}")))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(ScenarioError::new(format!(
                "pack directory '{arg}' contains no .json spec files"
            )));
        }
        files
    } else if path.is_file() {
        vec![path.to_path_buf()]
    } else {
        return Err(ScenarioError::new(format!(
            "'{arg}' is not a built-in scenario ({}), a spec file, or a pack directory",
            builtin_names().join(", ")
        )));
    };

    let mut scenarios = Vec::with_capacity(files.len());
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| ScenarioError {
            file: Some(file.clone()),
            line: None,
            field: None,
            message: format!("cannot read spec file: {e}"),
        })?;
        let scenario = Scenario::parse_located(&text, Some(file))?;
        if scenarios
            .iter()
            .any(|s: &Scenario| s.name == scenario.name)
        {
            return Err(ScenarioError {
                file: Some(file.clone()),
                line: None,
                field: Some("name".into()),
                message: format!("duplicate scenario name '{}' in pack", scenario.name),
            });
        }
        scenarios.push(scenario);
    }
    Ok(ScenarioPack {
        source: arg.to_string(),
        scenarios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(extra: &str) -> String {
        format!(r#"{{"spec_version": 1, "name": "test-scenario"{extra}}}"#)
    }

    #[test]
    fn minimal_spec_defaults() {
        let s = Scenario::parse(&minimal("")).unwrap();
        assert_eq!(s.name, "test-scenario");
        assert_eq!(s.figure, "test-scenario");
        assert_eq!(s.style, ArtifactStyle::Sweep);
        assert_eq!(s.arrival, Arrival::FlashCrowd);
        assert_eq!(s.mechanisms, MechanismKind::ALL);
        assert_eq!(s.attack, AttackMode::None);
        assert!(s.faults.is_inert());
        assert!(s.peers.is_empty());
        assert!(s.classes.is_none());
        assert_eq!(s.replicates, 1);
    }

    #[test]
    fn unknown_fields_are_named() {
        let err = Scenario::parse(&minimal(r#", "chrun_rate": 0.1"#)).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("chrun_rate"));
        assert!(err.message.contains("unknown field"), "{err}");

        let err =
            Scenario::parse(&minimal(r#", "faults": {"churnrate": 0.1}"#)).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("faults.churnrate"));
    }

    #[test]
    fn out_of_range_values_are_named() {
        let err = Scenario::parse(&minimal(r#", "faults": {"loss_prob": 1.5}"#)).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("faults.loss_prob"));
        assert!(err.message.contains("out of range"), "{err}");

        let err = Scenario::parse(&minimal(
            r#", "attack": {"mode": "freeride", "fraction": 0.0}"#,
        ))
        .unwrap_err();
        assert_eq!(err.field.as_deref(), Some("attack.fraction"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "{\n  \"spec_version\": 1,\n  \"name\": oops\n}";
        let err = Scenario::parse_located(text, Some(Path::new("bad.json"))).unwrap_err();
        assert_eq!(err.line, Some(3));
        assert_eq!(err.file.as_deref(), Some(Path::new("bad.json")));
        let rendered = err.to_string();
        assert!(rendered.contains("bad.json:3"), "{rendered}");
    }

    #[test]
    fn field_errors_locate_the_offending_line() {
        let text = "{\n  \"spec_version\": 1,\n  \"name\": \"x-y\",\n  \"faults\": {\n    \"loss_prob\": 2.0\n  }\n}";
        let err = Scenario::parse_located(text, Some(Path::new("pack/x.json"))).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("faults.loss_prob"));
        assert_eq!(err.line, Some(5));
    }

    #[test]
    fn round_trips_through_canonical_json() {
        let text = minimal(
            r#", "description": "d", "artifacts": "sweep",
               "arrival": {"process": "diurnal", "mean_gap_s": 1.5, "period_s": 300, "amplitude": 0.4},
               "mechanisms": ["BitTorrent", "T-Chain"],
               "attack": {"mode": "most-effective", "fraction": 0.3},
               "faults": {"churn_rate": 0.02, "loss_prob": 0.05, "outage_prob": 0.3, "outage_rounds": 10},
               "peers": [40, 80],
               "bandwidth_classes": [{"fraction": 0.5, "upload_bps": 16000}, {"fraction": 0.5, "upload_bps": 64000}],
               "replicates": 3"#,
        );
        let s = Scenario::parse(&text).unwrap();
        let canonical = s.to_json();
        let back = Scenario::parse(&canonical).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.fingerprint(), s.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_key_order_and_formatting() {
        let a = r#"{"spec_version": 1, "name": "x", "faults": {"churn_rate": 0.01, "loss_prob": 0.1}, "peers": [40]}"#;
        let b = "{\n  \"peers\": [40],\n  \"faults\": {\"loss_prob\": 0.1, \"churn_rate\": 0.01},\n  \"name\": \"x\",\n  \"spec_version\": 1\n}";
        let sa = Scenario::parse(a).unwrap();
        let sb = Scenario::parse(b).unwrap();
        assert_eq!(sa.fingerprint(), sb.fingerprint());
    }

    #[test]
    fn fingerprint_is_input_sensitive() {
        let a = Scenario::parse(&minimal(r#", "faults": {"churn_rate": 0.01}"#)).unwrap();
        let b = Scenario::parse(&minimal(r#", "faults": {"churn_rate": 0.02}"#)).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn figure_style_requires_full_grid_and_single_peer_count() {
        let err = Scenario::parse(&minimal(
            r#", "artifacts": "figure", "mechanisms": ["BitTorrent"]"#,
        ))
        .unwrap_err();
        assert_eq!(err.field.as_deref(), Some("artifacts"));

        let err =
            Scenario::parse(&minimal(r#", "artifacts": "figure", "peers": [40, 80]"#))
                .unwrap_err();
        assert_eq!(err.field.as_deref(), Some("peers"));

        assert!(Scenario::parse(&minimal(r#", "artifacts": "figure""#)).is_ok());
    }

    #[test]
    fn jobs_compile_seed_major_then_peers_then_mechanisms() {
        let s = Scenario::parse(&minimal(
            r#", "mechanisms": ["BitTorrent", "T-Chain"], "peers": [40, 80], "replicates": 2"#,
        ))
        .unwrap();
        let jobs = s.jobs(Scale::Quick, 7, 1);
        assert_eq!(jobs.len(), 2 * 2 * 2);
        assert_eq!(jobs[0].seed, 7);
        assert_eq!(jobs[0].workload.unwrap().peers, Some(40));
        assert_eq!(jobs[0].kind, MechanismKind::BitTorrent);
        assert_eq!(jobs[1].kind, MechanismKind::TChain);
        assert_eq!(jobs[2].workload.unwrap().peers, Some(80));
        assert_eq!(jobs[4].seed, 8);
        let fp = s.fingerprint();
        assert!(jobs.iter().all(|j| j.workload.unwrap().spec_fingerprint == fp));
    }

    #[test]
    fn zero_fault_scenario_compiles_without_a_fault_plan() {
        let s = Scenario::parse(&minimal("")).unwrap();
        let jobs = s.jobs(Scale::Quick, 42, 1);
        assert!(jobs.iter().all(|j| j.faults.is_none()));
        assert!(jobs.iter().all(|j| j.plan.is_none()));
    }

    #[test]
    fn arrival_folds_into_the_fault_plan() {
        let s = Scenario::parse(&minimal(
            r#", "arrival": {"process": "diurnal", "mean_gap_s": 2.0, "period_s": 600, "amplitude": 0.25}"#,
        ))
        .unwrap();
        let plan = s.fault_plan();
        assert_eq!(plan.arrival_spread_s, 2.0);
        assert_eq!(plan.diurnal_period_s, 600.0);
        assert_eq!(plan.diurnal_amplitude, 0.25);
        assert!(!plan.is_inert());
        let jobs = s.jobs(Scale::Quick, 1, 1);
        assert_eq!(jobs[0].faults, Some(plan));
    }

    #[test]
    fn spec_fingerprint_changes_the_job_fingerprint() {
        let a = Scenario::parse(&minimal(r#", "replicates": 1"#)).unwrap();
        let b = Scenario::parse(&minimal(r#", "replicates": 2"#)).unwrap();
        let ja = a.jobs(Scale::Quick, 42, 1)[0];
        let jb = b.jobs(Scale::Quick, 42, 1)[0];
        assert_ne!(ja.fingerprint(), jb.fingerprint());
    }

    #[test]
    fn legacy_fault_flags_compile_through_the_spec_fragment() {
        assert_eq!(legacy_fault_fragment(None, None, None), None);
        let plan = legacy_fault_fragment(Some(0.01), Some(0.05), Some(0.5)).unwrap();
        let mut expected = FaultPlan::none();
        expected.churn_rate = 0.01;
        expected.loss_prob = 0.05;
        expected.seeder_exit_fraction = Some(0.5);
        assert_eq!(plan, expected);
    }

    #[test]
    fn mechanism_names_parse_case_insensitively() {
        assert_eq!(parse_mechanism("bittorrent"), Some(MechanismKind::BitTorrent));
        assert_eq!(parse_mechanism("T-Chain"), Some(MechanismKind::TChain));
        assert_eq!(parse_mechanism("tchain"), Some(MechanismKind::TChain));
        assert_eq!(parse_mechanism("FairTorrent"), Some(MechanismKind::FairTorrent));
        assert_eq!(parse_mechanism("nope"), None);
    }

    #[test]
    fn builtins_parse_and_match_their_names() {
        for (name, text) in BUILTIN_SCENARIOS {
            let s = Scenario::parse(text)
                .unwrap_or_else(|e| panic!("built-in '{name}' failed to parse: {e}"));
            assert_eq!(&s.name, name, "built-in file name and spec name differ");
        }
    }

    #[test]
    fn pack_loading_rejects_unknown_sources() {
        let err = load_pack("no-such-scenario").unwrap_err();
        assert!(err.message.contains("flash-crowd-baseline"), "{err}");
    }

    #[test]
    fn mix_spec_validates_and_round_trips() {
        let classes = [
            CapacityClass {
                fraction: 0.25,
                upload_bps: 16_000.0,
            },
            CapacityClass {
                fraction: 0.75,
                upload_bps: 64_000.0,
            },
        ];
        let mix = MixSpec::new(&classes).unwrap();
        assert_eq!(mix.classes(), &classes);
        assert_eq!(mix.to_mix().classes(), &classes);
        assert!(MixSpec::new(&[CapacityClass {
            fraction: 0.5,
            upload_bps: 1.0
        }])
        .is_err());
        // Debug must only show the populated prefix (fingerprint hygiene).
        assert_eq!(format!("{mix:?}").matches("fraction").count(), 2);
    }
}
