//! Typed run specifications for the experiment CLI.
//!
//! [`RunSpec::parse`] turns an argv slice into a validated spec up front,
//! so the dispatch code never sees raw strings: unknown artifacts, unknown
//! flags, and malformed values are all rejected here with errors that name
//! the offending flag.
//!
//! Flag handling is data-driven: [`FLAGS`] is the single table mapping
//! each flag to its value parser, the artifacts it is restricted to, and
//! its deprecation status. The usage text ([`usage`]), per-artifact
//! gating, and gating error messages are all generated from that one
//! table, so they cannot drift apart.

use std::path::PathBuf;
use std::time::Duration;

use coop_faults::FaultPlan;

use crate::exec::Executor;
use crate::scenario;
use crate::telemetry::TelemetryOpts;
use crate::Scale;

/// Which paper artifact (or suite) a run regenerates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // the variants mirror the paper's artifact names
pub enum Artifact {
    Table1,
    Table2,
    Table3,
    Fig1,
    Fig2,
    Fig3,
    Fig4,
    Fig4Churn,
    /// The hot-path scaling sweep (population × mechanism, rounds/sec and
    /// peak-RSS columns). Not part of `all`: its perf artifacts carry
    /// wall-clock data and exist to benchmark the harness, not the paper.
    Fig4Scale,
    Fig5,
    Fig6,
    /// The settlement-cadence sweep (epoch ladder × free-ride attack,
    /// closed-form λ column). Not part of `all`: it studies the repo's
    /// epoch-settled extension, not a paper artifact.
    FigEpoch,
    /// The consensus-reputation defense sweep (adaptive-attacker ladder ×
    /// named ban policies). Not part of `all`: it studies the repo's
    /// consensus extension, not a paper artifact.
    FigConsensus,
    Fluid,
    Ablations,
    Extensions,
    /// Every artifact above except `fig4-scale`, in paper order.
    All,
    /// Declarative scenario packs: `sweep <scenario|spec.json|pack-dir>`
    /// compiles spec files into the simulation grid.
    Sweep,
    /// Compare two `profile.json` snapshots (`perf-diff --baseline A
    /// --current B`): per-phase deltas, tolerance bands, and structural
    /// regression gates. Runs no simulations.
    PerfDiff,
}

/// The artifacts whose simulation jobs are journaled for `--resume`.
const JOURNALED: &[Artifact] = &[
    Artifact::Fig4,
    Artifact::Fig4Churn,
    Artifact::Fig5,
    Artifact::Fig6,
    Artifact::All,
    Artifact::Sweep,
];

impl Artifact {
    /// The individual artifacts, in the order `all` runs them.
    pub const ALL: [Artifact; 13] = [
        Artifact::Table1,
        Artifact::Fig1,
        Artifact::Fig2,
        Artifact::Fig3,
        Artifact::Table2,
        Artifact::Table3,
        Artifact::Fig4,
        Artifact::Fig4Churn,
        Artifact::Fig5,
        Artifact::Fig6,
        Artifact::Fluid,
        Artifact::Ablations,
        Artifact::Extensions,
    ];

    /// Parses a CLI artifact name.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnknownArtifact`] for unrecognized names.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        match s.to_ascii_lowercase().as_str() {
            "table1" => Ok(Artifact::Table1),
            "table2" => Ok(Artifact::Table2),
            "table3" => Ok(Artifact::Table3),
            "fig1" => Ok(Artifact::Fig1),
            "fig2" => Ok(Artifact::Fig2),
            "fig3" => Ok(Artifact::Fig3),
            "fig4" => Ok(Artifact::Fig4),
            "fig4-churn" | "fig4churn" => Ok(Artifact::Fig4Churn),
            "fig4-scale" | "fig4scale" => Ok(Artifact::Fig4Scale),
            "fig5" => Ok(Artifact::Fig5),
            "fig6" => Ok(Artifact::Fig6),
            "fig-epoch" | "figepoch" => Ok(Artifact::FigEpoch),
            "fig-consensus" | "figconsensus" => Ok(Artifact::FigConsensus),
            "fluid" => Ok(Artifact::Fluid),
            "ablations" => Ok(Artifact::Ablations),
            "extensions" => Ok(Artifact::Extensions),
            "all" => Ok(Artifact::All),
            "sweep" => Ok(Artifact::Sweep),
            "perf-diff" | "perfdiff" => Ok(Artifact::PerfDiff),
            other => Err(SpecError::UnknownArtifact(other.to_string())),
        }
    }

    /// The canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Artifact::Table1 => "table1",
            Artifact::Table2 => "table2",
            Artifact::Table3 => "table3",
            Artifact::Fig1 => "fig1",
            Artifact::Fig2 => "fig2",
            Artifact::Fig3 => "fig3",
            Artifact::Fig4 => "fig4",
            Artifact::Fig4Churn => "fig4-churn",
            Artifact::Fig4Scale => "fig4-scale",
            Artifact::Fig5 => "fig5",
            Artifact::Fig6 => "fig6",
            Artifact::FigEpoch => "fig-epoch",
            Artifact::FigConsensus => "fig-consensus",
            Artifact::Fluid => "fluid",
            Artifact::Ablations => "ablations",
            Artifact::Extensions => "extensions",
            Artifact::All => "all",
            Artifact::Sweep => "sweep",
            Artifact::PerfDiff => "perf-diff",
        }
    }

    /// Whether `--replicates` changes what this artifact runs (the
    /// simulation figures and scenario sweeps aggregate over seeds).
    pub fn supports_replicates(self) -> bool {
        matches!(
            self,
            Artifact::Fig4 | Artifact::Fig5 | Artifact::Fig6 | Artifact::Sweep
        )
    }

    /// Whether this artifact's simulation jobs are journaled for
    /// `--resume` (the batch-simulation artifacts; the analytic tables
    /// and figures re-run in milliseconds and need no ledger).
    pub fn supports_resume(self) -> bool {
        JOURNALED.contains(&self)
    }
}

/// A fully validated experiment invocation.
///
/// # Example
///
/// ```
/// use coop_experiments::{RunSpec, Scale};
/// let args = ["fig4", "--scale", "quick", "--replicates", "8", "--jobs", "4"];
/// let spec = RunSpec::parse(args.iter().map(|s| s.to_string())).unwrap();
/// assert_eq!(spec.scale, Scale::Quick);
/// assert_eq!(spec.replicates, 8);
/// assert_eq!(spec.jobs, 4);
/// assert_eq!(spec.seeds(), (42..50).collect::<Vec<_>>());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// What to regenerate.
    pub artifact: Artifact,
    /// Simulation scale (`--scale`, default [`Scale::Default`]).
    pub scale: Scale,
    /// Base RNG seed (`--seed`, default 42).
    pub seed: u64,
    /// Number of seeds to aggregate over (`--replicates`, default 1).
    pub replicates: u64,
    /// Worker-thread budget for independent simulations (`--jobs`,
    /// default = available parallelism).
    pub jobs: usize,
    /// Worker threads *inside* each simulation's round (`--shards`,
    /// default 1 = unsharded). Orthogonal to `--jobs`; artifacts are
    /// byte-identical for any shard count.
    pub shards: usize,
    /// Artifact directory override (`--out-dir`, default
    /// `target/experiments`).
    pub out_dir: Option<PathBuf>,
    /// Record run telemetry — counters, probes, spans, and a
    /// `manifest.json` next to the artifacts (`--telemetry`).
    pub telemetry: bool,
    /// Stream kept trace events to this JSONL file (`--trace-out`,
    /// implies `--telemetry`).
    pub trace_out: Option<PathBuf>,
    /// Round-probe cadence for telemetry (`--probe-every`, default 10).
    pub probe_every: u64,
    /// Profile the round loop's phases and write `profile.json` next to
    /// the artifacts (`--profile`, implies `--telemetry`).
    pub profile: bool,
    /// Profile every K-th batch slot (`--profile-every`, default 1).
    pub profile_every: u64,
    /// Baseline `profile.json` for `perf-diff` (`--baseline FILE`).
    pub baseline: Option<PathBuf>,
    /// Current `profile.json` for `perf-diff` (`--current FILE`).
    pub current: Option<PathBuf>,
    /// Maximum tolerated absolute phase-share drift for `perf-diff`
    /// (`--tolerance`, default 0.25).
    pub tolerance: f64,
    /// Per-round churn departure hazard (`--churn`, fig4-churn only;
    /// deprecated — use a scenario spec's `faults.churn_rate`).
    pub churn: Option<f64>,
    /// Per-transfer message-loss probability (`--loss`, fig4-churn only;
    /// deprecated — use a scenario spec's `faults.loss_prob`).
    pub loss: Option<f64>,
    /// Seeder exits once this fraction of compliant peers completed
    /// (`--seeder-exit`, fig4-churn only; deprecated — use a scenario
    /// spec's `faults.seeder_exit_fraction`).
    pub seeder_exit: Option<f64>,
    /// Population sweep override (`--peers N[,N...]`, fig4-scale only);
    /// `None` means the runner's default sweep.
    pub peers: Option<Vec<usize>>,
    /// The scenario pack to sweep (`sweep <ARG>` positionally or
    /// `--scenario ARG`): a built-in scenario name, a spec file, or a
    /// pack directory.
    pub scenario: Option<String>,
    /// Resume an interrupted run from this artifact directory's journal
    /// (`--resume DIR`; journaled artifacts only, replaces `--out-dir`).
    pub resume: Option<PathBuf>,
    /// Extra attempts for a job that panics or times out (`--retries`,
    /// default 0 = fail after the first attempt).
    pub retries: u64,
    /// Per-attempt watchdog timeout in seconds (`--job-timeout`; `None`
    /// means no watchdog).
    pub job_timeout: Option<u64>,
    /// Mid-run simulation checkpoint cadence in rounds
    /// (`--checkpoint-every`; `None` means no checkpoints).
    pub checkpoint_every: Option<u64>,
    /// Deprecated flags that were actually used, for the CLI's one-line
    /// deprecation notice.
    pub deprecated_flags: Vec<&'static str>,
}

/// Why an argv slice failed to parse into a [`RunSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// `--help` was requested; not a failure.
    Help,
    /// No artifact name was given.
    MissingArtifact,
    /// `sweep` was requested without naming a scenario pack.
    MissingScenario,
    /// The artifact name is not one the harness knows.
    UnknownArtifact(String),
    /// A flag the parser does not recognize.
    UnknownFlag(String),
    /// A flag that requires a value appeared last.
    MissingValue {
        /// The flag missing its value.
        flag: &'static str,
    },
    /// A flag the artifact requires was not given (`perf-diff` needs
    /// `--baseline` and `--current`).
    MissingFlag {
        /// The required flag that was absent.
        flag: &'static str,
    },
    /// A flag value that failed validation.
    InvalidValue {
        /// The flag whose value was rejected.
        flag: &'static str,
        /// The offending value, verbatim.
        value: String,
        /// What a valid value looks like.
        reason: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Help => write!(f, "help requested"),
            SpecError::MissingArtifact => write!(f, "no artifact named"),
            SpecError::MissingScenario => write!(
                f,
                "sweep requires a scenario: a built-in name ({}), a spec file, or a pack directory",
                scenario::builtin_names().join(", ")
            ),
            SpecError::UnknownArtifact(name) => {
                write!(f, "unknown artifact '{name}'")
            }
            SpecError::UnknownFlag(flag) => write!(f, "unknown flag '{flag}'"),
            SpecError::MissingValue { flag } => {
                write!(f, "flag '{flag}' requires a value")
            }
            SpecError::MissingFlag { flag } => {
                write!(f, "required flag '{flag}' was not provided")
            }
            SpecError::InvalidValue { flag, value, reason } => {
                write!(f, "invalid value '{value}' for '{flag}': {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Parse-time accumulator: [`RunSpec`] fields with the artifact still
/// optional. The [`FLAGS`] setters mutate this.
struct Draft {
    artifact: Option<Artifact>,
    scale: Scale,
    seed: u64,
    replicates: u64,
    jobs: usize,
    shards: usize,
    out_dir: Option<PathBuf>,
    telemetry: bool,
    trace_out: Option<PathBuf>,
    probe_every: u64,
    profile: bool,
    profile_every: u64,
    baseline: Option<PathBuf>,
    current: Option<PathBuf>,
    tolerance: f64,
    churn: Option<f64>,
    loss: Option<f64>,
    seeder_exit: Option<f64>,
    peers: Option<Vec<usize>>,
    scenario: Option<String>,
    resume: Option<PathBuf>,
    retries: u64,
    job_timeout: Option<u64>,
    checkpoint_every: Option<u64>,
    deprecated_flags: Vec<&'static str>,
}

impl Draft {
    fn new() -> Self {
        Draft {
            artifact: None,
            scale: Scale::Default,
            seed: 42,
            replicates: 1,
            jobs: Executor::default().jobs(),
            shards: 1,
            out_dir: None,
            telemetry: false,
            trace_out: None,
            probe_every: 10,
            profile: false,
            profile_every: 1,
            baseline: None,
            current: None,
            tolerance: 0.25,
            churn: None,
            loss: None,
            seeder_exit: None,
            peers: None,
            scenario: None,
            resume: None,
            retries: 0,
            job_timeout: None,
            checkpoint_every: None,
            deprecated_flags: Vec::new(),
        }
    }
}

/// Argument iterator type the flag setters consume values from.
type Args<'a> = &'a mut dyn Iterator<Item = String>;

/// One CLI flag: its name, value syntax, artifact gating, deprecation
/// status, and value parser. [`usage`], the parse loop, and the
/// per-artifact gating pass are all driven by this table alone.
struct FlagDef {
    /// The flag as typed (`"--scale"`).
    name: &'static str,
    /// Metavariable shown in usage, `None` for boolean flags.
    metavar: Option<&'static str>,
    /// Artifacts the flag is restricted to; `None` = available
    /// everywhere. Gating errors list these names.
    only: Option<&'static [Artifact]>,
    /// Deprecated flags still parse, but the CLI prints a pointer to the
    /// replacement and `usage` annotates them.
    deprecated: bool,
    /// Parses the flag's value(s) into the draft.
    set: fn(&mut Draft, Args<'_>) -> Result<(), SpecError>,
    /// Whether the flag was used — consulted for gating.
    is_set: fn(&Draft) -> bool,
}

fn set_scale(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    let v = next_value(it, "--scale")?;
    d.scale = Scale::parse(&v).map_err(|_| SpecError::InvalidValue {
        flag: "--scale",
        value: v,
        reason: "expected quick, default, or paper".to_string(),
    })?;
    Ok(())
}

fn set_seed(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.seed = parse_number(it, "--seed", 0)?;
    Ok(())
}

fn set_replicates(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.replicates = parse_number(it, "--replicates", 1)?;
    Ok(())
}

fn set_jobs(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.jobs = usize::try_from(parse_number(it, "--jobs", 1)?).expect("validated above");
    Ok(())
}

fn set_shards(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.shards = usize::try_from(parse_number(it, "--shards", 1)?).expect("validated above");
    Ok(())
}

fn set_out_dir(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.out_dir = Some(PathBuf::from(next_value(it, "--out-dir")?));
    Ok(())
}

fn set_telemetry(d: &mut Draft, _it: Args<'_>) -> Result<(), SpecError> {
    d.telemetry = true;
    Ok(())
}

fn set_trace_out(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.trace_out = Some(PathBuf::from(next_value(it, "--trace-out")?));
    Ok(())
}

fn set_probe_every(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.probe_every = parse_number(it, "--probe-every", 1)?;
    Ok(())
}

fn set_profile(d: &mut Draft, _it: Args<'_>) -> Result<(), SpecError> {
    d.profile = true;
    Ok(())
}

fn set_profile_every(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.profile_every = parse_number(it, "--profile-every", 1)?;
    Ok(())
}

fn set_baseline(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.baseline = Some(PathBuf::from(next_value(it, "--baseline")?));
    Ok(())
}

fn set_current(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.current = Some(PathBuf::from(next_value(it, "--current")?));
    Ok(())
}

fn set_tolerance(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.tolerance = parse_float(it, "--tolerance", 1.0)?;
    Ok(())
}

fn set_retries(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.retries = parse_number(it, "--retries", 0)?;
    Ok(())
}

fn set_job_timeout(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.job_timeout = Some(parse_number(it, "--job-timeout", 1)?);
    Ok(())
}

fn set_checkpoint_every(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.checkpoint_every = Some(parse_number(it, "--checkpoint-every", 1)?);
    Ok(())
}

fn set_resume(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.resume = Some(PathBuf::from(next_value(it, "--resume")?));
    Ok(())
}

fn set_scenario(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.scenario = Some(next_value(it, "--scenario")?);
    Ok(())
}

fn set_peers(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.peers = Some(parse_peer_list(it)?);
    Ok(())
}

fn set_churn(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.churn = Some(parse_float(it, "--churn", 1.0)?);
    Ok(())
}

fn set_loss(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    d.loss = Some(parse_float(it, "--loss", 1.0)?);
    Ok(())
}

fn set_seeder_exit(d: &mut Draft, it: Args<'_>) -> Result<(), SpecError> {
    let v = parse_float(it, "--seeder-exit", 1.0)?;
    if v <= 0.0 {
        return Err(SpecError::InvalidValue {
            flag: "--seeder-exit",
            value: format!("{v}"),
            reason: "must be in (0, 1]".to_string(),
        });
    }
    d.seeder_exit = Some(v);
    Ok(())
}

/// The one flag table: declaration order is usage order.
static FLAGS: &[FlagDef] = &[
    FlagDef {
        name: "--scale",
        metavar: Some("quick|default|paper"),
        only: None,
        deprecated: false,
        set: set_scale,
        is_set: |_| false,
    },
    FlagDef {
        name: "--seed",
        metavar: Some("N"),
        only: None,
        deprecated: false,
        set: set_seed,
        is_set: |_| false,
    },
    FlagDef {
        name: "--replicates",
        metavar: Some("N"),
        only: None,
        deprecated: false,
        set: set_replicates,
        is_set: |_| false,
    },
    FlagDef {
        name: "--jobs",
        metavar: Some("N"),
        only: None,
        deprecated: false,
        set: set_jobs,
        is_set: |_| false,
    },
    FlagDef {
        name: "--shards",
        metavar: Some("K"),
        only: None,
        deprecated: false,
        set: set_shards,
        is_set: |_| false,
    },
    FlagDef {
        name: "--out-dir",
        metavar: Some("DIR"),
        only: None,
        deprecated: false,
        set: set_out_dir,
        is_set: |_| false,
    },
    FlagDef {
        name: "--telemetry",
        metavar: None,
        only: None,
        deprecated: false,
        set: set_telemetry,
        is_set: |_| false,
    },
    FlagDef {
        name: "--trace-out",
        metavar: Some("FILE"),
        only: None,
        deprecated: false,
        set: set_trace_out,
        is_set: |_| false,
    },
    FlagDef {
        name: "--probe-every",
        metavar: Some("N"),
        only: None,
        deprecated: false,
        set: set_probe_every,
        is_set: |_| false,
    },
    FlagDef {
        name: "--profile",
        metavar: None,
        only: None,
        deprecated: false,
        set: set_profile,
        is_set: |_| false,
    },
    FlagDef {
        name: "--profile-every",
        metavar: Some("K"),
        only: None,
        deprecated: false,
        set: set_profile_every,
        is_set: |_| false,
    },
    FlagDef {
        name: "--retries",
        metavar: Some("N"),
        only: None,
        deprecated: false,
        set: set_retries,
        is_set: |_| false,
    },
    FlagDef {
        name: "--job-timeout",
        metavar: Some("SECS"),
        only: None,
        deprecated: false,
        set: set_job_timeout,
        is_set: |_| false,
    },
    FlagDef {
        name: "--checkpoint-every",
        metavar: Some("ROUNDS"),
        only: None,
        deprecated: false,
        set: set_checkpoint_every,
        is_set: |_| false,
    },
    FlagDef {
        name: "--resume",
        metavar: Some("DIR"),
        only: Some(JOURNALED),
        deprecated: false,
        set: set_resume,
        is_set: |d| d.resume.is_some(),
    },
    FlagDef {
        name: "--scenario",
        metavar: Some("NAME|FILE|DIR"),
        only: Some(&[Artifact::Sweep]),
        deprecated: false,
        set: set_scenario,
        is_set: |d| d.scenario.is_some(),
    },
    FlagDef {
        name: "--peers",
        metavar: Some("N[,N...]"),
        only: Some(&[Artifact::Fig4Scale, Artifact::FigConsensus]),
        deprecated: false,
        set: set_peers,
        is_set: |d| d.peers.is_some(),
    },
    FlagDef {
        name: "--baseline",
        metavar: Some("FILE"),
        only: Some(&[Artifact::PerfDiff]),
        deprecated: false,
        set: set_baseline,
        is_set: |d| d.baseline.is_some(),
    },
    FlagDef {
        name: "--current",
        metavar: Some("FILE"),
        only: Some(&[Artifact::PerfDiff]),
        deprecated: false,
        set: set_current,
        is_set: |d| d.current.is_some(),
    },
    FlagDef {
        name: "--tolerance",
        metavar: Some("SHARE"),
        only: Some(&[Artifact::PerfDiff]),
        deprecated: false,
        set: set_tolerance,
        is_set: |d| d.tolerance != 0.25,
    },
    FlagDef {
        name: "--churn",
        metavar: Some("RATE"),
        only: Some(&[Artifact::Fig4Churn]),
        deprecated: true,
        set: set_churn,
        is_set: |d| d.churn.is_some(),
    },
    FlagDef {
        name: "--loss",
        metavar: Some("PROB"),
        only: Some(&[Artifact::Fig4Churn]),
        deprecated: true,
        set: set_loss,
        is_set: |d| d.loss.is_some(),
    },
    FlagDef {
        name: "--seeder-exit",
        metavar: Some("FRACTION"),
        only: Some(&[Artifact::Fig4Churn]),
        deprecated: true,
        set: set_seeder_exit,
        is_set: |d| d.seeder_exit.is_some(),
    },
];

/// The usage text, generated from [`FLAGS`] so it can never drift from
/// the parser: ungated flags first, then one line per gated group with
/// the allowed artifacts (and deprecation) annotated.
pub fn usage() -> String {
    let artifacts: Vec<&str> = Artifact::ALL
        .iter()
        .map(|a| a.name())
        .chain(["fig4-scale", "fig-epoch", "fig-consensus", "all"])
        .collect();
    let mut out = format!(
        "usage: coop-experiments <{}>\n       coop-experiments sweep <scenario|spec.json|pack-dir>\n       coop-experiments perf-diff --baseline FILE --current FILE [--tolerance SHARE]",
        artifacts.join("|")
    );

    // Ungated flags, wrapped.
    let mut line = String::new();
    for flag in FLAGS.iter().filter(|f| f.only.is_none()) {
        let piece = match flag.metavar {
            Some(mv) => format!("[{} {mv}]", flag.name),
            None => format!("[{}]", flag.name),
        };
        if line.len() + piece.len() + 1 > 68 && !line.is_empty() {
            out.push_str("\n       ");
            out.push_str(&line);
            line.clear();
        }
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(&piece);
    }
    if !line.is_empty() {
        out.push_str("\n       ");
        out.push_str(&line);
    }

    // Gated flags, one line per (artifact set, deprecation) group in
    // first-seen order.
    let mut groups: Vec<(&[Artifact], bool, Vec<String>)> = Vec::new();
    for flag in FLAGS.iter() {
        let Some(only) = flag.only else { continue };
        let piece = match flag.metavar {
            Some(mv) => format!("[{} {mv}]", flag.name),
            None => format!("[{}]", flag.name),
        };
        match groups
            .iter_mut()
            .find(|(o, d, _)| std::ptr::eq(*o, only) && *d == flag.deprecated)
        {
            Some((_, _, pieces)) => pieces.push(piece),
            None => groups.push((only, flag.deprecated, vec![piece])),
        }
    }
    for (only, deprecated, pieces) in groups {
        let names: Vec<&str> = only.iter().map(|a| a.name()).collect();
        let note = if deprecated {
            "; deprecated — use a scenario spec"
        } else {
            ""
        };
        out.push_str(&format!(
            "\n       {}  ({}{note})",
            pieces.join(" "),
            names.join("|")
        ));
    }
    out
}

impl RunSpec {
    /// Parses CLI arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending flag or artifact;
    /// [`SpecError::Help`] when `--help`/`-h` is present.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, SpecError> {
        let mut draft = Draft::new();
        let mut it = args.into_iter();
        'args: while let Some(arg) = it.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(SpecError::Help),
                other if other.starts_with('-') => {
                    for flag in FLAGS {
                        if flag.name == other {
                            (flag.set)(&mut draft, &mut it)?;
                            if flag.deprecated {
                                draft.deprecated_flags.push(flag.name);
                            }
                            continue 'args;
                        }
                    }
                    return Err(SpecError::UnknownFlag(other.to_string()));
                }
                other if draft.artifact.is_none() => {
                    draft.artifact = Some(Artifact::parse(other)?);
                }
                other
                    if draft.artifact == Some(Artifact::Sweep)
                        && draft.scenario.is_none() =>
                {
                    // `sweep`'s second positional names the scenario pack.
                    draft.scenario = Some(other.to_string());
                }
                other => {
                    // A second positional argument: almost always a typo'd
                    // flag value, so report it as an unknown flag.
                    return Err(SpecError::UnknownFlag(other.to_string()));
                }
            }
        }
        let artifact = draft.artifact.ok_or(SpecError::MissingArtifact)?;

        // Per-artifact gating, generated from the same table the parser
        // and usage text use.
        for flag in FLAGS {
            if let Some(only) = flag.only {
                if (flag.is_set)(&draft) && !only.contains(&artifact) {
                    let allowed: Vec<&str> = only.iter().map(|a| a.name()).collect();
                    return Err(SpecError::InvalidValue {
                        flag: flag.name,
                        value: artifact.name().to_string(),
                        reason: format!(
                            "{} is only supported by {}",
                            flag.name,
                            allowed.join(", ")
                        ),
                    });
                }
            }
        }
        if artifact == Artifact::Sweep && draft.scenario.is_none() {
            return Err(SpecError::MissingScenario);
        }
        if artifact == Artifact::PerfDiff {
            if draft.baseline.is_none() {
                return Err(SpecError::MissingFlag { flag: "--baseline" });
            }
            if draft.current.is_none() {
                return Err(SpecError::MissingFlag { flag: "--current" });
            }
        }
        if draft.resume.is_some() {
            if let Some(dir) = &draft.out_dir {
                return Err(SpecError::InvalidValue {
                    flag: "--resume",
                    value: dir.display().to_string(),
                    reason: "--resume already names the artifact directory; \
                             do not also pass --out-dir"
                        .to_string(),
                });
            }
        }
        Ok(RunSpec {
            artifact,
            scale: draft.scale,
            seed: draft.seed,
            replicates: draft.replicates,
            jobs: draft.jobs,
            shards: draft.shards,
            out_dir: draft.out_dir,
            telemetry: draft.telemetry,
            trace_out: draft.trace_out,
            probe_every: draft.probe_every,
            profile: draft.profile,
            profile_every: draft.profile_every,
            baseline: draft.baseline,
            current: draft.current,
            tolerance: draft.tolerance,
            churn: draft.churn,
            loss: draft.loss,
            seeder_exit: draft.seeder_exit,
            peers: draft.peers,
            scenario: draft.scenario,
            resume: draft.resume,
            retries: draft.retries,
            job_timeout: draft.job_timeout,
            checkpoint_every: draft.checkpoint_every,
            deprecated_flags: draft.deprecated_flags,
        })
    }

    /// The seed list implied by `seed` and `replicates` (consecutive).
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.replicates).map(|i| self.seed + i).collect()
    }

    /// An [`Executor`] sized to this spec's `--jobs` and `--shards` and
    /// carrying its robustness policy (`--retries`, `--job-timeout`,
    /// `--checkpoint-every`). Journal/replay wiring is the caller's job —
    /// it needs the artifact directory.
    pub fn executor(&self) -> Executor {
        let mut executor = Executor::new(self.jobs)
            .with_shards(self.shards)
            .with_retries(self.retries);
        if let Some(secs) = self.job_timeout {
            executor = executor.with_job_timeout(Duration::from_secs(secs));
        }
        if let Some(every) = self.checkpoint_every {
            executor = executor.with_checkpoint_every(every);
        }
        executor
    }

    /// The base fault plan implied by the deprecated `--churn`, `--loss`
    /// and `--seeder-exit` flags, or `None` when no fault flag was given
    /// (the fig4-churn runner then uses its default sweep).
    ///
    /// The flags compile through the same scenario-spec `faults` fragment
    /// a spec file would use, so their behavior is pinned to the
    /// declarative path byte-for-byte.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        scenario::legacy_fault_fragment(self.churn, self.loss, self.seeder_exit)
    }

    /// One-line deprecation notice for any deprecated flags used, or
    /// `None` when the invocation is clean.
    pub fn deprecation_notice(&self) -> Option<String> {
        if self.deprecated_flags.is_empty() {
            return None;
        }
        let verb = if self.deprecated_flags.len() == 1 { "is" } else { "are" };
        Some(format!(
            "note: {} {verb} deprecated; declare faults in a scenario spec and run \
             `coop-experiments sweep <spec.json>` (behavior and artifacts are unchanged)",
            self.deprecated_flags.join("/")
        ))
    }

    /// The telemetry options implied by `--telemetry`, `--trace-out`,
    /// `--probe-every`, `--profile`, and `--profile-every`.
    pub fn telemetry_opts(&self) -> TelemetryOpts {
        TelemetryOpts {
            enabled: self.telemetry,
            trace_out: self.trace_out.clone(),
            probe_every: self.probe_every,
            profile: self.profile,
            profile_every: self.profile_every,
        }
    }
}

/// Pulls the next argument as `flag`'s value.
fn next_value(it: Args<'_>, flag: &'static str) -> Result<String, SpecError> {
    it.next().ok_or(SpecError::MissingValue { flag })
}

/// Parses `flag`'s value as an integer no smaller than `min`.
fn parse_number(it: Args<'_>, flag: &'static str, min: u64) -> Result<u64, SpecError> {
    let v = next_value(it, flag)?;
    match v.parse::<u64>() {
        Ok(n) if n >= min => Ok(n),
        Ok(_) => Err(SpecError::InvalidValue {
            flag,
            value: v,
            reason: format!("must be at least {min}"),
        }),
        Err(_) => Err(SpecError::InvalidValue {
            flag,
            value: v,
            reason: "expected a non-negative integer".to_string(),
        }),
    }
}

/// Parses `--peers`' value as a comma-separated population list (each at
/// least 2 — a swarm needs a downloader besides the seeder).
fn parse_peer_list(it: Args<'_>) -> Result<Vec<usize>, SpecError> {
    let v = next_value(it, "--peers")?;
    let invalid = |v: &str| SpecError::InvalidValue {
        flag: "--peers",
        value: v.to_string(),
        reason: "expected a comma-separated list of populations, each at least 2".to_string(),
    };
    let mut list = Vec::new();
    for part in v.split(',') {
        match part.trim().parse::<usize>() {
            Ok(n) if n >= 2 => list.push(n),
            _ => return Err(invalid(&v)),
        }
    }
    if list.is_empty() {
        return Err(invalid(&v));
    }
    Ok(list)
}

/// Parses `flag`'s value as a finite float in `[0, max]`.
fn parse_float(it: Args<'_>, flag: &'static str, max: f64) -> Result<f64, SpecError> {
    let v = next_value(it, flag)?;
    match v.parse::<f64>() {
        Ok(x) if x.is_finite() && (0.0..=max).contains(&x) => Ok(x),
        Ok(_) => Err(SpecError::InvalidValue {
            flag,
            value: v,
            reason: format!("must be a finite number in [0, {max}]"),
        }),
        Err(_) => Err(SpecError::InvalidValue {
            flag,
            value: v,
            reason: "expected a number".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunSpec, SpecError> {
        RunSpec::parse(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_full_flag_set() {
        let spec = parse(&[
            "fig5", "--scale", "paper", "--seed", "7", "--replicates", "3", "--jobs", "2",
            "--out-dir", "out/x",
        ])
        .unwrap();
        assert_eq!(spec.artifact, Artifact::Fig5);
        assert_eq!(spec.scale, Scale::Paper);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.replicates, 3);
        assert_eq!(spec.jobs, 2);
        assert_eq!(spec.out_dir.as_deref(), Some(std::path::Path::new("out/x")));
        assert_eq!(spec.seeds(), vec![7, 8, 9]);
        assert_eq!(spec.executor().jobs(), 2);
    }

    #[test]
    fn shards_parses_and_sizes_the_executor() {
        let spec = parse(&["fig4", "--shards", "4"]).unwrap();
        assert_eq!(spec.shards, 4);
        assert_eq!(spec.executor().shards(), 4);
        let err = parse(&["fig4", "--shards", "0"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--shards", .. }),
            "{err:?}"
        );
        let err = parse(&["fig4", "--shards"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--shards" });
    }

    #[test]
    fn defaults_are_sensible() {
        let spec = parse(&["table2"]).unwrap();
        assert_eq!(spec.artifact, Artifact::Table2);
        assert_eq!(spec.scale, Scale::Default);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.replicates, 1);
        assert!(spec.jobs >= 1, "jobs defaults to available parallelism");
        assert_eq!(spec.shards, 1, "rounds are unsharded by default");
        assert_eq!(spec.out_dir, None);
        assert!(!spec.telemetry);
        assert_eq!(spec.trace_out, None);
        assert_eq!(spec.probe_every, 10);
        assert!(!spec.telemetry_opts().is_enabled());
        assert!(spec.deprecated_flags.is_empty());
        assert_eq!(spec.deprecation_notice(), None);
    }

    #[test]
    fn telemetry_flags_parse() {
        let spec = parse(&[
            "fig4",
            "--telemetry",
            "--trace-out",
            "out/trace.jsonl",
            "--probe-every",
            "5",
        ])
        .unwrap();
        assert!(spec.telemetry);
        assert_eq!(
            spec.trace_out.as_deref(),
            Some(std::path::Path::new("out/trace.jsonl"))
        );
        assert_eq!(spec.probe_every, 5);
        let opts = spec.telemetry_opts();
        assert!(opts.is_enabled());
        assert_eq!(opts.recorder_config().probe_every, 5);

        // --trace-out alone implies telemetry.
        let spec = parse(&["fig4", "--trace-out", "t.jsonl"]).unwrap();
        assert!(!spec.telemetry);
        assert!(spec.telemetry_opts().is_enabled());
    }

    #[test]
    fn telemetry_flag_errors_are_named() {
        let err = parse(&["fig4", "--trace-out"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--trace-out" });

        let err = parse(&["fig4", "--probe-every"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--probe-every" });

        let err = parse(&["fig4", "--probe-every", "0"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--probe-every", .. }),
            "{err:?}"
        );

        let err = parse(&["fig4", "--probe-every", "often"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--probe-every") && msg.contains("often"), "{msg}");

        // A typo'd telemetry flag is still an unknown flag.
        let err = parse(&["fig4", "--telemetri"]).unwrap_err();
        assert_eq!(err, SpecError::UnknownFlag("--telemetri".to_string()));
    }

    #[test]
    fn fault_flags_parse_into_a_plan() {
        let spec = parse(&[
            "fig4-churn",
            "--churn",
            "0.02",
            "--loss",
            "0.1",
            "--seeder-exit",
            "0.5",
        ])
        .unwrap();
        assert_eq!(spec.artifact, Artifact::Fig4Churn);
        let plan = spec.fault_plan().unwrap();
        assert_eq!(plan.churn_rate, 0.02);
        assert_eq!(plan.loss_prob, 0.1);
        assert_eq!(plan.seeder_exit_fraction, Some(0.5));
        assert!(plan.fixed_lifetime_rounds.is_none());

        // No fault flags: the runner picks its default sweep.
        let spec = parse(&["fig4-churn"]).unwrap();
        assert_eq!(spec.fault_plan(), None);
    }

    #[test]
    fn fault_flags_are_marked_deprecated() {
        let spec = parse(&["fig4-churn", "--churn", "0.02", "--loss", "0.1"]).unwrap();
        assert_eq!(spec.deprecated_flags, vec!["--churn", "--loss"]);
        let notice = spec.deprecation_notice().unwrap();
        assert!(notice.contains("--churn/--loss"), "{notice}");
        assert!(notice.contains("sweep"), "{notice}");
        assert!(notice.contains("unchanged"), "{notice}");
    }

    #[test]
    fn fault_flag_values_are_validated() {
        let err = parse(&["fig4-churn", "--loss", "1.5"]).unwrap_err();
        assert!(matches!(err, SpecError::InvalidValue { flag: "--loss", .. }), "{err:?}");

        let err = parse(&["fig4-churn", "--churn", "NaN"]).unwrap_err();
        assert!(matches!(err, SpecError::InvalidValue { flag: "--churn", .. }), "{err:?}");

        let err = parse(&["fig4-churn", "--seeder-exit", "0"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--seeder-exit", .. }),
            "{err:?}"
        );

        let err = parse(&["fig4-churn", "--churn"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--churn" });
    }

    #[test]
    fn fault_flags_rejected_for_other_artifacts() {
        let err = parse(&["fig4", "--churn", "0.02"]).unwrap_err();
        assert!(matches!(err, SpecError::InvalidValue { flag: "--churn", .. }), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("fig4-churn"), "{msg}");
    }

    #[test]
    fn flags_may_precede_the_artifact() {
        let spec = parse(&["--seed", "9", "fig4"]).unwrap();
        assert_eq!(spec.artifact, Artifact::Fig4);
        assert_eq!(spec.seed, 9);
    }

    #[test]
    fn unknown_flag_is_named() {
        let err = parse(&["fig4", "--speed", "11"]).unwrap_err();
        assert_eq!(err, SpecError::UnknownFlag("--speed".to_string()));
        assert!(err.to_string().contains("--speed"));
    }

    #[test]
    fn invalid_values_name_the_flag() {
        let err = parse(&["fig4", "--seed", "banana"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--seed") && msg.contains("banana"), "{msg}");

        let err = parse(&["fig4", "--scale", "huge"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--scale") && msg.contains("huge"), "{msg}");

        let err = parse(&["fig4", "--replicates", "0"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--replicates", .. }),
            "{err:?}"
        );

        let err = parse(&["fig4", "--jobs", "0"]).unwrap_err();
        assert!(matches!(err, SpecError::InvalidValue { flag: "--jobs", .. }), "{err:?}");
    }

    #[test]
    fn dangling_flag_reports_missing_value() {
        let err = parse(&["fig4", "--jobs"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--jobs" });
        assert!(err.to_string().contains("--jobs"));
    }

    #[test]
    fn missing_and_unknown_artifacts() {
        assert_eq!(parse(&[]).unwrap_err(), SpecError::MissingArtifact);
        assert_eq!(
            parse(&["fig9"]).unwrap_err(),
            SpecError::UnknownArtifact("fig9".to_string())
        );
        assert_eq!(
            parse(&["fig4", "stray"]).unwrap_err(),
            SpecError::UnknownFlag("stray".to_string())
        );
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["fig4", "--help"]).unwrap_err(), SpecError::Help);
        assert_eq!(parse(&["-h"]).unwrap_err(), SpecError::Help);
    }

    #[test]
    fn artifact_names_round_trip() {
        // fig4-scale, fig-epoch and sweep are parseable but deliberately
        // not part of `all`.
        for artifact in Artifact::ALL.into_iter().chain([
            Artifact::Fig4Scale,
            Artifact::FigEpoch,
            Artifact::FigConsensus,
            Artifact::All,
            Artifact::Sweep,
            Artifact::PerfDiff,
        ]) {
            assert_eq!(Artifact::parse(artifact.name()).unwrap(), artifact);
        }
        assert!(!Artifact::ALL.contains(&Artifact::Fig4Scale));
        assert!(!Artifact::ALL.contains(&Artifact::FigEpoch));
        assert!(!Artifact::ALL.contains(&Artifact::FigConsensus));
        assert!(!Artifact::ALL.contains(&Artifact::Sweep));
        assert!(!Artifact::ALL.contains(&Artifact::PerfDiff));
        assert_eq!(Artifact::parse("figepoch").unwrap(), Artifact::FigEpoch);
        assert!(Artifact::Fig4.supports_replicates());
        assert!(Artifact::Sweep.supports_replicates());
        assert!(!Artifact::Table1.supports_replicates());
        assert!(!Artifact::Fig4Scale.supports_replicates());
        assert!(!Artifact::PerfDiff.supports_replicates());
    }

    #[test]
    fn profile_flags_parse_and_flow_into_telemetry_opts() {
        let spec = parse(&["fig4", "--profile", "--profile-every", "3"]).unwrap();
        assert!(spec.profile);
        assert_eq!(spec.profile_every, 3);
        let opts = spec.telemetry_opts();
        assert!(opts.is_enabled(), "--profile implies telemetry");
        assert!(opts.profile_due(0) && !opts.profile_due(1) && opts.profile_due(3));
        let plain = parse(&["fig4"]).unwrap();
        assert!(!plain.profile);
        assert_eq!(plain.profile_every, 1);
        assert!(!plain.telemetry_opts().is_enabled());
    }

    #[test]
    fn perf_diff_requires_both_snapshots() {
        let spec = parse(&[
            "perf-diff",
            "--baseline",
            "a/profile.json",
            "--current",
            "b/profile.json",
            "--tolerance",
            "0.1",
        ])
        .unwrap();
        assert_eq!(spec.artifact, Artifact::PerfDiff);
        assert_eq!(
            spec.baseline.as_deref(),
            Some(std::path::Path::new("a/profile.json"))
        );
        assert_eq!(
            spec.current.as_deref(),
            Some(std::path::Path::new("b/profile.json"))
        );
        assert!((spec.tolerance - 0.1).abs() < 1e-12);
        assert!(matches!(
            parse(&["perf-diff", "--current", "b/profile.json"]),
            Err(SpecError::MissingFlag { flag: "--baseline" })
        ));
        assert!(matches!(
            parse(&["perf-diff", "--baseline", "a/profile.json"]),
            Err(SpecError::MissingFlag { flag: "--current" })
        ));
        // The comparison flags are gated to perf-diff.
        assert!(parse(&["fig4", "--baseline", "a/profile.json"]).is_err());
    }

    #[test]
    fn sweep_takes_a_positional_or_flag_scenario() {
        let spec = parse(&["sweep", "flash-crowd-baseline"]).unwrap();
        assert_eq!(spec.artifact, Artifact::Sweep);
        assert_eq!(spec.scenario.as_deref(), Some("flash-crowd-baseline"));

        let spec = parse(&["sweep", "--scenario", "packs/night"]).unwrap();
        assert_eq!(spec.scenario.as_deref(), Some("packs/night"));

        // Flags mix freely with the positional form.
        let spec = parse(&["sweep", "pack.json", "--scale", "quick"]).unwrap();
        assert_eq!(spec.scenario.as_deref(), Some("pack.json"));
        assert_eq!(spec.scale, Scale::Quick);
    }

    #[test]
    fn sweep_without_a_scenario_is_an_error() {
        assert_eq!(parse(&["sweep"]).unwrap_err(), SpecError::MissingScenario);
        let msg = SpecError::MissingScenario.to_string();
        assert!(msg.contains("flash-crowd-baseline"), "{msg}");
    }

    #[test]
    fn scenario_flag_rejected_for_other_artifacts() {
        let err = parse(&["fig4", "--scenario", "x.json"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--scenario", .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("sweep"));
    }

    #[test]
    fn sweep_resumes_and_replicates() {
        let spec = parse(&["sweep", "p.json", "--resume", "out/run1"]).unwrap();
        assert!(spec.artifact.supports_resume());
        assert_eq!(spec.resume.as_deref(), Some(std::path::Path::new("out/run1")));
    }

    #[test]
    fn peer_lists_parse_for_fig4_scale() {
        let spec = parse(&["fig4-scale", "--peers", "1000,2000,5000"]).unwrap();
        assert_eq!(spec.artifact, Artifact::Fig4Scale);
        assert_eq!(spec.peers, Some(vec![1000, 2000, 5000]));

        let spec = parse(&["fig4scale", "--peers", "64"]).unwrap();
        assert_eq!(spec.peers, Some(vec![64]));

        // Without the flag the runner picks its default sweep.
        let spec = parse(&["fig4-scale"]).unwrap();
        assert_eq!(spec.peers, None);
    }

    #[test]
    fn peer_list_values_are_validated() {
        for bad in ["", "0", "1", "abc", "100,", "100,,200", "100,x"] {
            let err = parse(&["fig4-scale", "--peers", bad]).unwrap_err();
            assert!(
                matches!(err, SpecError::InvalidValue { flag: "--peers", .. }),
                "{bad:?}: {err:?}"
            );
        }
        let err = parse(&["fig4-scale", "--peers"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--peers" });
    }

    #[test]
    fn robustness_flags_parse_and_configure_the_executor() {
        let spec = parse(&[
            "fig4",
            "--retries",
            "2",
            "--job-timeout",
            "90",
            "--checkpoint-every",
            "50",
        ])
        .unwrap();
        assert_eq!(spec.retries, 2);
        assert_eq!(spec.job_timeout, Some(90));
        assert_eq!(spec.checkpoint_every, Some(50));
        let executor = spec.executor();
        assert_eq!(executor.retries(), 2);
        assert_eq!(executor.job_timeout(), Some(Duration::from_secs(90)));
        assert_eq!(executor.checkpoint_every(), Some(50));

        // Defaults: fail-fast, no watchdog, no checkpoints.
        let spec = parse(&["fig4"]).unwrap();
        assert_eq!(spec.retries, 0);
        assert_eq!(spec.job_timeout, None);
        assert_eq!(spec.checkpoint_every, None);
        let executor = spec.executor();
        assert_eq!(executor.retries(), 0);
        assert_eq!(executor.job_timeout(), None);
        assert_eq!(executor.checkpoint_every(), None);
    }

    #[test]
    fn robustness_flag_errors_are_named() {
        let err = parse(&["fig4", "--retries"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--retries" });
        assert!(err.to_string().contains("--retries"));

        let err = parse(&["fig4", "--retries", "many"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--retries") && msg.contains("many"), "{msg}");

        let err = parse(&["fig4", "--job-timeout"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--job-timeout" });

        let err = parse(&["fig4", "--job-timeout", "0"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--job-timeout", .. }),
            "{err:?}"
        );

        let err = parse(&["fig4", "--job-timeout", "soon"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--job-timeout") && msg.contains("soon"), "{msg}");

        let err = parse(&["fig4", "--checkpoint-every"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--checkpoint-every" });

        let err = parse(&["fig4", "--checkpoint-every", "0"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--checkpoint-every", .. }),
            "{err:?}"
        );

        let err = parse(&["fig4", "--checkpoint-every", "x"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--checkpoint-every") && msg.contains("x"), "{msg}");
    }

    #[test]
    fn resume_parses_for_journaled_artifacts() {
        for artifact in ["fig4", "fig4-churn", "fig5", "fig6", "all"] {
            let spec = parse(&[artifact, "--resume", "out/run1"]).unwrap();
            assert_eq!(
                spec.resume.as_deref(),
                Some(std::path::Path::new("out/run1")),
                "{artifact}"
            );
            assert!(spec.artifact.supports_resume());
        }
        let spec = parse(&["fig4"]).unwrap();
        assert_eq!(spec.resume, None);
    }

    #[test]
    fn resume_errors_are_named() {
        let err = parse(&["fig4", "--resume"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--resume" });
        assert!(err.to_string().contains("--resume"));

        // Non-journaled artifacts reject it, naming both sides.
        let err = parse(&["table1", "--resume", "out/run1"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--resume", .. }),
            "{err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("--resume") && msg.contains("table1"), "{msg}");

        // --resume and --out-dir are mutually exclusive.
        let err = parse(&["fig4", "--resume", "out/run1", "--out-dir", "out/x"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--resume", .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("--out-dir"));
    }

    #[test]
    fn peers_flag_rejected_for_other_artifacts() {
        let err = parse(&["fig4", "--peers", "1000"]).unwrap_err();
        assert!(matches!(err, SpecError::InvalidValue { flag: "--peers", .. }), "{err:?}");
        assert!(err.to_string().contains("fig4-scale"));
    }

    #[test]
    fn usage_is_generated_from_the_flag_table() {
        let text = usage();
        // Every flag in the table appears exactly as typed.
        for flag in super::FLAGS {
            assert!(text.contains(flag.name), "usage is missing {}", flag.name);
        }
        // Gated groups name their artifacts; deprecated groups say so.
        assert!(text.contains("fig4-scale"), "{text}");
        assert!(text.contains("fig4-churn"), "{text}");
        assert!(text.contains("deprecated"), "{text}");
        assert!(text.contains("sweep <scenario|spec.json|pack-dir>"), "{text}");
    }
}
