//! Typed run specifications for the experiment CLI.
//!
//! [`RunSpec::parse`] turns an argv slice into a validated spec up front,
//! so the dispatch code never sees raw strings: unknown artifacts, unknown
//! flags, and malformed values are all rejected here with errors that name
//! the offending flag.

use std::path::PathBuf;
use std::time::Duration;

use coop_faults::FaultPlan;

use crate::exec::Executor;
use crate::telemetry::TelemetryOpts;
use crate::Scale;

/// Which paper artifact (or suite) a run regenerates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // the variants mirror the paper's artifact names
pub enum Artifact {
    Table1,
    Table2,
    Table3,
    Fig1,
    Fig2,
    Fig3,
    Fig4,
    Fig4Churn,
    /// The hot-path scaling sweep (population × mechanism, rounds/sec and
    /// peak-RSS columns). Not part of `all`: its perf artifacts carry
    /// wall-clock data and exist to benchmark the harness, not the paper.
    Fig4Scale,
    Fig5,
    Fig6,
    Fluid,
    Ablations,
    Extensions,
    /// Every artifact above except `fig4-scale`, in paper order.
    All,
}

impl Artifact {
    /// The individual artifacts, in the order `all` runs them.
    pub const ALL: [Artifact; 13] = [
        Artifact::Table1,
        Artifact::Fig1,
        Artifact::Fig2,
        Artifact::Fig3,
        Artifact::Table2,
        Artifact::Table3,
        Artifact::Fig4,
        Artifact::Fig4Churn,
        Artifact::Fig5,
        Artifact::Fig6,
        Artifact::Fluid,
        Artifact::Ablations,
        Artifact::Extensions,
    ];

    /// Parses a CLI artifact name.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnknownArtifact`] for unrecognized names.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        match s.to_ascii_lowercase().as_str() {
            "table1" => Ok(Artifact::Table1),
            "table2" => Ok(Artifact::Table2),
            "table3" => Ok(Artifact::Table3),
            "fig1" => Ok(Artifact::Fig1),
            "fig2" => Ok(Artifact::Fig2),
            "fig3" => Ok(Artifact::Fig3),
            "fig4" => Ok(Artifact::Fig4),
            "fig4-churn" | "fig4churn" => Ok(Artifact::Fig4Churn),
            "fig4-scale" | "fig4scale" => Ok(Artifact::Fig4Scale),
            "fig5" => Ok(Artifact::Fig5),
            "fig6" => Ok(Artifact::Fig6),
            "fluid" => Ok(Artifact::Fluid),
            "ablations" => Ok(Artifact::Ablations),
            "extensions" => Ok(Artifact::Extensions),
            "all" => Ok(Artifact::All),
            other => Err(SpecError::UnknownArtifact(other.to_string())),
        }
    }

    /// The canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Artifact::Table1 => "table1",
            Artifact::Table2 => "table2",
            Artifact::Table3 => "table3",
            Artifact::Fig1 => "fig1",
            Artifact::Fig2 => "fig2",
            Artifact::Fig3 => "fig3",
            Artifact::Fig4 => "fig4",
            Artifact::Fig4Churn => "fig4-churn",
            Artifact::Fig4Scale => "fig4-scale",
            Artifact::Fig5 => "fig5",
            Artifact::Fig6 => "fig6",
            Artifact::Fluid => "fluid",
            Artifact::Ablations => "ablations",
            Artifact::Extensions => "extensions",
            Artifact::All => "all",
        }
    }

    /// Whether `--replicates` changes what this artifact runs (only the
    /// simulation figures aggregate over seeds).
    pub fn supports_replicates(self) -> bool {
        matches!(self, Artifact::Fig4 | Artifact::Fig5 | Artifact::Fig6)
    }

    /// Whether this artifact's simulation jobs are journaled for
    /// `--resume` (the batch-simulation artifacts; the analytic tables
    /// and figures re-run in milliseconds and need no ledger).
    pub fn supports_resume(self) -> bool {
        matches!(
            self,
            Artifact::Fig4
                | Artifact::Fig4Churn
                | Artifact::Fig5
                | Artifact::Fig6
                | Artifact::All
        )
    }
}

/// A fully validated experiment invocation.
///
/// # Example
///
/// ```
/// use coop_experiments::{RunSpec, Scale};
/// let args = ["fig4", "--scale", "quick", "--replicates", "8", "--jobs", "4"];
/// let spec = RunSpec::parse(args.iter().map(|s| s.to_string())).unwrap();
/// assert_eq!(spec.scale, Scale::Quick);
/// assert_eq!(spec.replicates, 8);
/// assert_eq!(spec.jobs, 4);
/// assert_eq!(spec.seeds(), (42..50).collect::<Vec<_>>());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// What to regenerate.
    pub artifact: Artifact,
    /// Simulation scale (`--scale`, default [`Scale::Default`]).
    pub scale: Scale,
    /// Base RNG seed (`--seed`, default 42).
    pub seed: u64,
    /// Number of seeds to aggregate over (`--replicates`, default 1).
    pub replicates: u64,
    /// Worker-thread budget for independent simulations (`--jobs`,
    /// default = available parallelism).
    pub jobs: usize,
    /// Artifact directory override (`--out-dir`, default
    /// `target/experiments`).
    pub out_dir: Option<PathBuf>,
    /// Record run telemetry — counters, probes, spans, and a
    /// `manifest.json` next to the artifacts (`--telemetry`).
    pub telemetry: bool,
    /// Stream kept trace events to this JSONL file (`--trace-out`,
    /// implies `--telemetry`).
    pub trace_out: Option<PathBuf>,
    /// Round-probe cadence for telemetry (`--probe-every`, default 10).
    pub probe_every: u64,
    /// Per-round churn departure hazard (`--churn`, fig4-churn only).
    pub churn: Option<f64>,
    /// Per-transfer message-loss probability (`--loss`, fig4-churn only).
    pub loss: Option<f64>,
    /// Seeder exits once this fraction of compliant peers completed
    /// (`--seeder-exit`, fig4-churn only).
    pub seeder_exit: Option<f64>,
    /// Population sweep override (`--peers N[,N...]`, fig4-scale only);
    /// `None` means the runner's default sweep.
    pub peers: Option<Vec<usize>>,
    /// Resume an interrupted run from this artifact directory's journal
    /// (`--resume DIR`; journaled artifacts only, replaces `--out-dir`).
    pub resume: Option<PathBuf>,
    /// Extra attempts for a job that panics or times out (`--retries`,
    /// default 0 = fail after the first attempt).
    pub retries: u64,
    /// Per-attempt watchdog timeout in seconds (`--job-timeout`; `None`
    /// means no watchdog).
    pub job_timeout: Option<u64>,
    /// Mid-run simulation checkpoint cadence in rounds
    /// (`--checkpoint-every`; `None` means no checkpoints).
    pub checkpoint_every: Option<u64>,
}

/// Why an argv slice failed to parse into a [`RunSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// `--help` was requested; not a failure.
    Help,
    /// No artifact name was given.
    MissingArtifact,
    /// The artifact name is not one the harness knows.
    UnknownArtifact(String),
    /// A flag the parser does not recognize.
    UnknownFlag(String),
    /// A flag that requires a value appeared last.
    MissingValue {
        /// The flag missing its value.
        flag: &'static str,
    },
    /// A flag value that failed validation.
    InvalidValue {
        /// The flag whose value was rejected.
        flag: &'static str,
        /// The offending value, verbatim.
        value: String,
        /// What a valid value looks like.
        reason: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Help => write!(f, "help requested"),
            SpecError::MissingArtifact => write!(f, "no artifact named"),
            SpecError::UnknownArtifact(name) => {
                write!(f, "unknown artifact '{name}'")
            }
            SpecError::UnknownFlag(flag) => write!(f, "unknown flag '{flag}'"),
            SpecError::MissingValue { flag } => {
                write!(f, "flag '{flag}' requires a value")
            }
            SpecError::InvalidValue { flag, value, reason } => {
                write!(f, "invalid value '{value}' for '{flag}': {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The usage string printed alongside parse errors.
pub const USAGE: &str = "usage: coop-experiments \
<table1|table2|table3|fig1|fig2|fig3|fig4|fig4-churn|fig4-scale|fig5|fig6|fluid|ablations|extensions|all>
       [--scale quick|default|paper] [--seed N] [--replicates N]
       [--jobs N] [--out-dir DIR]
       [--telemetry] [--trace-out FILE] [--probe-every N]
       [--retries N] [--job-timeout SECS] [--checkpoint-every ROUNDS]
       [--resume DIR]  (fig4|fig4-churn|fig5|fig6|all)
       [--churn RATE] [--loss PROB] [--seeder-exit FRACTION]  (fig4-churn)
       [--peers N[,N...]]  (fig4-scale)";

impl RunSpec {
    /// Parses CLI arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending flag or artifact;
    /// [`SpecError::Help`] when `--help`/`-h` is present.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, SpecError> {
        let mut artifact = None;
        let mut scale = Scale::Default;
        let mut seed = 42u64;
        let mut replicates = 1u64;
        let mut jobs = Executor::default().jobs();
        let mut out_dir = None;
        let mut telemetry = false;
        let mut trace_out = None;
        let mut probe_every = 10u64;
        let mut churn = None;
        let mut loss = None;
        let mut seeder_exit = None;
        let mut peers = None;
        let mut resume = None;
        let mut retries = 0u64;
        let mut job_timeout = None;
        let mut checkpoint_every = None;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(SpecError::Help),
                "--scale" => {
                    let v = next_value(&mut it, "--scale")?;
                    scale = Scale::parse(&v).map_err(|_| SpecError::InvalidValue {
                        flag: "--scale",
                        value: v,
                        reason: "expected quick, default, or paper".to_string(),
                    })?;
                }
                "--seed" => {
                    seed = parse_number(&mut it, "--seed", 0)?;
                }
                "--replicates" => {
                    replicates = parse_number(&mut it, "--replicates", 1)?;
                }
                "--jobs" => {
                    jobs = usize::try_from(parse_number(&mut it, "--jobs", 1)?)
                        .expect("validated above");
                }
                "--out-dir" => {
                    out_dir = Some(PathBuf::from(next_value(&mut it, "--out-dir")?));
                }
                "--telemetry" => {
                    telemetry = true;
                }
                "--trace-out" => {
                    trace_out = Some(PathBuf::from(next_value(&mut it, "--trace-out")?));
                }
                "--probe-every" => {
                    probe_every = parse_number(&mut it, "--probe-every", 1)?;
                }
                "--churn" => {
                    churn = Some(parse_float(&mut it, "--churn", 1.0)?);
                }
                "--loss" => {
                    loss = Some(parse_float(&mut it, "--loss", 1.0)?);
                }
                "--seeder-exit" => {
                    let v = parse_float(&mut it, "--seeder-exit", 1.0)?;
                    if v <= 0.0 {
                        return Err(SpecError::InvalidValue {
                            flag: "--seeder-exit",
                            value: format!("{v}"),
                            reason: "must be in (0, 1]".to_string(),
                        });
                    }
                    seeder_exit = Some(v);
                }
                "--peers" => {
                    peers = Some(parse_peer_list(&mut it)?);
                }
                "--resume" => {
                    resume = Some(PathBuf::from(next_value(&mut it, "--resume")?));
                }
                "--retries" => {
                    retries = parse_number(&mut it, "--retries", 0)?;
                }
                "--job-timeout" => {
                    job_timeout = Some(parse_number(&mut it, "--job-timeout", 1)?);
                }
                "--checkpoint-every" => {
                    checkpoint_every = Some(parse_number(&mut it, "--checkpoint-every", 1)?);
                }
                other if other.starts_with('-') => {
                    return Err(SpecError::UnknownFlag(other.to_string()));
                }
                other if artifact.is_none() => {
                    artifact = Some(Artifact::parse(other)?);
                }
                other => {
                    // A second positional argument: almost always a typo'd
                    // flag value, so report it as an unknown flag.
                    return Err(SpecError::UnknownFlag(other.to_string()));
                }
            }
        }
        let artifact = artifact.ok_or(SpecError::MissingArtifact)?;
        if artifact != Artifact::Fig4Churn {
            for (flag, set) in [
                ("--churn", churn.is_some()),
                ("--loss", loss.is_some()),
                ("--seeder-exit", seeder_exit.is_some()),
            ] {
                if set {
                    return Err(SpecError::InvalidValue {
                        flag,
                        value: artifact.name().to_string(),
                        reason: "fault flags are only supported by fig4-churn".to_string(),
                    });
                }
            }
        }
        if artifact != Artifact::Fig4Scale && peers.is_some() {
            return Err(SpecError::InvalidValue {
                flag: "--peers",
                value: artifact.name().to_string(),
                reason: "--peers is only supported by fig4-scale".to_string(),
            });
        }
        if resume.is_some() {
            if !artifact.supports_resume() {
                return Err(SpecError::InvalidValue {
                    flag: "--resume",
                    value: artifact.name().to_string(),
                    reason: "--resume is only supported by the journaled artifacts \
                             (fig4, fig4-churn, fig5, fig6, all)"
                        .to_string(),
                });
            }
            if let Some(dir) = &out_dir {
                return Err(SpecError::InvalidValue {
                    flag: "--resume",
                    value: dir.display().to_string(),
                    reason: "--resume already names the artifact directory; \
                             do not also pass --out-dir"
                        .to_string(),
                });
            }
        }
        Ok(RunSpec {
            artifact,
            scale,
            seed,
            replicates,
            jobs,
            out_dir,
            telemetry,
            trace_out,
            probe_every,
            churn,
            loss,
            seeder_exit,
            peers,
            resume,
            retries,
            job_timeout,
            checkpoint_every,
        })
    }

    /// The seed list implied by `seed` and `replicates` (consecutive).
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.replicates).map(|i| self.seed + i).collect()
    }

    /// An [`Executor`] sized to this spec's `--jobs` and carrying its
    /// robustness policy (`--retries`, `--job-timeout`,
    /// `--checkpoint-every`). Journal/replay wiring is the caller's job —
    /// it needs the artifact directory.
    pub fn executor(&self) -> Executor {
        let mut executor = Executor::new(self.jobs).with_retries(self.retries);
        if let Some(secs) = self.job_timeout {
            executor = executor.with_job_timeout(Duration::from_secs(secs));
        }
        if let Some(every) = self.checkpoint_every {
            executor = executor.with_checkpoint_every(every);
        }
        executor
    }

    /// The base fault plan implied by `--churn`, `--loss` and
    /// `--seeder-exit`, or `None` when no fault flag was given (the
    /// fig4-churn runner then uses its default sweep).
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if self.churn.is_none() && self.loss.is_none() && self.seeder_exit.is_none() {
            return None;
        }
        let mut plan = FaultPlan::none();
        if let Some(rate) = self.churn {
            plan.churn_rate = rate;
        }
        if let Some(prob) = self.loss {
            plan.loss_prob = prob;
        }
        if let Some(fraction) = self.seeder_exit {
            plan.seeder_exit_fraction = Some(fraction);
        }
        Some(plan)
    }

    /// The telemetry options implied by `--telemetry`, `--trace-out`,
    /// and `--probe-every`.
    pub fn telemetry_opts(&self) -> TelemetryOpts {
        TelemetryOpts {
            enabled: self.telemetry,
            trace_out: self.trace_out.clone(),
            probe_every: self.probe_every,
        }
    }
}

/// Pulls the next argument as `flag`'s value.
fn next_value(
    it: &mut impl Iterator<Item = String>,
    flag: &'static str,
) -> Result<String, SpecError> {
    it.next().ok_or(SpecError::MissingValue { flag })
}

/// Parses `flag`'s value as an integer no smaller than `min`.
fn parse_number(
    it: &mut impl Iterator<Item = String>,
    flag: &'static str,
    min: u64,
) -> Result<u64, SpecError> {
    let v = next_value(it, flag)?;
    match v.parse::<u64>() {
        Ok(n) if n >= min => Ok(n),
        Ok(_) => Err(SpecError::InvalidValue {
            flag,
            value: v,
            reason: format!("must be at least {min}"),
        }),
        Err(_) => Err(SpecError::InvalidValue {
            flag,
            value: v,
            reason: "expected a non-negative integer".to_string(),
        }),
    }
}

/// Parses `--peers`' value as a comma-separated population list (each at
/// least 2 — a swarm needs a downloader besides the seeder).
fn parse_peer_list(it: &mut impl Iterator<Item = String>) -> Result<Vec<usize>, SpecError> {
    let v = next_value(it, "--peers")?;
    let invalid = |v: &str| SpecError::InvalidValue {
        flag: "--peers",
        value: v.to_string(),
        reason: "expected a comma-separated list of populations, each at least 2".to_string(),
    };
    let mut list = Vec::new();
    for part in v.split(',') {
        match part.trim().parse::<usize>() {
            Ok(n) if n >= 2 => list.push(n),
            _ => return Err(invalid(&v)),
        }
    }
    if list.is_empty() {
        return Err(invalid(&v));
    }
    Ok(list)
}

/// Parses `flag`'s value as a finite float in `[0, max]`.
fn parse_float(
    it: &mut impl Iterator<Item = String>,
    flag: &'static str,
    max: f64,
) -> Result<f64, SpecError> {
    let v = next_value(it, flag)?;
    match v.parse::<f64>() {
        Ok(x) if x.is_finite() && (0.0..=max).contains(&x) => Ok(x),
        Ok(_) => Err(SpecError::InvalidValue {
            flag,
            value: v,
            reason: format!("must be a finite number in [0, {max}]"),
        }),
        Err(_) => Err(SpecError::InvalidValue {
            flag,
            value: v,
            reason: "expected a number".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunSpec, SpecError> {
        RunSpec::parse(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_full_flag_set() {
        let spec = parse(&[
            "fig5", "--scale", "paper", "--seed", "7", "--replicates", "3", "--jobs", "2",
            "--out-dir", "out/x",
        ])
        .unwrap();
        assert_eq!(spec.artifact, Artifact::Fig5);
        assert_eq!(spec.scale, Scale::Paper);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.replicates, 3);
        assert_eq!(spec.jobs, 2);
        assert_eq!(spec.out_dir.as_deref(), Some(std::path::Path::new("out/x")));
        assert_eq!(spec.seeds(), vec![7, 8, 9]);
        assert_eq!(spec.executor().jobs(), 2);
    }

    #[test]
    fn defaults_are_sensible() {
        let spec = parse(&["table2"]).unwrap();
        assert_eq!(spec.artifact, Artifact::Table2);
        assert_eq!(spec.scale, Scale::Default);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.replicates, 1);
        assert!(spec.jobs >= 1, "jobs defaults to available parallelism");
        assert_eq!(spec.out_dir, None);
        assert!(!spec.telemetry);
        assert_eq!(spec.trace_out, None);
        assert_eq!(spec.probe_every, 10);
        assert!(!spec.telemetry_opts().is_enabled());
    }

    #[test]
    fn telemetry_flags_parse() {
        let spec = parse(&[
            "fig4",
            "--telemetry",
            "--trace-out",
            "out/trace.jsonl",
            "--probe-every",
            "5",
        ])
        .unwrap();
        assert!(spec.telemetry);
        assert_eq!(
            spec.trace_out.as_deref(),
            Some(std::path::Path::new("out/trace.jsonl"))
        );
        assert_eq!(spec.probe_every, 5);
        let opts = spec.telemetry_opts();
        assert!(opts.is_enabled());
        assert_eq!(opts.recorder_config().probe_every, 5);

        // --trace-out alone implies telemetry.
        let spec = parse(&["fig4", "--trace-out", "t.jsonl"]).unwrap();
        assert!(!spec.telemetry);
        assert!(spec.telemetry_opts().is_enabled());
    }

    #[test]
    fn telemetry_flag_errors_are_named() {
        let err = parse(&["fig4", "--trace-out"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--trace-out" });

        let err = parse(&["fig4", "--probe-every"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--probe-every" });

        let err = parse(&["fig4", "--probe-every", "0"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--probe-every", .. }),
            "{err:?}"
        );

        let err = parse(&["fig4", "--probe-every", "often"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--probe-every") && msg.contains("often"), "{msg}");

        // A typo'd telemetry flag is still an unknown flag.
        let err = parse(&["fig4", "--telemetri"]).unwrap_err();
        assert_eq!(err, SpecError::UnknownFlag("--telemetri".to_string()));
    }

    #[test]
    fn fault_flags_parse_into_a_plan() {
        let spec = parse(&[
            "fig4-churn",
            "--churn",
            "0.02",
            "--loss",
            "0.1",
            "--seeder-exit",
            "0.5",
        ])
        .unwrap();
        assert_eq!(spec.artifact, Artifact::Fig4Churn);
        let plan = spec.fault_plan().unwrap();
        assert_eq!(plan.churn_rate, 0.02);
        assert_eq!(plan.loss_prob, 0.1);
        assert_eq!(plan.seeder_exit_fraction, Some(0.5));
        assert!(plan.fixed_lifetime_rounds.is_none());

        // No fault flags: the runner picks its default sweep.
        let spec = parse(&["fig4-churn"]).unwrap();
        assert_eq!(spec.fault_plan(), None);
    }

    #[test]
    fn fault_flag_values_are_validated() {
        let err = parse(&["fig4-churn", "--loss", "1.5"]).unwrap_err();
        assert!(matches!(err, SpecError::InvalidValue { flag: "--loss", .. }), "{err:?}");

        let err = parse(&["fig4-churn", "--churn", "NaN"]).unwrap_err();
        assert!(matches!(err, SpecError::InvalidValue { flag: "--churn", .. }), "{err:?}");

        let err = parse(&["fig4-churn", "--seeder-exit", "0"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--seeder-exit", .. }),
            "{err:?}"
        );

        let err = parse(&["fig4-churn", "--churn"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--churn" });
    }

    #[test]
    fn fault_flags_rejected_for_other_artifacts() {
        let err = parse(&["fig4", "--churn", "0.02"]).unwrap_err();
        assert!(matches!(err, SpecError::InvalidValue { flag: "--churn", .. }), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("fig4-churn"), "{msg}");
    }

    #[test]
    fn flags_may_precede_the_artifact() {
        let spec = parse(&["--seed", "9", "fig4"]).unwrap();
        assert_eq!(spec.artifact, Artifact::Fig4);
        assert_eq!(spec.seed, 9);
    }

    #[test]
    fn unknown_flag_is_named() {
        let err = parse(&["fig4", "--speed", "11"]).unwrap_err();
        assert_eq!(err, SpecError::UnknownFlag("--speed".to_string()));
        assert!(err.to_string().contains("--speed"));
    }

    #[test]
    fn invalid_values_name_the_flag() {
        let err = parse(&["fig4", "--seed", "banana"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--seed") && msg.contains("banana"), "{msg}");

        let err = parse(&["fig4", "--scale", "huge"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--scale") && msg.contains("huge"), "{msg}");

        let err = parse(&["fig4", "--replicates", "0"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--replicates", .. }),
            "{err:?}"
        );

        let err = parse(&["fig4", "--jobs", "0"]).unwrap_err();
        assert!(matches!(err, SpecError::InvalidValue { flag: "--jobs", .. }), "{err:?}");
    }

    #[test]
    fn dangling_flag_reports_missing_value() {
        let err = parse(&["fig4", "--jobs"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--jobs" });
        assert!(err.to_string().contains("--jobs"));
    }

    #[test]
    fn missing_and_unknown_artifacts() {
        assert_eq!(parse(&[]).unwrap_err(), SpecError::MissingArtifact);
        assert_eq!(
            parse(&["fig9"]).unwrap_err(),
            SpecError::UnknownArtifact("fig9".to_string())
        );
        assert_eq!(
            parse(&["fig4", "stray"]).unwrap_err(),
            SpecError::UnknownFlag("stray".to_string())
        );
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["fig4", "--help"]).unwrap_err(), SpecError::Help);
        assert_eq!(parse(&["-h"]).unwrap_err(), SpecError::Help);
    }

    #[test]
    fn artifact_names_round_trip() {
        // fig4-scale is parseable but deliberately not part of `all`.
        for artifact in Artifact::ALL
            .into_iter()
            .chain([Artifact::Fig4Scale, Artifact::All])
        {
            assert_eq!(Artifact::parse(artifact.name()).unwrap(), artifact);
        }
        assert!(!Artifact::ALL.contains(&Artifact::Fig4Scale));
        assert!(Artifact::Fig4.supports_replicates());
        assert!(!Artifact::Table1.supports_replicates());
        assert!(!Artifact::Fig4Scale.supports_replicates());
    }

    #[test]
    fn peer_lists_parse_for_fig4_scale() {
        let spec = parse(&["fig4-scale", "--peers", "1000,2000,5000"]).unwrap();
        assert_eq!(spec.artifact, Artifact::Fig4Scale);
        assert_eq!(spec.peers, Some(vec![1000, 2000, 5000]));

        let spec = parse(&["fig4scale", "--peers", "64"]).unwrap();
        assert_eq!(spec.peers, Some(vec![64]));

        // Without the flag the runner picks its default sweep.
        let spec = parse(&["fig4-scale"]).unwrap();
        assert_eq!(spec.peers, None);
    }

    #[test]
    fn peer_list_values_are_validated() {
        for bad in ["", "0", "1", "abc", "100,", "100,,200", "100,x"] {
            let err = parse(&["fig4-scale", "--peers", bad]).unwrap_err();
            assert!(
                matches!(err, SpecError::InvalidValue { flag: "--peers", .. }),
                "{bad:?}: {err:?}"
            );
        }
        let err = parse(&["fig4-scale", "--peers"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--peers" });
    }

    #[test]
    fn robustness_flags_parse_and_configure_the_executor() {
        let spec = parse(&[
            "fig4",
            "--retries",
            "2",
            "--job-timeout",
            "90",
            "--checkpoint-every",
            "50",
        ])
        .unwrap();
        assert_eq!(spec.retries, 2);
        assert_eq!(spec.job_timeout, Some(90));
        assert_eq!(spec.checkpoint_every, Some(50));
        let executor = spec.executor();
        assert_eq!(executor.retries(), 2);
        assert_eq!(executor.job_timeout(), Some(Duration::from_secs(90)));
        assert_eq!(executor.checkpoint_every(), Some(50));

        // Defaults: fail-fast, no watchdog, no checkpoints.
        let spec = parse(&["fig4"]).unwrap();
        assert_eq!(spec.retries, 0);
        assert_eq!(spec.job_timeout, None);
        assert_eq!(spec.checkpoint_every, None);
        let executor = spec.executor();
        assert_eq!(executor.retries(), 0);
        assert_eq!(executor.job_timeout(), None);
        assert_eq!(executor.checkpoint_every(), None);
    }

    #[test]
    fn robustness_flag_errors_are_named() {
        let err = parse(&["fig4", "--retries"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--retries" });
        assert!(err.to_string().contains("--retries"));

        let err = parse(&["fig4", "--retries", "many"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--retries") && msg.contains("many"), "{msg}");

        let err = parse(&["fig4", "--job-timeout"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--job-timeout" });

        let err = parse(&["fig4", "--job-timeout", "0"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--job-timeout", .. }),
            "{err:?}"
        );

        let err = parse(&["fig4", "--job-timeout", "soon"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--job-timeout") && msg.contains("soon"), "{msg}");

        let err = parse(&["fig4", "--checkpoint-every"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--checkpoint-every" });

        let err = parse(&["fig4", "--checkpoint-every", "0"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--checkpoint-every", .. }),
            "{err:?}"
        );

        let err = parse(&["fig4", "--checkpoint-every", "x"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--checkpoint-every") && msg.contains("x"), "{msg}");
    }

    #[test]
    fn resume_parses_for_journaled_artifacts() {
        for artifact in ["fig4", "fig4-churn", "fig5", "fig6", "all"] {
            let spec = parse(&[artifact, "--resume", "out/run1"]).unwrap();
            assert_eq!(
                spec.resume.as_deref(),
                Some(std::path::Path::new("out/run1")),
                "{artifact}"
            );
            assert!(spec.artifact.supports_resume());
        }
        let spec = parse(&["fig4"]).unwrap();
        assert_eq!(spec.resume, None);
    }

    #[test]
    fn resume_errors_are_named() {
        let err = parse(&["fig4", "--resume"]).unwrap_err();
        assert_eq!(err, SpecError::MissingValue { flag: "--resume" });
        assert!(err.to_string().contains("--resume"));

        // Non-journaled artifacts reject it, naming both sides.
        let err = parse(&["table1", "--resume", "out/run1"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--resume", .. }),
            "{err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("--resume") && msg.contains("table1"), "{msg}");

        // --resume and --out-dir are mutually exclusive.
        let err = parse(&["fig4", "--resume", "out/run1", "--out-dir", "out/x"]).unwrap_err();
        assert!(
            matches!(err, SpecError::InvalidValue { flag: "--resume", .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("--out-dir"));
    }

    #[test]
    fn peers_flag_rejected_for_other_artifacts() {
        let err = parse(&["fig4", "--peers", "1000"]).unwrap_err();
        assert!(matches!(err, SpecError::InvalidValue { flag: "--peers", .. }), "{err:?}");
        assert!(err.to_string().contains("fig4-scale"));
    }
}
